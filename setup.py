"""Legacy setup shim: this environment's setuptools lacks the `wheel`
package needed for PEP 517 editable installs, so we keep a setup.py to
allow `pip install -e . --no-use-pep517 --no-build-isolation`."""

from setuptools import setup

setup()
