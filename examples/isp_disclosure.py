"""The SCA's disclosure machinery at a working ISP (sections II.B, III.A).

Run::

    python examples/isp_disclosure.py

Spins up an ISP carrying real (simulated) traffic, then walks the 2703
compelled-disclosure tiers — watching the ISP refuse each demand until the
officer holds sufficient process — the 2702 voluntary-disclosure rules,
and the III.A.1(a) subpoena workflow that turns an attacking IP address
into a subscriber identity.
"""

from repro.core import DataKind, ProcessKind
from repro.core.errors import InsufficientProcess, LegalViolation
from repro.netsim import FullInterceptTap, Network, PenRegisterTap
from repro.netsim.isp import IspNode


def build_world():
    net = Network(seed=44)
    isp = IspNode("metro-isp", net.sim, serves_public=True)
    net.add_node(isp)
    customer = net.add_host("customer")
    remote = net.add_host("remote-server")
    access_link = net.connect(customer, isp, latency=0.004)
    net.connect(isp, remote, latency=0.012)
    net.build_routes()

    isp.register_subscriber("customer", "C. Ngata", "12 Birch Ln")
    isp.store_content("customer", "draft email: 'wire the money friday'")

    remote.register_service(80, lambda host, pkt: "200 ok")
    for index in range(5):
        net.sim.schedule(
            index * 0.5,
            lambda i=index: customer.send_to(
                remote, f"GET /page-{i}", dst_port=80
            ),
        )
    net.sim.run()
    return net, isp, customer, access_link


def demand(isp, data_kind, held):
    try:
        records = isp.compelled_disclosure(data_kind, held)
        print(
            f"  {data_kind.value:22s} with {held.display_name:14s} "
            f"-> {len(records)} records disclosed"
        )
    except InsufficientProcess as error:
        print(
            f"  {data_kind.value:22s} with {held.display_name:14s} "
            f"-> REFUSED ({error.required.display_name} required)"
        )


def main() -> None:
    net, isp, customer, access_link = build_world()
    print(f"ISP carried {isp.transaction_log_size} packets for customers\n")

    print("2703 compelled-disclosure tiers:")
    for held in (
        ProcessKind.NONE,
        ProcessKind.SUBPOENA,
        ProcessKind.COURT_ORDER,
        ProcessKind.SEARCH_WARRANT,
    ):
        for data_kind in (
            DataKind.SUBSCRIBER_INFO,
            DataKind.TRANSACTIONAL_RECORD,
            DataKind.CONTENT,
        ):
            demand(isp, data_kind, held)
        print()

    print("2702 voluntary disclosure:")
    try:
        isp.voluntary_disclosure(DataKind.SUBSCRIBER_INFO, to_government=True)
    except LegalViolation as error:
        print(f"  to the government: REFUSED ({error})")
    records = isp.voluntary_disclosure(
        DataKind.TRANSACTIONAL_RECORD, to_government=False
    )
    print(f"  non-content to a private party: {len(records)} records")
    records = isp.voluntary_disclosure(
        DataKind.CONTENT, to_government=True, emergency=True
    )
    print(f"  content to the government in an emergency: {len(records)}\n")

    print("III.A.1(a) subpoena workflow:")
    # The ISP leases addresses from its own pool and keeps the history;
    # the subpoena resolves an observed address to the subscriber.
    leased_ip = isp.lease_ip("customer")
    subscriber = isp.subscriber_for_ip(
        leased_ip, time=net.sim.now, process_held=ProcessKind.SUBPOENA
    )
    print(
        f"  attacking IP {leased_ip} -> subscriber "
        f"{subscriber.name}, {subscriber.street_address} "
        f"(probable cause for a premises warrant)\n"
    )

    print("real-time taps require their own process:")
    try:
        isp.attach_tap(
            access_link, FullInterceptTap("wire"), ProcessKind.COURT_ORDER
        )
    except InsufficientProcess as error:
        print(f"  full intercept with a court order: REFUSED ({error})")
    isp.attach_tap(
        access_link, PenRegisterTap("pen"), ProcessKind.COURT_ORDER
    )
    print("  pen register with a court order: attached")


if __name__ == "__main__":
    main()
