"""The Alice/Bob e-mail lifecycle of paper section III.A.3, executable.

Run::

    python examples/email_sca_lifecycle.py

Alice (at non-public Charlie University) mails Bob (at public Gmail); Bob
replies.  At each lifecycle stage the example prints the provider's SCA
role *with respect to that message* and what process the government would
need to compel its contents — including the moment Bob's opened reply
"drops out of the SCA" on the university server and only the Fourth
Amendment governs.
"""

from repro.core import ComplianceEngine, LegalSource, ProviderRole
from repro.storage import MailProvider, Message


def show(provider: MailProvider, message: Message, stage: str) -> None:
    role = provider.role_for(message)
    process, source = provider.required_process_for(message)
    print(f"  [{stage}]")
    print(f"    provider {provider.name}: role = {role.value}")
    print(
        f"    compelling content requires {process.display_name} "
        f"under the {source.value}"
    )


def main() -> None:
    engine = ComplianceEngine()
    gmail = MailProvider("gmail", serves_public=True)
    university = MailProvider("cs.charlie.edu", serves_public=False)
    gmail.create_account("bob")
    university.create_account("alice")

    # --- Alice -> Bob -----------------------------------------------------------
    print("Alice (university) mails Bob (gmail):")
    email = Message(
        sender="alice@cs.charlie.edu",
        recipient="bob",
        subject="meeting notes",
        body="see attachment",
        sent_at=0.0,
    )
    gmail.deliver(email, time=1.0)
    show(gmail, email, "delivered, awaiting retrieval")
    assert gmail.role_for(email) is ProviderRole.ECS

    gmail.retrieve("bob", email.message_id)
    show(gmail, email, "Bob opened it and left it stored")
    assert gmail.role_for(email) is ProviderRole.RCS
    print()

    # --- Bob -> Alice ------------------------------------------------------------
    print("Bob replies to Alice:")
    reply = Message(
        sender="bob@gmail.com",
        recipient="alice",
        subject="re: meeting notes",
        body="got them, thanks",
        sent_at=2.0,
    )
    university.deliver(reply, time=3.0)
    show(university, reply, "delivered, awaiting retrieval")
    assert university.role_for(reply) is ProviderRole.ECS

    university.retrieve("alice", reply.message_id)
    show(university, reply, "Alice opened it and left it stored")
    assert university.role_for(reply) is ProviderRole.NEITHER
    print()

    # --- the engine agrees -----------------------------------------------------
    print("cross-check against the compliance engine:")
    for provider, message, label in (
        (gmail, email, "opened mail at gmail (RCS)"),
        (university, reply, "opened mail at the university (neither)"),
    ):
        ruling = engine.evaluate(provider.describe_compulsion(message))
        governed_by = (
            ", ".join(s.value for s in ruling.governing_sources)
            or "nothing"
        )
        print(
            f"  {label}: requires "
            f"{ruling.required_process.display_name}; requirements from: "
            f"{governed_by}"
        )
        expected_process, expected_source = provider.required_process_for(
            message
        )
        assert ruling.required_process is expected_process
        if expected_source is LegalSource.FOURTH_AMENDMENT:
            assert LegalSource.SCA not in ruling.governing_sources


if __name__ == "__main__":
    main()
