"""A complete off-site forensic examination (paper section III.A.2).

Run::

    python examples/forensic_examination.py

A drive is seized under a warrant scoped to financial records of a wire
fraud.  The lab images it, verifies the image hash, inventories live and
recoverable-deleted files, carves unallocated space and slack, screens
everything against a known-contraband set, builds the activity timeline —
and the warrant-scoped search shows which of those findings the warrant
actually lets the examiner seize, which come in through plain view, and
which must be left alone.
"""

from repro.core import ExaminedRecord, WarrantScope
from repro.storage import (
    BlockDevice,
    ForensicExaminer,
    KnownFileSet,
    SimpleFilesystem,
)
from repro.techniques import ScopedSearchTechnique


def build_seized_drive() -> SimpleFilesystem:
    fs = SimpleFilesystem(BlockDevice(n_blocks=512, block_size=64))
    fs.write_file("q3-ledger.xlsx", "wire transfers: 14 payments offshore")
    fs.write_file("invoices.csv", "fabricated invoice batch")
    fs.write_file("thesis-draft.txt", "unrelated personal writing")
    fs.write_file("family.jpg", "JPEG[family picnic]GEPJ")
    fs.write_file("cp-evidence.jpg", "JPEG[contraband image]GEPJ")
    fs.delete_file("cp-evidence.jpg")  # the suspect tried to clean up
    fs.write_file("shredded-memo.txt", "destroy the second ledger")
    fs.delete_file("shredded-memo.txt")
    return fs


def main() -> None:
    fs = build_seized_drive()
    known = KnownFileSet.from_contents(
        ["JPEG[contraband image]GEPJ"], label="known contraband"
    )

    # -- the lab examination --------------------------------------------------
    examiner = ForensicExaminer(known_files=known)
    report = examiner.examine(fs)
    print("=== examination report ===")
    print(report.summary())
    print("\ntimeline:")
    for event in report.timeline:
        order = "   (post)" if event.order == float("inf") else f"t={event.order:4.0f}"
        print(f"  {order}  {event.kind.value:38s} {event.subject}")
    print()

    # -- what may the warrant actually seize? -----------------------------------
    scope = WarrantScope(
        place="suspect residence",
        crime="wire fraud",
        categories=frozenset({"financial-records"}),
    )

    def categorize(name: str, data: bytes) -> ExaminedRecord:
        if "ledger" in name or "invoice" in name or "memo" in name:
            category = "financial-records"
        elif name.endswith((".jpg", ".jpeg")) or "jpg" in name:
            category = "photos"
        else:
            category = "personal-documents"
        return ExaminedRecord(
            name=name,
            category=category,
            location="suspect residence",
            incriminating_apparent=b"contraband" in data,
        )

    search = ScopedSearchTechnique(scope)
    result = search.run_on_filesystem(fs, categorize)
    print("=== warrant-scoped seizure decisions ===")
    for record in result.seized_in_scope:
        print(f"  SEIZE (in scope)   {record.name}")
    for record in result.seized_plain_view:
        print(f"  SEIZE (plain view) {record.name}  <- grounds a fresh warrant")
    for record in result.left_untouched:
        print(f"  LEAVE              {record.name}")
    print(
        f"\nan unscoped tool would have over-seized "
        f"{result.over_seizure_count} records; this one did not"
    )


if __name__ == "__main__":
    main()
