"""Probable cause from online-account membership (paper section III.A.1(b)).

Run::

    python examples/membership_probable_cause.py

The paper's second probable-cause scenario: investigators obtain a
contraband site's membership list.  *Gourde* says paid, renewing
membership can establish probable cause; *Coreas* warns that bare
membership alone may not.  The example runs both postures against the
magistrate and shows the paper's advice in action: "If law enforcement
has a technique to identify the suspect's intent along with the
membership, this is a probable cause."
"""

from repro.core import ComplianceEngine, ProcessKind
from repro.investigation import (
    Case,
    Investigator,
    membership_fact,
    membership_with_intent_fact,
)
from repro.netsim import Network, WebServer


def discover_membership():
    """LE finds the site and obtains its membership list lawfully.

    The server is seized; its membership list is read under the seizure
    warrant.  (The legality of *getting* the list is not this example's
    point — what the list *supports* is.)
    """
    net = Network(seed=77)
    officer_pc = net.add_host("officer")
    server = net.add_host("contraband-site")
    net.connect(officer_pc, server, latency=0.01)
    net.build_routes()
    site = WebServer(server, public=False)
    site.publish("/members-area", "contraband index")
    for member in ("user-flamingo", "user-heron", "user-egret"):
        site.add_member(member)
    return sorted(site.members)


def try_warrant(case, label):
    officer = Investigator("agent drew", engine=ComplianceEngine())
    decision = officer.apply_for(
        ProcessKind.SEARCH_WARRANT,
        case,
        time=1.0,
        target_place="subscriber premises",
        target_items=("computers", "storage media"),
    )
    verdict = "GRANTED" if decision.granted else "DENIED"
    print(f"  {label}: warrant {verdict} — {decision.reason}")
    return decision.granted


def main() -> None:
    members = discover_membership()
    print(f"membership list obtained: {members}\n")

    target = members[0]

    print("posture 1 — bare membership (the Coreas problem):")
    bare_case = Case("op-flamingo-bare")
    bare_case.add_fact(membership_fact(target, "the contraband site"))
    granted = try_warrant(bare_case, "bare membership")
    assert not granted
    # Bare membership still supports a subpoena (mere suspicion).
    officer = Investigator("agent drew", engine=ComplianceEngine())
    subpoena = officer.apply_for(ProcessKind.SUBPOENA, bare_case, time=1.0)
    print(
        f"  ...but a subpoena for subscriber records is "
        f"{'granted' if subpoena.granted else 'denied'}\n"
    )

    print("posture 2 — membership plus intent (the Gourde path):")
    intent_case = Case("op-flamingo-intent")
    intent_case.add_fact(
        membership_with_intent_fact(
            target,
            "the contraband site",
            "paid for an automatically renewing subscription and "
            "downloaded from the members-only index",
        )
    )
    granted = try_warrant(intent_case, "membership + intent")
    assert granted
    print(
        "\nthe paper's advice: design techniques that capture *intent* "
        "along with membership,\nso the showing clears probable cause."
    )


if __name__ == "__main__":
    main()
