"""Quickstart: rule on investigative actions and reproduce Table 1.

Run::

    python examples/quickstart.py

Shows the three core moves of the library:

1. build an :class:`InvestigativeAction` and ask the compliance engine
   what legal process it requires (with the full reasoning trace);
2. replay all twenty scenes of the paper's Table 1 and print the
   engine-vs-paper agreement table;
3. ask the research advisor whether a proposed technique is workable
   without a warrant (the paper's Section IV question).
"""

from repro.core import (
    Actor,
    ComplianceEngine,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ResearchAdvisor,
    Timing,
    build_table1,
)
from repro.investigation import format_assessment, format_table1
from repro.techniques import OneSwarmTimingAttack


def main() -> None:
    engine = ComplianceEngine()

    # 1. Rule on a single action: a full packet capture at an ISP.
    action = InvestigativeAction(
        description="capture entire packets at the suspect's ISP",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.REAL_TIME,
        context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
    )
    ruling = engine.evaluate(action)
    print("=== Single-action ruling ===")
    print(f"Action: {action.description}")
    print(ruling.explain())
    print()

    # 2. Reproduce the paper's Table 1.
    print("=== Table 1 reproduction ===")
    print(format_table1(build_table1(), engine))
    print()

    # 3. Ask the advisor about a technique (paper section IV.A).
    print("=== Research advisor ===")
    assessment = OneSwarmTimingAttack().assess(ResearchAdvisor(engine))
    print(format_assessment(assessment))


if __name__ == "__main__":
    main()
