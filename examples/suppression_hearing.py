"""A full investigation storyline ending in a suppression hearing.

Run::

    python examples/suppression_hearing.py

The paper's section III.A.1(a) storyline, executed twice:

* **By the book** — a victim reports an attack; the officer subpoenas the
  ISP for the subscriber behind the attacking IP; the identity supports
  probable cause; a warrant issues; the seized drive is imaged and
  hash-searched; every item survives the hearing.
* **Cutting corners** — the same officer skips the warrant and
  hash-searches the lawfully seized drive anyway (the *Crist* error,
  Table 1 scene 18); the hits are suppressed, and the derivative analysis
  goes down with them as fruit of the poisonous tree.
"""

from repro.core import (
    Actor,
    ComplianceEngine,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ProcessKind,
    Timing,
)
from repro.court import Magistrate, SuppressionHearing
from repro.evidence import ChainOfCustody, derive
from repro.investigation import Case, Investigator, ip_address_fact
from repro.storage import (
    BlockDevice,
    KnownFileSet,
    SimpleFilesystem,
    image_device,
)
from repro.techniques import HashSearchTechnique


def build_suspect_drive() -> tuple[SimpleFilesystem, KnownFileSet]:
    """A drive with innocuous files, contraband, and a deleted file."""
    device = BlockDevice(n_blocks=256, block_size=64)
    fs = SimpleFilesystem(device)
    fs.write_file("thesis.txt", "chapter one: introduction")
    fs.write_file("holiday.jpg", "JPEG[beach sunset]GEPJ")
    fs.write_file("cp-0042.jpg", "JPEG[contraband 42]GEPJ")
    fs.write_file("cp-0043.jpg", "JPEG[contraband 43]GEPJ")
    fs.delete_file("cp-0043.jpg")  # suspect tried to clean up
    known = KnownFileSet.from_contents(
        ["JPEG[contraband 42]GEPJ", "JPEG[contraband 43]GEPJ"],
        label="known contraband",
    )
    return fs, known


def storyline(comply: bool) -> None:
    label = "BY THE BOOK" if comply else "CUTTING CORNERS"
    print(f"--- {label} ---")
    engine = ComplianceEngine()
    magistrate = Magistrate()
    officer = Investigator("det. okafor", magistrate, engine)
    case = Case("op-driftnet", "intrusion into victim's server")

    # 1. Victim reports the attacking IP: probable cause accumulates.
    case.add_fact(ip_address_fact("10.0.3.77", "intrusion", observed_at=0.0))

    # 2. Subpoena the ISP for the subscriber identity (always lawful here).
    decision = officer.apply_for(
        ProcessKind.SUBPOENA, case, time=1.0
    )
    assert decision.granted
    subpoena_action = InvestigativeAction(
        description="compel subscriber identity behind 10.0.3.77 from ISP",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.SUBSCRIBER_INFO,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.THIRD_PARTY_PROVIDER),
    )
    identity = officer.act(
        subpoena_action, time=2.0, content="subscriber: R. Mallory, 5 Elm St"
    )
    print(f"subscriber identified: {identity.content}")
    case.add_suspect("R. Mallory")

    # 3. Get (or skip) the warrant, then hash-search the seized drive.
    if comply:
        warrant = officer.apply_for(
            ProcessKind.SEARCH_WARRANT,
            case,
            time=3.0,
            target_place="5 Elm St, Mallory residence",
            target_items=("computers", "storage media"),
        )
        assert warrant.granted
        print(f"warrant issued: {warrant.reason}")
    else:
        print("officer skips the warrant (the Crist error)")

    fs, known = build_suspect_drive()
    image = image_device(fs.device)
    assert image.sha256() == fs.device.sha256(), "imaging integrity failure"
    technique = HashSearchTechnique(known)
    report = technique.run(fs)
    print(
        f"hash search: {report.files_examined} files examined, "
        f"{report.hit_count} contraband hits "
        f"({sum(h.recovered_deleted for h in report.hits)} from deleted "
        f"files)"
    )

    hits_item = officer.act(
        technique.required_actions()[0],
        time=4.0,
        content="; ".join(h.file_name for h in report.hits),
        description="contraband hash hits on seized drive",
        comply=False,
        derived_from=(identity.evidence_id,),
    )
    analysis_item = derive(
        hits_item,
        description="forensic analysis report of contraband files",
        content="EXIF and timeline analysis of hash hits",
        action=hits_item.action,
    )
    officer.evidence.append(analysis_item)

    chain = ChainOfCustody(hits_item, custodian=officer.name, time=4.0)
    chain.transfer("evidence locker", time=5.0)

    # 4. The suppression hearing.
    outcome = SuppressionHearing(engine).hear(
        officer.evidence, custody={hits_item.evidence_id: chain}
    )
    for item in officer.evidence:
        finding = outcome.findings[item.evidence_id]
        print(
            f"  evidence #{item.evidence_id} ({item.description}): "
            f"{finding.outcome.value} — {finding.reason}"
        )
    print(
        f"suppression rate: {outcome.suppression_rate:.0%} "
        f"({len(outcome.admitted)} admitted / "
        f"{len(outcome.suppressed)} suppressed)"
    )
    print()


def main() -> None:
    storyline(comply=True)
    storyline(comply=False)


if __name__ == "__main__":
    main()
