"""Reconstructing a chat session from a Title III intercept (section II.A).

Run::

    python examples/session_reconstruction.py

The paper's court-order/wiretap example: collect all packets involving a
particular IP address and reconstruct the conversation.  The example runs
the interception lawfully (a wiretap order for content), reconstructs the
session transcript, then runs the III.A.2 attribution analysis on the
suspect's machine — proving *who* typed, ruling out malware, and showing
knowledge of the subject — to build a warrant-grade showing.
"""

from repro.core import ComplianceEngine, ProcessKind, Standard
from repro.investigation import (
    AttributionAnalyzer,
    BrowsingRecord,
    Case,
    Investigator,
    LoginRecord,
    MachineProfile,
    MalwareScanResult,
    UserAccount,
)
from repro.netsim import FullInterceptTap, Network, SessionReassembler
from repro.netsim.isp import IspNode


def run_interception():
    net = Network(seed=55)
    isp = IspNode("metro-isp", net.sim)
    net.add_node(isp)
    suspect = net.add_host("suspect")
    buyer = net.add_host("buyer")
    suspect_link = net.connect(suspect, isp, latency=0.004)
    net.connect(isp, buyer, latency=0.009)
    net.build_routes()
    isp.register_subscriber("suspect", "S. Vane", "3 Quay St")

    # The officer holds a Title III order; the ISP verifies it.
    tap = FullInterceptTap("t3-intercept", target_ip=suspect.ip)
    isp.attach_tap(suspect_link, tap, ProcessKind.WIRETAP_ORDER)

    chat = [
        (suspect, buyer, "got the chemicals, lab runs tonight"),
        (buyer, suspect, "same price as last time?"),
        (suspect, buyer, "yes. usual drop"),
        (buyer, suspect, "deal"),
    ]
    for index, (sender, receiver, text) in enumerate(chat):
        net.sim.schedule(
            index * 2.0,
            lambda s=sender, r=receiver, t=text: s.send_to(
                r, t, src_port=5190, dst_port=5190
            ),
        )
    net.sim.run()
    return net, suspect, tap


def main() -> None:
    net, suspect, tap = run_interception()

    print("=== reconstructed session (lawful Title III intercept) ===")
    reassembler = SessionReassembler()
    for session in reassembler.session_for(tap, suspect.ip):
        print(session.transcript())
    print()

    # III.A.2: attribute the conversation to a person, not a machine.
    profile = MachineProfile(
        accounts=(
            UserAccount("svane", password_protected=True),
            UserAccount("guest", password_protected=False),
        ),
        logins=(
            LoginRecord("svane", login_at=0.0, logout_at=30.0),
        ),
        browsing=(
            BrowsingRecord(
                "svane", 1.0, "how to build a methamphetamine laboratory"
            ),
            BrowsingRecord("svane", 1.5, "buy lab glassware bulk"),
            BrowsingRecord("svane", 2.0, "weather tomorrow"),
        ),
        malware_scan=MalwareScanResult(clean=True),
    )
    analyzer = AttributionAnalyzer(
        crime_keywords=["methamphetamine", "lab glassware"]
    )
    report = analyzer.analyze(profile, artifact_created_at=2.0)
    print("=== III.A.2 attribution analysis ===")
    print(f"attributed user:       {report.attributed_user}")
    print(f"exclusive attribution: {report.exclusive_attribution}")
    print(f"malware ruled out:     {report.malware_ruled_out}")
    print(f"knowledge shown:       {report.knowledge_shown}")
    for entry in report.knowledge_entries:
        print(f"  history: {entry!r}")
    print(f"supports:              {report.supports.name}")
    assert report.supports is Standard.PROBABLE_CAUSE

    # The analysis becomes a fact strong enough for a premises warrant.
    case = Case("op-quayside")
    case.add_fact(report.to_fact("intercepted chat session", observed_at=8.0))
    officer = Investigator("det. ibarra", engine=ComplianceEngine())
    decision = officer.apply_for(
        ProcessKind.SEARCH_WARRANT,
        case,
        time=9.0,
        target_place="3 Quay St",
        target_items=("computers", "lab equipment records"),
    )
    print(
        f"\nwarrant application on the attribution fact: "
        f"{'granted' if decision.granted else 'denied'} "
        f"({decision.reason})"
    )


if __name__ == "__main__":
    main()
