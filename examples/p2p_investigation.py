"""Section IV.A end to end: the anonymous-P2P timing investigation.

Run::

    python examples/p2p_investigation.py

Builds a OneSwarm-like friend-to-friend overlay seeded with contraband
sources, has a law-enforcement peer join and query, classifies neighbours
by response timing, verifies the technique needs no legal process, and
takes the resulting evidence through a suppression hearing — where it is
admitted, because nothing about the collection violated anyone's
reasonable expectation of privacy.
"""

import random

from repro.anonymity import P2POverlay
from repro.core import ComplianceEngine, ProcessKind
from repro.court import SuppressionHearing
from repro.evidence import EvidenceItem
from repro.investigation import format_assessment
from repro.techniques import OneSwarmTimingAttack

FILE_ID = "contraband-042.jpg"


def main() -> None:
    # -- build the overlay -------------------------------------------------
    overlay = P2POverlay(seed=2026)
    sources = overlay.random_topology(
        n_peers=150,
        mean_degree=4.0,
        source_fraction=0.12,
        file_id=FILE_ID,
    )
    print(f"overlay: 150 peers, {len(sources)} sources of {FILE_ID!r}")

    # -- law enforcement joins as an ordinary peer -------------------------
    overlay.add_peer("le-agent")
    rng = random.Random(7)
    neighbours = rng.sample(
        [name for name in overlay.peers if name != "le-agent"], 12
    )
    for neighbour in neighbours:
        overlay.befriend("le-agent", neighbour)
    truth = {n for n in neighbours if overlay.is_source(n, FILE_ID)}
    print(f"befriended {len(neighbours)} peers; {len(truth)} are sources")

    # -- legal check BEFORE running (the paper's core advice) ---------------
    attack = OneSwarmTimingAttack()
    assessment = attack.assess()
    print()
    print(format_assessment(assessment))
    assert assessment.required_process is ProcessKind.NONE, (
        "technique unexpectedly needs process"
    )

    # -- run the investigation ----------------------------------------------
    result = attack.investigate(
        overlay, "le-agent", FILE_ID, trials=12, ttl=5
    )
    print()
    print("neighbour assessments:")
    for a in result.assessments:
        print(
            f"  {a.name:10s} median={a.median_response_time * 1000:7.1f} ms "
            f"rtt={a.ping_rtt * 1000:5.1f} ms "
            f"excess={a.excess_delay * 1000:7.1f} ms "
            f"-> {'SOURCE' if a.classified_source else 'forwarder'}"
        )
    metrics = attack.score(result, overlay)
    print(
        f"precision={metrics.precision:.2f} recall={metrics.recall:.2f} "
        f"f1={metrics.f1:.2f}"
    )

    # -- the evidence survives a suppression hearing -------------------------
    engine = ComplianceEngine()
    items = [
        EvidenceItem(
            description=f"timing measurements identifying {name} as a source",
            content=f"{name}: classified source of {FILE_ID}",
            acquired_by="le-agent",
            acquired_at=overlay.sim.now,
            action=attack.required_actions()[1],
        )
        for name in result.identified_sources()
    ]
    outcome = SuppressionHearing(engine).hear(items)
    print()
    print(
        f"suppression hearing: {len(outcome.admitted)} admitted, "
        f"{len(outcome.suppressed)} suppressed "
        f"(rate {outcome.suppression_rate:.0%})"
    )
    print(
        "the identified sources can now support warrant applications "
        "(paper section III.A.1)"
    )


if __name__ == "__main__":
    main()
