"""Section IV.B end to end: PN-code DSSS watermark traceback through Tor.

Run::

    python examples/watermark_traceback.py

The paper's "situation one": law enforcement has seized a web server
distributing contraband and wants to know which of several candidate
subscribers is downloading from it through an anonymity network.  It
slightly modulates the server's outgoing traffic rate with a long PN code
and despreads the arrival rates observed at each candidate's ISP.

The example shows both halves of the paper's analysis:

* **technically** the watermark identifies the right subscriber among
  decoys and beats a passive packet-counting baseline;
* **legally** the rate observation needs a pen/trap court order — run
  warrantless, the same evidence is suppressed; with the order, admitted.
"""

from repro.anonymity import OnionNetwork
from repro.core import ComplianceEngine, ProcessKind
from repro.court import SuppressionHearing
from repro.investigation import format_assessment
from repro.netsim import Simulator
from repro.techniques import (
    DsssWatermarkTechnique,
    PacketCountingCorrelator,
    PnCode,
    PoissonFlow,
    WatermarkConfig,
)

N_CANDIDATES = 8
TARGET = 0  # ground truth: candidate 0 talks to the seized server
START = 1.0


def build_world(seed: int = 11):
    """Candidate subscribers, each with a circuit through the onion net."""
    sim = Simulator()
    network = OnionNetwork(sim, n_relays=25, seed=seed)
    circuits = [
        network.build_circuit(f"subscriber-{i}", "seized-server")
        for i in range(N_CANDIDATES)
    ]
    return sim, circuits


def main() -> None:
    technique = DsssWatermarkTechnique(
        code=PnCode.msequence(8),  # 255 chips
        config=WatermarkConfig(
            chip_duration=0.4, base_rate=25.0, amplitude=0.3
        ),
    )

    # -- legal analysis first -------------------------------------------------
    assessment = technique.assess()
    print(format_assessment(assessment))
    assert assessment.required_process is ProcessKind.COURT_ORDER
    print()

    # -- run the attack ---------------------------------------------------------
    sim, circuits = build_world()
    watermarker = technique.watermarker(seed=3)
    watermarker.embed(circuits[TARGET], start=START)
    for index, circuit in enumerate(circuits):
        if index != TARGET:
            PoissonFlow(rate=25.0, seed=50 + index).schedule(
                circuit, start=START, duration=watermarker.duration
            )
    sim.run()

    detector = technique.detector()
    print("watermark despreading per candidate:")
    detections = []
    for index, circuit in enumerate(circuits):
        result = detector.detect(
            circuit.client_arrival_times(), start=START, max_offset=0.8
        )
        detections.append(result)
        marker = " <== identified" if result.detected else ""
        print(
            f"  subscriber-{index}: corr={result.correlation:+.3f} "
            f"(threshold {result.threshold:.3f}){marker}"
        )
    identified = [i for i, r in enumerate(detections) if r.detected]
    print(f"identified: {identified} (ground truth: [{TARGET}])")
    print()

    # -- baseline comparison ------------------------------------------------------
    baseline = PacketCountingCorrelator(window=0.4, max_offset=0.8)
    reference = circuits[TARGET].server_departure_times()
    print("passive packet-count correlation (baseline):")
    for index, circuit in enumerate(circuits):
        result = baseline.correlate(
            reference,
            circuit.client_arrival_times(),
            start=START,
            duration=watermarker.duration,
        )
        print(f"  subscriber-{index}: corr={result.correlation:+.3f}")
    print()

    # -- legal consequences --------------------------------------------------------
    engine = ComplianceEngine()
    hearing = SuppressionHearing(engine)
    observe_action = technique.required_actions()[1]

    def offer(process: ProcessKind):
        from repro.evidence import EvidenceItem

        item = EvidenceItem(
            description="rate observations identifying subscriber-0",
            content="subscriber-0 carries the watermarked flow",
            acquired_by="le",
            acquired_at=sim.now,
            action=observe_action,
            process_held=process,
        )
        return hearing.hear([item])

    warrantless = offer(ProcessKind.NONE)
    with_order = offer(ProcessKind.COURT_ORDER)
    print(
        f"offered without process: suppression rate "
        f"{warrantless.suppression_rate:.0%}"
    )
    print(
        f"offered with a court order: suppression rate "
        f"{with_order.suppression_rate:.0%}"
    )


if __name__ == "__main__":
    main()
