"""Table 1 rows 3-6, physically simulated: WarDriving outside a home.

Run::

    python examples/wardriving.py

Builds a home WLAN (open, then WPA-protected) with an officer's sniffer
parked in radio range, and runs the four collection postures of Table 1
rows 3-6: headers vs full frames, open vs encrypted.  For each posture the
example shows (a) what the sniffer physically captures and (b) what the
compliance engine says about collecting it — the Street View lesson in
code.
"""

from repro.core import (
    Actor,
    ComplianceEngine,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    Timing,
)
from repro.netsim import (
    FullInterceptTap,
    Network,
    PenRegisterTap,
    WirelessMedium,
)
from repro.netsim.packet import Packet


def browse(medium, laptop, router_host, n=3):
    """The resident browses: frames radiate beyond the walls."""
    for index in range(n):
        frame = Packet(
            src_mac=laptop.mac,
            dst_mac=router_host.mac,
            src_ip=laptop.ip,
            dst_ip=router_host.ip,
            src_port=40000 + index,
            dst_port=443,
            payload=f"GET /private/page-{index} (session cookie: s3cr3t)",
        )
        medium.broadcast(frame, laptop)


def posture(engine, label, data_kind, encrypted, captured_summary):
    action = InvestigativeAction(
        description=f"log wireless {label} outside the residence",
        actor=Actor.GOVERNMENT,
        data_kind=data_kind,
        timing=Timing.REAL_TIME,
        context=EnvironmentContext(
            place=Place.WIRELESS_BROADCAST, encrypted=encrypted
        ),
    )
    ruling = engine.evaluate(action)
    answer = (
        "No need" if not ruling.needs_process
        else f"Need ({ruling.required_process.display_name})"
    )
    print(f"  {label:32s} captured: {captured_summary:28s} engine: {answer}")


def run_network(network_key, title):
    print(f"--- {title} ---")
    net = Network(seed=31)
    laptop = net.add_host("resident-laptop")
    router_host = net.add_host("home-router")
    medium = WirelessMedium(net.sim, "home-wlan", network_key=network_key)
    medium.join(laptop)
    medium.join(router_host)

    pen = PenRegisterTap("officer-headers")
    full = FullInterceptTap("officer-full")
    medium.add_sniffer(pen)
    medium.add_sniffer(full)

    browse(medium, laptop, router_host)
    net.sim.run()

    readable = full.payloads()
    header_summary = f"{len(pen.records)} header records"
    payload_summary = (
        f"{len(readable)}/{full.observed_count} payloads readable"
    )
    engine = ComplianceEngine()
    encrypted = network_key is not None
    posture(
        engine, "headers only (pen register)", DataKind.NON_CONTENT,
        encrypted, header_summary,
    )
    posture(
        engine, "full frames (payload capture)", DataKind.CONTENT,
        encrypted, payload_summary,
    )
    if readable:
        print(f"  first readable payload: {readable[0]!r}")
    print()


def main() -> None:
    run_network(None, "open network (Table 1 rows 3-4)")
    run_network("wpa-home-key", "WPA network (Table 1 rows 5-6)")
    print(
        "headers are collectable without process either way; payload\n"
        "collection needs a Title III order even on the open network —\n"
        "capturing it anyway is what made Street View a scandal."
    )


if __name__ == "__main__":
    main()
