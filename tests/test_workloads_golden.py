"""Golden-file regression: the labelled corpus must not drift silently.

``tests/data/golden_corpus_5000_seed99.json`` pins the required-process
histogram *and* a SHA-256 digest of the ordered labels of
``labeled_corpus(5000, seed=99)``.  Any change to the workload generator,
the engine's rules, or the enum vocabulary that moves even one label
fails this test loudly.  If the drift is intentional, regenerate the
golden file (see the module docstring of ``repro.workloads``) and commit
it with the change that caused it.
"""

import json
from pathlib import Path

from repro.core import ProcessKind
from repro.workloads import label_digest, labeled_corpus, process_distribution

GOLDEN_PATH = (
    Path(__file__).parent / "data" / "golden_corpus_5000_seed99.json"
)


class TestGoldenCorpus:
    def test_distribution_and_digest_match_golden_file(self):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        corpus = labeled_corpus(golden["corpus_size"], seed=golden["seed"])
        distribution = {
            kind.name: count
            for kind, count in process_distribution(corpus).items()
        }
        assert distribution == golden["process_distribution"], (
            "required-process histogram drifted from the golden file; "
            "if intentional, regenerate tests/data/"
            "golden_corpus_5000_seed99.json"
        )
        assert label_digest(corpus) == golden["label_digest"], (
            "per-action labels drifted even though the histogram matches; "
            "regenerate the golden file if this is an intended rule change"
        )

    def test_golden_file_is_internally_consistent(self):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert (
            sum(golden["process_distribution"].values())
            == golden["corpus_size"]
        )
        assert set(golden["process_distribution"]) == {
            kind.name for kind in ProcessKind
        }
        int(golden["label_digest"], 16)
        assert len(golden["label_digest"]) == 64

    def test_digest_is_order_sensitive(self):
        corpus = labeled_corpus(50, seed=99)
        assert label_digest(corpus) != label_digest(corpus[::-1])
