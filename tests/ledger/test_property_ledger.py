"""Property-based tests (hypothesis) for ledger persistence.

The ledger's contract is *lossless canonical persistence*:

* persist → reload is byte-identical in canonical form for every record
  family (rulings, instruments, custody chains, suppression outcomes);
* query results are a pure function of ledger contents — inserting the
  same rulings in any order answers every query identically, FTS
  included.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Actor,
    ComplianceEngine,
    ConsentFacts,
    ConsentScope,
    DataKind,
    DoctrineFacts,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ProcessKind,
    Timing,
)
from repro.core.fingerprint import action_fingerprint
from repro.court.docket import IssuedProcess
from repro.evidence.custody import ChainOfCustody, CustodyEntry
from repro.evidence.items import EvidenceItem
from repro.ledger import (
    Ledger,
    citation_histogram,
    process_histogram,
    ruling_to_json,
    rulings_citing,
    search_reasoning,
)

_ENGINE = ComplianceEngine()

contexts = st.builds(
    EnvironmentContext,
    place=st.sampled_from(list(Place)),
    encrypted=st.booleans(),
    knowingly_exposed=st.booleans(),
    shared_with_others=st.booleans(),
    delivered_to_recipient=st.booleans(),
    provider_serves_public=st.none() | st.booleans(),
    policy_eliminates_rep=st.booleans(),
    home_interior=st.booleans(),
    technology_in_general_public_use=st.booleans(),
    abandoned=st.booleans(),
)

consents = st.builds(
    ConsentFacts,
    scope=st.sampled_from(list(ConsentScope)),
    voluntary=st.booleans(),
    exceeds_authority=st.booleans(),
    revoked=st.booleans(),
    covers_target_data=st.booleans(),
)

doctrines = st.builds(
    DoctrineFacts,
    exigent_circumstances=st.booleans(),
    plain_view=st.booleans(),
    target_on_probation=st.booleans(),
    emergency_pen_trap=st.booleans(),
    hash_search_of_lawful_media=st.booleans(),
    mining_of_lawful_data=st.booleans(),
    credentials_lawfully_obtained=st.booleans(),
    monitoring_own_network=st.booleans(),
    victim_invited_monitoring=st.booleans(),
)

actions = st.builds(
    InvestigativeAction,
    description=st.just("generated action"),
    actor=st.sampled_from(list(Actor)),
    data_kind=st.sampled_from(list(DataKind)),
    timing=st.sampled_from(list(Timing)),
    context=contexts,
    consent=consents,
    doctrine=doctrines,
)

printable = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=40
)

instruments = st.builds(
    IssuedProcess,
    kind=st.sampled_from(list(ProcessKind)),
    issued_to=printable,
    issued_at=st.floats(0, 1e6, allow_nan=False),
    expires_at=st.floats(0, 1e6, allow_nan=False),
    scope=printable,
    revoked=st.booleans(),
)

#: (delay, event-text) pairs; delays accumulate so chain time is
#: monotone, which ChainOfCustody enforces.
custody_events = st.lists(
    st.tuples(st.floats(0, 1e3, allow_nan=False), printable), max_size=8
)


@given(actions)
@settings(max_examples=150, deadline=None)
def test_ruling_persist_reload_is_byte_identical(action):
    fingerprint = action_fingerprint(action)
    ruling = _ENGINE.evaluate(action)
    with Ledger(":memory:") as ledger:
        ledger.record_ruling(fingerprint, ruling)
        reloaded = ledger.ruling_for(fingerprint)
    assert reloaded == ruling
    assert ruling_to_json(reloaded) == ruling_to_json(ruling)
    assert reloaded.explain() == ruling.explain()


@given(instruments)
@settings(max_examples=150, deadline=None)
def test_instrument_persist_reload_preserves_every_field(instrument):
    with Ledger(":memory:") as ledger:
        ledger.record_instrument("key", instrument)
        reloaded = ledger.instrument_for("key")
    assert reloaded.kind is instrument.kind
    assert reloaded.issued_to == instrument.issued_to
    assert reloaded.issued_at == instrument.issued_at
    assert reloaded.expires_at == instrument.expires_at
    assert reloaded.scope == instrument.scope
    assert reloaded.revoked == instrument.revoked


@given(actions, custody_events)
@settings(max_examples=100, deadline=None)
def test_custody_persist_reload_is_entry_identical(action, events):
    item = EvidenceItem(
        description="generated evidence",
        content="payload",
        acquired_by="custodian",
        acquired_at=0.0,
        action=action,
        process_held=ProcessKind.NONE,
    )
    chain = ChainOfCustody(item, custodian="custodian", time=0.0)
    now = 0.0
    for delay, text in events:
        now += delay
        chain.record_event(text or "event", time=now)
    with Ledger(":memory:") as ledger:
        ledger.record_custody("item", chain)
        record = ledger.custody_for("item")
    assert record.entries == tuple(chain.entries)
    assert all(isinstance(entry, CustodyEntry) for entry in record.entries)


@given(
    actions,
    st.sampled_from(["admissible", "suppressed", "suppressed_derivative"]),
    printable,
    printable,
)
@settings(max_examples=100, deadline=None)
def test_suppression_persist_reload_is_identical(
    action, outcome, reason, run_label
):
    fingerprint = action_fingerprint(action)
    with Ledger(":memory:") as ledger:
        ledger.record_suppression(
            "key", fingerprint, outcome, reason=reason, run_label=run_label
        )
        record = ledger.suppression_for("key")
    assert record.outcome == outcome
    assert record.reason == reason
    assert record.run_label == run_label


@given(
    st.lists(actions, min_size=2, max_size=12, unique_by=id),
    st.randoms(use_true_random=False),
)
@settings(max_examples=50, deadline=None)
def test_queries_stable_under_insertion_order_permutation(batch, rng):
    """Shuffling insertion order never changes any query's answer."""
    rulings = [
        (action_fingerprint(a), _ENGINE.evaluate(a)) for a in batch
    ]
    shuffled = list(rulings)
    rng.shuffle(shuffled)

    def load(pairs):
        ledger = Ledger(":memory:")
        for fingerprint, ruling in pairs:
            ledger.record_ruling(fingerprint, ruling)
        return ledger

    with load(rulings) as first, load(shuffled) as second:
        assert [r.to_dict() for r in rulings_citing(first)] == [
            r.to_dict() for r in rulings_citing(second)
        ]
        assert process_histogram(first) == process_histogram(second)
        assert citation_histogram(first) == citation_histogram(second)
        for query in ("warrant", "probable cause", "subpoena"):
            assert [
                r.fingerprint_digest
                for r in search_reasoning(first, f'"{query}"')
            ] == [
                r.fingerprint_digest
                for r in search_reasoning(second, f'"{query}"')
            ]
        assert [fp for fp, __ in first.iter_rulings()] == [
            fp for fp, __ in second.iter_rulings()
        ]
