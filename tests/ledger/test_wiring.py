"""The ledger wired through the stack: engine, pipeline, workflow, CLI.

These tests pin the *boundaries* at which each layer persists — the
engine on every fresh ruling, the pipeline per scene at the suppression
span, the workflow engine at the run-complete journal record — plus the
obs counters/gauges the writes emit and the CLI verbs over a real file.
"""

import pytest

from repro import obs
from repro.core import ComplianceEngine, RulingCache, build_table1
from repro.core.engine import RulingLedger
from repro.core.fingerprint import action_fingerprint
from repro.investigation.pipeline import InvestigationPipeline
from repro.ledger import Ledger, rulings_citing
from repro.workloads import action_corpus


class TestEngineRecording:
    def test_every_fresh_ruling_is_persisted(self):
        corpus = action_corpus(300, seed=11)
        with Ledger(":memory:") as ledger:
            engine = ComplianceEngine(cache=RulingCache(), ledger=ledger)
            engine.evaluate_many(corpus)
            unique = {action_fingerprint(a) for a in corpus}
            assert ledger.counts()["rulings"] == len(unique)
            for action in corpus:
                assert (
                    ledger.ruling_for(action_fingerprint(action))
                    is not None
                )

    def test_uncached_engine_records_too(self):
        scenes = build_table1()[:5]
        with Ledger(":memory:") as ledger:
            engine = ComplianceEngine(ledger=ledger)
            for scene in scenes:
                engine.evaluate(scene.action)
            assert ledger.counts()["rulings"] == len(
                {action_fingerprint(s.action) for s in scenes}
            )

    def test_ledger_satisfies_the_protocol(self):
        with Ledger(":memory:") as ledger:
            assert isinstance(ledger, RulingLedger)

    def test_write_counter_increments_under_obs(self):
        obs.enable()
        try:
            with Ledger(":memory:") as ledger:
                engine = ComplianceEngine(ledger=ledger)
                engine.evaluate(build_table1()[0].action)
            rendered = obs.OBS.registry.render_text()
        finally:
            obs.disable()
        assert "repro_ledger_ruling_writes_total" in rendered

    def test_bind_ledger_exports_gauges(self):
        obs.enable()
        try:
            with Ledger(":memory:") as ledger:
                obs.bind_ledger(ledger.stats)
                engine = ComplianceEngine(ledger=ledger)
                engine.evaluate(build_table1()[0].action)
                rendered = obs.OBS.registry.render_text()
        finally:
            obs.disable()
        assert 'repro_ledger_ruling_writes{ledger="ledger"} 1' in rendered


class TestPipelinePersistence:
    @pytest.fixture(scope="class")
    def ledger(self):
        with Ledger(":memory:") as led:
            pipeline = InvestigationPipeline(ledger=led, run_label="t")
            scenarios = build_table1()
            pipeline.run_all(scenarios, obtain_process=True)
            pipeline.run_all(scenarios, obtain_process=False)
            yield led

    def test_every_scene_persists_custody_and_suppression(self, ledger):
        counts = ledger.counts()
        assert counts["suppression_outcomes"] == 40  # 20 scenes x 2 modes
        assert counts["custody_chains"] == 40
        assert counts["dockets"] == 1

    def test_keys_are_deterministic_and_reloadable(self, ledger):
        # Scene 8 (ISP full packets) requires process, so defying it
        # must leave a suppression on file while complying does not.
        comply = ledger.suppression_for("t/scene-8/comply/evidence")
        defy = ledger.suppression_for("t/scene-8/no-process/evidence")
        assert comply.outcome == "admissible"
        assert defy.outcome != "admissible"
        chain = ledger.custody_for("t/scene-8/comply/custody")
        assert chain is not None and chain.entries

    def test_instruments_file_on_the_docket(self, ledger):
        instrument = ledger.instrument_for("t/scene-8/comply/instrument")
        assert instrument is not None
        row = ledger._db.execute(
            "SELECT docket_id FROM instruments WHERE instrument_key = ?",
            ("t/scene-8/comply/instrument",),
        ).fetchone()
        assert row["docket_id"] is not None

    def test_rerunning_upserts_instead_of_duplicating(self, ledger):
        before = ledger.counts()
        pipeline = InvestigationPipeline(ledger=ledger, run_label="t")
        pipeline.run_all(build_table1(), obtain_process=False)
        after = ledger.counts()
        assert after["suppression_outcomes"] == before["suppression_outcomes"]
        assert after["custody_chains"] == before["custody_chains"]

    def test_sca_2703_suppression_query_answers(self, ledger):
        rows = rulings_citing(
            ledger, authority_key="sca_2703", suppressed=True
        )
        assert rows
        assert all("sca_2703" in row.citations for row in rows)


class TestWorkflowPersistence:
    def test_run_persists_custody_and_verdict(self):
        from repro.workflow.engine import WorkflowEngine
        from repro.workflow.packs import get_pack

        pack = get_pack("photo-recovery")
        with Ledger(":memory:") as ledger:
            subject = pack.build_subject(7, None)
            engine = WorkflowEngine(pack.build_spec(), ledger=ledger)
            result = engine.run(subject, seed=7)
            key = (
                f"workflow/{pack.build_spec().name}/"
                f"{subject.subject_id}/seed-7"
            )
            verdict = ledger.suppression_for(f"{key}/evidence")
            chain = ledger.custody_for(f"{key}/custody")
        assert result.status == "completed"
        assert verdict.outcome == "admissible"
        assert chain.entries == tuple(result.custody.entries)

    def test_resume_upserts_the_same_keys(self, tmp_path):
        from repro.workflow.engine import WorkflowEngine
        from repro.workflow.packs import get_pack

        pack = get_pack("photo-recovery")
        journal = tmp_path / "run.jsonl"
        with Ledger(":memory:") as ledger:
            engine = WorkflowEngine(pack.build_spec(), ledger=ledger)
            engine.run(pack.build_subject(7, None), seed=7,
                       journal_path=journal)
            first = ledger.counts()
            engine.resume(pack.build_subject(7, None), seed=7,
                          journal_path=journal)
            assert ledger.counts() == first


class TestChaosPersistence:
    def test_serial_sweep_persists_per_seed_namespaces(self):
        from repro.faults.chaos import run_chaos

        with Ledger(":memory:") as ledger:
            # Scenes 1 and 8 cover both classes (no-need and need), so
            # the sweep's suppression-split invariant stays meaningful.
            report = run_chaos(
                seed=7, n_plans=2, scenes="1,8", ledger=ledger
            )
            assert report.ok
            counts = ledger.counts()
            # 2 plans x 2 scenes x 2 modes
            assert counts["suppression_outcomes"] == 8
            assert (
                ledger.suppression_for(
                    "chaos/seed-8/scene-1/comply/evidence"
                )
                is not None
            )

    def test_ledger_forces_the_serial_path(self):
        """A ledger-bearing sweep must not fan out across processes."""
        from repro.faults.chaos import run_chaos

        with Ledger(":memory:") as ledger:
            report = run_chaos(
                seed=7,
                n_plans=2,
                scenes="1,8",
                max_workers=8,
                ledger=ledger,
            )
            assert report.ok
            assert ledger.counts()["rulings"] > 0


class TestLedgerCli:
    def test_populate_query_stats_prime_vacuum(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "case.db")
        assert main(["ledger", "populate", path, "--corpus", "200"]) == 0
        assert (
            main(
                [
                    "ledger",
                    "query",
                    path,
                    "--citing",
                    "sca_2703",
                    "--suppressed",
                    "--expect-rows",
                ]
            )
            == 0
        )
        assert main(["ledger", "stats", path, "--json"]) == 0
        assert (
            main(
                [
                    "ledger",
                    "prime",
                    path,
                    "--verify",
                    "--corpus",
                    "200",
                ]
            )
            == 0
        )
        assert main(["ledger", "vacuum", path]) == 0
        out = capsys.readouterr().out
        assert "0 mismatch(es)" in out

    def test_query_missing_ledger_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["ledger", "query", str(tmp_path / "no.db")]) == 2
        assert "no ledger" in capsys.readouterr().out

    def test_expect_rows_fails_on_empty_match(self, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "case.db")
        assert main(["ledger", "populate", path]) == 0
        assert (
            main(
                [
                    "ledger",
                    "query",
                    path,
                    "--citing",
                    "no_such_authority",
                    "--expect-rows",
                ]
            )
            == 1
        )

    def test_fts_query_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "case.db")
        assert main(["ledger", "populate", path]) == 0
        assert (
            main(
                [
                    "ledger",
                    "query",
                    path,
                    "--fts",
                    '"probable cause"',
                    "--expect-rows",
                ]
            )
            == 0
        )

    def test_chaos_ledger_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "chaos.db")
        assert (
            main(
                [
                    "chaos",
                    "--budget",
                    "small",
                    "--scenes",
                    "1,8",
                    "--ledger",
                    path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ledger" in out
        assert main(["ledger", "stats", path]) == 0
