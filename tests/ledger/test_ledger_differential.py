"""Differential tests: persistence must never change a ruling.

The ledger-side mirror of ``tests/core/test_engine_differential.py``.
Three engines rule the same 10,000-action corpus:

* **fresh** — no cache, no ledger: the reference;
* **recorded** — a ledger-bearing engine whose rulings are then
  *reloaded from the ledger* by fingerprint;
* **primed** — a brand-new engine whose cache was warm-primed from that
  ledger before it ruled anything.

All three must agree byte for byte on payloads, labels, and
``explain()`` output, and the primed engine must actually serve from
its warmed cache.
"""

import pytest

from repro.core import ComplianceEngine, RulingCache
from repro.core.fingerprint import action_fingerprint
from repro.ledger import Ledger
from repro.workloads import action_corpus

CORPUS_SIZE = 10_000
SEED = 7


@pytest.fixture(scope="module")
def corpus():
    return action_corpus(CORPUS_SIZE, seed=SEED)


@pytest.fixture(scope="module")
def fresh_rulings(corpus):
    return ComplianceEngine().evaluate_many(corpus)


@pytest.fixture(scope="module")
def ledger(corpus):
    with Ledger(":memory:") as led:
        engine = ComplianceEngine(
            cache=RulingCache(maxsize=2 * CORPUS_SIZE), ledger=led
        )
        engine.evaluate_many(corpus)
        yield led


class TestLedgerReloadedVsFresh:
    def test_every_ruling_reloads_byte_identical(
        self, corpus, fresh_rulings, ledger
    ):
        for action, fresh in zip(corpus, fresh_rulings):
            reloaded = ledger.ruling_for(action_fingerprint(action))
            assert reloaded is not None
            assert reloaded.to_dict() == fresh.to_dict()
            assert reloaded.explain() == fresh.explain()

    def test_ledger_holds_every_unique_fingerprint(self, corpus, ledger):
        unique = {action_fingerprint(action) for action in corpus}
        assert ledger.counts()["rulings"] == len(unique)


class TestWarmPrimedVsFresh:
    def test_primed_engine_agrees_and_hits_its_cache(
        self, corpus, fresh_rulings, ledger
    ):
        primed = ComplianceEngine(
            cache=RulingCache(maxsize=2 * CORPUS_SIZE), ledger=ledger
        )
        n_primed = primed.prime_from_ledger()
        assert n_primed == ledger.counts()["rulings"]

        primed_rulings = primed.evaluate_many(corpus)
        for fresh, warm in zip(fresh_rulings, primed_rulings):
            assert warm.to_dict() == fresh.to_dict()
            assert warm.explain() == fresh.explain()
        # Every action was primed, so nothing should have been computed.
        assert primed.cache_stats.hits == CORPUS_SIZE
        assert primed.cache_stats.misses == 0

    def test_prime_respects_limit(self, ledger):
        primed = ComplianceEngine(cache=RulingCache(), ledger=ledger)
        assert primed.prime_from_ledger(limit=5) == 5

    def test_prime_without_ledger_or_cache_raises(self):
        with pytest.raises(ValueError):
            ComplianceEngine(cache=RulingCache()).prime_from_ledger()
        with Ledger(":memory:") as led:
            with pytest.raises(ValueError):
                ComplianceEngine(ledger=led).prime_from_ledger()


class TestPersistenceAcrossProcessBoundary:
    def test_file_ledger_round_trips_rulings(self, tmp_path):
        """Same gate over a *file* ledger closed and reopened."""
        corpus = action_corpus(500, seed=SEED)
        path = tmp_path / "case.db"
        with Ledger(path) as led:
            ComplianceEngine(
                cache=RulingCache(), ledger=led
            ).evaluate_many(corpus)
        fresh = ComplianceEngine().evaluate_many(corpus)
        with Ledger(path) as led:
            primed = ComplianceEngine(cache=RulingCache(), ledger=led)
            primed.prime_from_ledger()
            warm = primed.evaluate_many(corpus)
        assert [r.to_dict() for r in warm] == [r.to_dict() for r in fresh]
        assert [r.explain() for r in warm] == [r.explain() for r in fresh]
