"""Unit tests for the SQLite ledger store.

Covers the migration runner (version stamping, reopen, refusal of
newer-schema files), idempotent writes per record family, byte-exact
ruling reload, the FTS5 feature gate and its portable fallback, and
handle lifecycle errors.
"""

import sqlite3

import pytest

from repro.core import ComplianceEngine, ProcessKind, build_table1
from repro.core.fingerprint import action_fingerprint, fingerprint_digest
from repro.court.docket import IssuedProcess
from repro.evidence.custody import ChainOfCustody
from repro.evidence.items import EvidenceItem
from repro.ledger import (
    SCHEMA_VERSION,
    Ledger,
    LedgerError,
    ruling_to_json,
    search_reasoning,
)
from repro.ledger import store as store_mod
from repro.workloads import action_corpus

ENGINE = ComplianceEngine()


@pytest.fixture()
def scene_rulings():
    scenarios = build_table1()
    return [
        (action_fingerprint(s.action), ENGINE.evaluate(s.action))
        for s in scenarios
    ]


def _evidence_item():
    action = build_table1()[0].action
    return EvidenceItem(
        description="imaged drive",
        content="deadbeef",
        acquired_by="det. rivera",
        acquired_at=1.0,
        action=action,
        process_held=ProcessKind.SEARCH_WARRANT,
    )


class TestMigrations:
    def test_fresh_ledger_is_at_schema_version(self):
        with Ledger(":memory:") as ledger:
            assert ledger.schema_version == SCHEMA_VERSION

    def test_reopen_is_idempotent(self, tmp_path):
        path = tmp_path / "case.db"
        with Ledger(path) as ledger:
            assert ledger.schema_version == SCHEMA_VERSION
        with Ledger(path) as ledger:
            assert ledger.schema_version == SCHEMA_VERSION
            assert ledger.counts()["rulings"] == 0

    def test_newer_schema_file_is_refused(self, tmp_path):
        path = tmp_path / "future.db"
        db = sqlite3.connect(path)
        db.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        db.commit()
        db.close()
        with pytest.raises(LedgerError, match="newer"):
            Ledger(path)

    def test_data_survives_reopen(self, tmp_path, scene_rulings):
        path = tmp_path / "case.db"
        with Ledger(path) as ledger:
            for fingerprint, ruling in scene_rulings:
                ledger.record_ruling(fingerprint, ruling)
            written = ledger.counts()["rulings"]
        with Ledger(path) as ledger:
            assert ledger.counts()["rulings"] == written


class TestRulings:
    def test_round_trip_is_equal_and_explains_identically(
        self, scene_rulings
    ):
        with Ledger(":memory:") as ledger:
            for fingerprint, ruling in scene_rulings:
                ledger.record_ruling(fingerprint, ruling)
            for fingerprint, ruling in scene_rulings:
                reloaded = ledger.ruling_for(fingerprint)
                assert reloaded == ruling
                assert reloaded.explain() == ruling.explain()
                assert reloaded.to_dict() == ruling.to_dict()
                assert ruling_to_json(reloaded) == ruling_to_json(ruling)

    def test_duplicate_write_is_skipped(self, scene_rulings):
        fingerprint, ruling = scene_rulings[0]
        with Ledger(":memory:") as ledger:
            assert ledger.record_ruling(fingerprint, ruling) is True
            assert ledger.record_ruling(fingerprint, ruling) is False
            assert ledger.counts()["rulings"] == 1
            assert ledger.stats.ruling_writes == 1
            assert ledger.stats.ruling_duplicates == 1

    def test_missing_fingerprint_reloads_none(self, scene_rulings):
        with Ledger(":memory:") as ledger:
            assert ledger.ruling_for(scene_rulings[0][0]) is None

    def test_iter_rulings_is_ordered_by_digest(self, scene_rulings):
        with Ledger(":memory:") as ledger:
            for fingerprint, ruling in scene_rulings:
                ledger.record_ruling(fingerprint, ruling)
            digests = [
                fingerprint_digest(fp) for fp, __ in ledger.iter_rulings()
            ]
        assert digests == sorted(digests)
        assert len(digests) == len({fp for fp, __ in scene_rulings})

    def test_corpus_round_trip(self):
        corpus = action_corpus(200, seed=3)
        with Ledger(":memory:") as ledger:
            for action in corpus:
                ledger.record_ruling(
                    action_fingerprint(action), ENGINE.evaluate(action)
                )
            for action in corpus:
                reloaded = ledger.ruling_for(action_fingerprint(action))
                assert reloaded == ENGINE.evaluate(action)


class TestDocketsAndInstruments:
    def test_docket_upsert_updates_counters(self):
        class FakeDocket:
            applications_received = 3
            applications_denied = 1

        with Ledger(":memory:") as ledger:
            ledger.record_docket("d1", FakeDocket())
            FakeDocket.applications_received = 5
            ledger.record_docket("d1", FakeDocket())
            assert ledger.counts()["dockets"] == 1
            row = ledger._db.execute(
                "SELECT applications_received FROM dockets"
            ).fetchone()
            assert row["applications_received"] == 5

    def test_instrument_round_trip_ignores_process_local_id(self):
        original = IssuedProcess(
            kind=ProcessKind.SEARCH_WARRANT,
            issued_to="det. rivera",
            issued_at=10.0,
            expires_at=900.0,
            scope="seized laptop",
        )
        with Ledger(":memory:") as ledger:
            ledger.record_instrument("w1", original)
            reloaded = ledger.instrument_for("w1")
        assert reloaded.kind is original.kind
        assert reloaded.issued_to == original.issued_to
        assert reloaded.issued_at == original.issued_at
        assert reloaded.expires_at == original.expires_at
        assert reloaded.scope == original.scope
        assert reloaded.revoked == original.revoked

    def test_instrument_upsert_and_docket_linkage(self):
        class FakeDocket:
            applications_received = 1
            applications_denied = 0

        instrument = IssuedProcess(
            kind=ProcessKind.WIRETAP_ORDER,
            issued_to="agent",
            issued_at=0.0,
            expires_at=100.0,
        )
        with Ledger(":memory:") as ledger:
            ledger.record_docket("d1", FakeDocket())
            ledger.record_instrument("i1", instrument, docket_key="d1")
            ledger.record_instrument("i1", instrument, docket_key="d1")
            assert ledger.counts()["instruments"] == 1
            row = ledger._db.execute(
                "SELECT docket_id FROM instruments"
            ).fetchone()
            assert row["docket_id"] is not None

    def test_missing_instrument_reloads_none(self):
        with Ledger(":memory:") as ledger:
            assert ledger.instrument_for("nope") is None


class TestCustody:
    def test_custody_round_trip(self):
        chain = ChainOfCustody(
            _evidence_item(), custodian="det. rivera", time=1.0
        )
        chain.transfer("lab tech okafor", time=2.5)
        chain.record_event("imaged drive; verified hash", time=3.0)
        with Ledger(":memory:") as ledger:
            ledger.record_custody("item-1", chain)
            record = ledger.custody_for("item-1")
        assert record.entries == tuple(chain.entries)
        assert record.description == chain.item.description
        assert record.content_hash == chain.item.content_hash

    def test_rerecording_replaces_entries_wholesale(self):
        chain = ChainOfCustody(
            _evidence_item(), custodian="det. rivera", time=1.0
        )
        with Ledger(":memory:") as ledger:
            ledger.record_custody("item-1", chain)
            chain.record_event("sealed in evidence bag", time=4.0)
            ledger.record_custody("item-1", chain)
            record = ledger.custody_for("item-1")
            assert ledger.counts()["custody_chains"] == 1
        assert record.entries == tuple(chain.entries)

    def test_missing_chain_reloads_none(self):
        with Ledger(":memory:") as ledger:
            assert ledger.custody_for("nope") is None


class TestSuppression:
    def test_round_trip_and_upsert(self, scene_rulings):
        fingerprint, __ = scene_rulings[0]
        with Ledger(":memory:") as ledger:
            ledger.record_suppression(
                "e1", fingerprint, "suppressed", reason="no warrant"
            )
            ledger.record_suppression(
                "e1", fingerprint, "admissible", run_label="retrial"
            )
            record = ledger.suppression_for("e1")
            assert ledger.counts()["suppression_outcomes"] == 1
        assert record.outcome == "admissible"
        assert record.run_label == "retrial"
        assert record.fingerprint_digest == fingerprint_digest(fingerprint)

    def test_missing_outcome_reloads_none(self):
        with Ledger(":memory:") as ledger:
            assert ledger.suppression_for("nope") is None


class TestFtsFallback:
    def test_search_works_without_fts5(self, monkeypatch, scene_rulings):
        monkeypatch.setattr(store_mod, "_fts_available", lambda db: False)
        with Ledger(":memory:") as ledger:
            assert ledger.fts_enabled is False
            # The FTS migration is skipped but its version is stamped,
            # keeping the runner linear for future migrations.
            assert ledger.schema_version == SCHEMA_VERSION
            for fingerprint, ruling in scene_rulings:
                ledger.record_ruling(fingerprint, ruling)
            rows = search_reasoning(ledger, "probable cause")
            assert rows

    def test_fallback_and_fts_agree_on_membership(self, scene_rulings):
        with Ledger(":memory:") as fts_ledger:
            if not fts_ledger.fts_enabled:
                pytest.skip("linked SQLite lacks FTS5")
            for fingerprint, ruling in scene_rulings:
                fts_ledger.record_ruling(fingerprint, ruling)
            fts_rows = search_reasoning(fts_ledger, '"probable cause"')
            fts_digests = [row.fingerprint_digest for row in fts_rows]
        scan_ledger = Ledger(":memory:")
        scan_ledger.fts_enabled = False
        for fingerprint, ruling in scene_rulings:
            scan_ledger.record_ruling(fingerprint, ruling)
        scan_rows = search_reasoning(scan_ledger, '"probable cause"')
        scan_ledger.close()
        assert [row.fingerprint_digest for row in scan_rows] == fts_digests


class TestLifecycle:
    def test_closed_ledger_raises(self):
        ledger = Ledger(":memory:")
        ledger.close()
        with pytest.raises(LedgerError, match="closed"):
            ledger.counts()
        ledger.close()  # idempotent

    def test_vacuum_reports_size(self, tmp_path, scene_rulings):
        with Ledger(tmp_path / "case.db") as ledger:
            for fingerprint, ruling in scene_rulings:
                ledger.record_ruling(fingerprint, ruling)
            size = ledger.vacuum()
            assert size > 0
            assert ledger.describe()["size_bytes"] == size

    def test_describe_is_json_serializable(self):
        import json

        with Ledger(":memory:") as ledger:
            payload = json.loads(json.dumps(ledger.describe()))
        assert payload["schema_version"] == SCHEMA_VERSION
