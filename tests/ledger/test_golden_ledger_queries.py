"""Golden-file regression: ledger query answers must not drift silently.

``tests/data/golden_ledger_queries.json`` pins the answers to ten
representative indexed/FTS queries over a deterministic ledger: the 20
Table 1 scenes run both ways through a ledger-bearing pipeline (run
label ``golden``) plus the 5,000-action seed-99 workload corpus — the
same corpus the label-golden test pins.  Each ruling query is stored as
a row count plus a SHA-256 digest over the ordered fingerprint digests;
histograms are stored verbatim, and the schema digest is pinned so DDL
drift fails loudly too.

Regenerate after an intentional schema/rule change::

    PYTHONPATH=src python tests/ledger/test_golden_ledger_queries.py
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.core import ComplianceEngine, RulingCache, build_table1
from repro.investigation.pipeline import InvestigationPipeline
from repro.ledger import (
    Ledger,
    citation_histogram,
    process_histogram,
    rulings_citing,
    schema_digest,
    search_reasoning,
    suppression_histogram,
)
from repro.workloads import action_corpus

GOLDEN_PATH = (
    Path(__file__).parent.parent / "data" / "golden_ledger_queries.json"
)
CORPUS_SIZE = 5000
SEED = 99

#: The pinned indexed queries: name -> rulings_citing(**kwargs).
INDEXED_QUERIES = {
    "citing_sca_2703": {"authority_key": "sca_2703"},
    "citing_sca_2703_suppressed": {
        "authority_key": "sca_2703",
        "suppressed": True,
    },
    "citing_katz": {"authority_key": "katz"},
    "requires_search_warrant": {"required_process": "SEARCH_WARRANT"},
    "requires_wiretap_order": {"required_process": "WIRETAP_ORDER"},
    "no_process_never_suppressed": {
        "required_process": "NONE",
        "suppressed": False,
    },
    "suppressed_anywhere": {"suppressed": True},
}

#: The pinned full-text queries (quoted phrases, so the FTS5 and
#: portable-scan paths agree on membership).
FTS_QUERIES = {
    "fts_probable_cause": '"probable cause"',
    "fts_wiretap_order": '"wiretap order"',
    "fts_third_party": '"third party"',
}


def build_golden_ledger() -> Ledger:
    """The deterministic ledger every pinned query runs over."""
    ledger = Ledger(":memory:")
    engine = ComplianceEngine(cache=RulingCache(), ledger=ledger)
    pipeline = InvestigationPipeline(
        engine=engine, ledger=ledger, run_label="golden"
    )
    scenarios = build_table1()
    pipeline.run_all(scenarios, obtain_process=True)
    pipeline.run_all(scenarios, obtain_process=False)
    engine.evaluate_many(action_corpus(CORPUS_SIZE, seed=SEED))
    return ledger


def _rows_summary(rows) -> dict:
    digests = [row.fingerprint_digest for row in rows]
    return {
        "count": len(digests),
        "digest": hashlib.sha256(
            "\n".join(digests).encode("utf-8")
        ).hexdigest(),
    }


def compute_results(ledger: Ledger) -> dict:
    """Every pinned answer, in fixture shape."""
    results: dict = {
        "schema_digest": schema_digest(),
        "corpus_size": CORPUS_SIZE,
        "seed": SEED,
        "counts": ledger.counts(),
        "queries": {},
        "fts_queries": {},
        "process_histogram": process_histogram(ledger),
        "citation_histogram": citation_histogram(ledger),
        "suppression_histogram": suppression_histogram(ledger),
    }
    for name, kwargs in INDEXED_QUERIES.items():
        results["queries"][name] = _rows_summary(
            rulings_citing(ledger, **kwargs)
        )
    for name, query in FTS_QUERIES.items():
        results["fts_queries"][name] = _rows_summary(
            search_reasoning(ledger, query)
        )
    return results


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def ledger():
    led = build_golden_ledger()
    yield led
    led.close()


class TestGoldenLedgerQueries:
    def test_schema_digest_matches(self, golden):
        assert schema_digest() == golden["schema_digest"], (
            "the ledger DDL changed; if intentional, bump/regenerate "
            "tests/data/golden_ledger_queries.json and docs/ledger.md"
        )

    def test_counts_match(self, golden, ledger):
        assert ledger.counts() == golden["counts"]

    def test_indexed_queries_match(self, golden, ledger):
        for name, kwargs in INDEXED_QUERIES.items():
            summary = _rows_summary(rulings_citing(ledger, **kwargs))
            assert summary == golden["queries"][name], (
                f"indexed query {name!r} drifted from the golden file"
            )

    def test_fts_queries_match(self, golden, ledger):
        if not ledger.fts_enabled:
            pytest.skip("linked SQLite lacks FTS5")
        for name, query in FTS_QUERIES.items():
            summary = _rows_summary(search_reasoning(ledger, query))
            assert summary == golden["fts_queries"][name], (
                f"FTS query {name!r} drifted from the golden file"
            )

    def test_histograms_match(self, golden, ledger):
        assert process_histogram(ledger) == golden["process_histogram"]
        assert citation_histogram(ledger) == golden["citation_histogram"]
        assert (
            suppression_histogram(ledger)
            == golden["suppression_histogram"]
        )

    def test_golden_file_is_internally_consistent(self, golden):
        assert golden["corpus_size"] == CORPUS_SIZE
        assert golden["seed"] == SEED
        int(golden["schema_digest"], 16)
        for summary in {
            **golden["queries"],
            **golden["fts_queries"],
        }.values():
            assert summary["count"] >= 0
            assert len(summary["digest"]) == 64
        # The headline query the CLI gate runs must be non-empty.
        assert golden["queries"]["citing_sca_2703_suppressed"]["count"] > 0


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    led = build_golden_ledger()
    try:
        GOLDEN_PATH.write_text(
            json.dumps(compute_results(led), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
    finally:
        led.close()
    print(f"wrote {GOLDEN_PATH}")
