"""Integration: the section III.A.1(a) storyline, by the book and not.

Victim reports attacking IP -> subpoena identifies the subscriber ->
probable cause -> warrant -> imaging -> hash search -> suppression
hearing.  Then the same storyline with the warrant skipped (the Crist
error) to check the taint cascade.
"""

import pytest

from repro.core import (
    Actor,
    Admissibility,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ProcessKind,
    Timing,
)
from repro.court import SuppressionHearing
from repro.evidence import ChainOfCustody, derive
from repro.investigation import Case, Investigator, ip_address_fact
from repro.storage import (
    BlockDevice,
    KnownFileSet,
    SimpleFilesystem,
    image_device,
)
from repro.techniques import HashSearchTechnique


def subpoena_action():
    return InvestigativeAction(
        description="compel subscriber identity from ISP",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.SUBSCRIBER_INFO,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.THIRD_PARTY_PROVIDER),
    )


def build_drive():
    fs = SimpleFilesystem(BlockDevice(n_blocks=128, block_size=64))
    fs.write_file("innocent.txt", "notes")
    fs.write_file("cp-1.jpg", "contraband-alpha")
    fs.write_file("cp-2.jpg", "contraband-beta")
    fs.delete_file("cp-2.jpg")
    known = KnownFileSet.from_contents(
        ["contraband-alpha", "contraband-beta"]
    )
    return fs, known


def run_storyline(comply: bool):
    officer = Investigator("det. r")
    case = Case("op-x")
    case.add_fact(ip_address_fact("10.0.3.77", "intrusion"))

    assert officer.apply_for(ProcessKind.SUBPOENA, case, time=1.0).granted
    identity = officer.act(
        subpoena_action(), time=2.0, content="subscriber: R. Mallory"
    )

    if comply:
        decision = officer.apply_for(
            ProcessKind.SEARCH_WARRANT,
            case,
            time=3.0,
            target_place="Mallory residence",
            target_items=("computers",),
        )
        assert decision.granted

    fs, known = build_drive()
    image = image_device(fs.device)
    assert image.sha256() == fs.device.sha256()

    technique = HashSearchTechnique(known)
    report = technique.run(fs)
    hits = officer.act(
        technique.required_actions()[0],
        time=4.0,
        content="; ".join(h.file_name for h in report.hits),
        comply=False,
        derived_from=(identity.evidence_id,),
    )
    analysis = derive(
        hits, "forensic analysis", "timeline and EXIF", hits.action
    )
    officer.evidence.append(analysis)

    chain = ChainOfCustody(hits, custodian=officer.name, time=4.0)
    chain.transfer("locker", time=5.0)
    outcome = SuppressionHearing().hear(
        officer.evidence, custody={hits.evidence_id: chain}
    )
    return officer, report, outcome, identity, hits, analysis


class TestByTheBook:
    def test_everything_admitted(self):
        officer, report, outcome, *_ = run_storyline(comply=True)
        assert report.hit_count == 2
        assert outcome.suppression_rate == 0.0
        assert not officer.violations

    def test_deleted_contraband_recovered(self):
        __, report, *_ = run_storyline(comply=True)
        assert any(h.recovered_deleted for h in report.hits)


class TestCuttingCorners:
    def test_hits_suppressed_and_fruit_tainted(self):
        __, __, outcome, identity, hits, analysis = run_storyline(
            comply=False
        )
        assert (
            outcome.outcome_for(identity) is Admissibility.ADMISSIBLE
        )
        assert outcome.outcome_for(hits) is Admissibility.SUPPRESSED
        assert (
            outcome.outcome_for(analysis)
            is Admissibility.SUPPRESSED_DERIVATIVE
        )

    def test_suppression_rate(self):
        __, __, outcome, *_ = run_storyline(comply=False)
        assert outcome.suppression_rate == pytest.approx(2 / 3)
