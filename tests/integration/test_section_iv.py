"""Integration: the paper's Section IV conclusions, end to end."""

import random

import pytest

from repro.anonymity import OnionNetwork, P2POverlay
from repro.core import Feasibility, ProcessKind
from repro.netsim import Simulator
from repro.techniques import (
    DsssWatermarkTechnique,
    OneSwarmTimingAttack,
    PnCode,
    PoissonFlow,
    WatermarkConfig,
)


class TestSectionIvA:
    """IV.A: workable method *without* warrant/court order/subpoena."""

    def test_classification_matches_paper(self):
        assessment = OneSwarmTimingAttack().assess()
        assert (
            assessment.feasibility is Feasibility.WORKABLE_WITHOUT_PROCESS
        )

    def test_attack_actually_works(self):
        overlay = P2POverlay(seed=99)
        overlay.random_topology(
            120, mean_degree=4.0, source_fraction=0.15, file_id="cp"
        )
        overlay.add_peer("le")
        rng = random.Random(5)
        for name in rng.sample(
            [p for p in overlay.peers if p != "le"], 10
        ):
            overlay.befriend("le", name)
        attack = OneSwarmTimingAttack()
        result = attack.investigate(overlay, "le", "cp", trials=10)
        metrics = attack.score(result, overlay)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0


class TestSectionIvB:
    """IV.B: workable method *with* a court order (not a wiretap order)."""

    def test_classification_matches_paper(self):
        assessment = DsssWatermarkTechnique().assess()
        assert assessment.feasibility is Feasibility.WORKABLE_WITH_PROCESS
        assert assessment.required_process is ProcessKind.COURT_ORDER

    def test_private_search_route_exists(self):
        # Situation two: campus administrators on their own gateways.
        assert DsssWatermarkTechnique().assess().private_search_viable

    def test_watermark_traces_through_tor_and_anonymizer(self):
        from repro.anonymity import AnonymizerProxy

        code = PnCode.msequence(7)
        config = WatermarkConfig(
            chip_duration=0.4, base_rate=25.0, amplitude=0.3
        )
        technique = DsssWatermarkTechnique(code, config)

        # Through the onion network.
        sim = Simulator()
        onion = OnionNetwork(sim, n_relays=20, seed=6)
        target = onion.build_circuit("suspect", "server")
        decoy = onion.build_circuit("bystander", "server")
        watermarker = technique.watermarker(seed=1)
        watermarker.embed(target, start=0.5)
        PoissonFlow(rate=25.0, seed=2).schedule(
            decoy, start=0.5, duration=watermarker.duration
        )
        sim.run()
        detector = technique.detector()
        assert detector.detect(
            target.client_arrival_times(), start=0.5
        ).detected
        assert not detector.detect(
            decoy.client_arrival_times(), start=0.5
        ).detected

        # Through the single-hop proxy.
        sim2 = Simulator()
        proxy = AnonymizerProxy(sim2, seed=7)
        session = proxy.open_session("suspect", "server")

        class ProxyChannel:
            def __init__(self):
                self.sim = sim2

            def send_downstream(self, size=512):
                proxy.send_downstream(session, size)

        watermarker2 = technique.watermarker(seed=3)
        watermarker2.embed(ProxyChannel(), start=0.5)
        sim2.run()
        arrivals = [o.timestamp for o in session.client_side_log]
        assert detector.detect(arrivals, start=0.5).detected


class TestPaperRecommendation:
    """The conclusion: prefer techniques needing no process."""

    @pytest.mark.parametrize(
        "technique_factory,needs_process",
        [
            (lambda: OneSwarmTimingAttack(), False),
            (lambda: DsssWatermarkTechnique(), True),
        ],
    )
    def test_advisor_orders_preferences(self, technique_factory, needs_process):
        assessment = technique_factory().assess()
        assert (
            assessment.required_process is not ProcessKind.NONE
        ) == needs_process
