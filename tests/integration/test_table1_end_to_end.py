"""Integration: the Table 1 reproduction as a whole."""

from repro.core import build_table1
from repro.investigation import format_table1


def test_twenty_out_of_twenty(engine):
    """The headline result: full agreement with the paper's table."""
    mismatches = []
    for scenario in build_table1():
        ruling = engine.evaluate(scenario.action)
        if ruling.needs_process != scenario.paper_needs_process:
            mismatches.append(scenario.number)
    assert mismatches == []


def test_every_ruling_is_explainable(engine):
    """Every scene yields a non-trivial citation-bearing trace."""
    for scenario in build_table1():
        ruling = engine.evaluate(scenario.action)
        assert ruling.steps, f"scene {scenario.number} has no reasoning"
        cited = {key for step in ruling.steps for key in step.authorities}
        assert cited, f"scene {scenario.number} cites nothing"


def test_formatted_table_matches(engine):
    assert "agreement: 20/20" in format_table1(build_table1(), engine)


def test_scenes_needing_process_have_an_imposing_source(engine):
    for scenario in build_table1():
        ruling = engine.evaluate(scenario.action)
        if ruling.needs_process:
            assert ruling.requirements, (
                f"scene {scenario.number} needs process but no source "
                f"imposed it"
            )
