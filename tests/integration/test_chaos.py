"""Integration: the paper's invariants across >= 25 randomized fault plans.

This is the acceptance gate for the fault-injection layer.  Across at
least 25 seeded plans:

* the 20 Table 1 rulings agree with the paper 20/20 — the law is not a
  function of packet loss;
* the no-process suppression split stays exactly 100%/0%;
* comply runs stay *lawful*: evidence is admitted exactly when the
  process actually held at acquisition time sufficed;
* every fault-affected evidence item carries the interruption in its
  custody log;
* both Section IV techniques return confidence-scored results on
  degraded input rather than raising;
* identical seeds produce byte-identical injection logs.
"""

from repro.core.engine import ComplianceEngine
from repro.core.scenarios import build_table1
from repro.faults.chaos import run_chaos, run_plan, select_scenes

N_PLANS = 25
BASE_SEED = 1000


class TestChaosInvariants:
    def test_all_invariants_across_25_plans(self):
        report = run_chaos(seed=BASE_SEED, n_plans=N_PLANS)
        assert len(report.results) == N_PLANS
        for result in report.results:
            assert result.table1_agreement == 20, result.seed
            assert result.split == (1.0, 0.0), result.seed
            assert result.lawfulness_ok, result.seed
            assert result.custody_ok, result.seed
            assert result.techniques_ok, result.seed
            assert result.storage_ok, result.seed
        assert report.deterministic
        assert report.ok

    def test_faults_actually_fire(self):
        """The harness must be chaotic, not vacuous: across the sweep a
        substantial number of faults hit every substrate family."""
        report = run_chaos(seed=BASE_SEED, n_plans=N_PLANS)
        assert report.total_faults > 100

    def test_replay_matches_original_run(self):
        scenarios = build_table1()
        engine = ComplianceEngine()
        first = run_plan(BASE_SEED, scenarios, engine=engine)
        replay = run_plan(BASE_SEED, scenarios, engine=engine)
        assert replay.log_digest == first.log_digest
        assert replay == first

    def test_render_summarizes_every_plan(self):
        report = run_chaos(seed=BASE_SEED, n_plans=3)
        rendered = report.render()
        assert rendered.count("plan seed=") == 3
        assert "replay deterministic" in rendered


class TestSceneSelection:
    def test_all_selects_twenty(self):
        assert len(select_scenes("all")) == 20

    def test_subset_selection(self):
        selected = select_scenes("4,6,18")
        assert [s.number for s in selected] == [4, 6, 18]

    def test_unknown_scene_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="no such"):
            select_scenes("4,99")
