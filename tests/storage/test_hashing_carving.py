"""Unit tests for hashing, known-file sets, and signature carving."""

import pytest

from repro.storage.blockdev import BlockDevice
from repro.storage.carving import (
    DEFAULT_SIGNATURES,
    FileSignature,
    carve,
)
from repro.storage.filesystem import SimpleFilesystem
from repro.storage.hashing import KnownFileSet, sha256_hex


class TestHashing:
    def test_str_and_bytes_agree(self):
        assert sha256_hex("abc") == sha256_hex(b"abc")

    def test_known_sha256_vector(self):
        assert sha256_hex("") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )


class TestKnownFileSet:
    def test_from_contents(self):
        known = KnownFileSet.from_contents(["bad-a", "bad-b"])
        assert len(known) == 2
        assert known.contains_content("bad-a")
        assert not known.contains_content("good")

    def test_add_hash_case_insensitive(self):
        known = KnownFileSet()
        digest = sha256_hex("x")
        known.add_hash(digest.upper())
        assert known.contains_hash(digest)
        assert digest in known

    def test_add_content_returns_digest(self):
        known = KnownFileSet()
        digest = known.add_content("payload")
        assert digest == sha256_hex("payload")


class TestSignatures:
    def test_empty_magic_rejected(self):
        with pytest.raises(ValueError):
            FileSignature(name="bad", header=b"", footer=b"x")
        with pytest.raises(ValueError):
            FileSignature(name="bad", header=b"x", footer=b"")

    def test_default_signatures_distinct(self):
        names = {s.name for s in DEFAULT_SIGNATURES}
        assert len(names) == len(DEFAULT_SIGNATURES)


class TestCarving:
    def build_device(self):
        device = BlockDevice(n_blocks=64, block_size=32)
        fs = SimpleFilesystem(device)
        fs.write_file("pic.jpg", "JPEG[a beach photo]GEPJ")
        fs.write_file("doc.pdf", "PDF[an agreement]FDP")
        fs.write_file("deleted.jpg", "JPEG[deleted pic]GEPJ")
        fs.delete_file("deleted.jpg")
        return device

    def test_carves_all_signature_hits(self):
        carved = carve(self.build_device())
        kinds = sorted(item.signature for item in carved)
        assert kinds == ["jpeg", "jpeg", "pdf"]

    def test_carved_contents_include_magic(self):
        carved = carve(self.build_device())
        jpegs = [c for c in carved if c.signature == "jpeg"]
        contents = {c.contents for c in jpegs}
        assert b"JPEG[a beach photo]GEPJ" in contents
        assert b"JPEG[deleted pic]GEPJ" in contents

    def test_carving_finds_deleted_data(self):
        """Carving sees data the file table no longer references."""
        carved = carve(self.build_device())
        assert any(b"deleted pic" in c.contents for c in carved)

    def test_offsets_ordered_and_consistent(self):
        device = self.build_device()
        carved = carve(device)
        raw = device.raw_bytes()
        for item in carved:
            assert raw[item.start_offset : item.end_offset] == item.contents
        offsets = [item.start_offset for item in carved]
        assert offsets == sorted(offsets)

    def test_unterminated_header_not_carved(self):
        device = BlockDevice(n_blocks=4, block_size=32)
        device.write_block(0, b"JPEG[never finished")
        assert carve(device) == []

    def test_empty_device_carves_nothing(self):
        assert carve(BlockDevice(n_blocks=4, block_size=32)) == []

    def test_custom_signature(self):
        device = BlockDevice(n_blocks=4, block_size=32)
        device.write_block(1, b"XX[payload]YY")
        signature = FileSignature(name="custom", header=b"XX[", footer=b"]YY")
        carved = carve(device, signatures=(signature,))
        assert len(carved) == 1
        assert carved[0].contents == b"XX[payload]YY"
