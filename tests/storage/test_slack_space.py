"""Tests for slack-space retention and carving.

Real filesystems overwrite only the new file's bytes; the remainder of
the last block — slack space — keeps whatever was there before.  The
examiner's carving pass recovers fragments from it even after the file
table has forgotten everything.
"""

from repro.storage import (
    BlockDevice,
    FileSignature,
    SimpleFilesystem,
    carve,
)


class TestSlackRetention:
    def test_partial_write_preserves_tail(self):
        device = BlockDevice(n_blocks=4, block_size=16)
        device.write_block(0, b"AAAAAAAAAAAAAAAA")
        device.write_partial(0, b"BB")
        assert device.read_block(0) == b"BB" + b"A" * 14

    def test_new_small_file_leaves_deleted_tail_in_slack(self):
        device = BlockDevice(n_blocks=4, block_size=32)
        fs = SimpleFilesystem(device)
        fs.write_file("secret.txt", "INCRIMINATING-TAIL-DATA-HERE")
        fs.delete_file("secret.txt")
        # Force reuse of the freed block: exhaust the fresh pool first.
        fs.write_file("filler", "x" * 96)  # 3 blocks
        fs.write_file("cover.txt", "hi")  # reuses secret's block
        raw = device.raw_bytes()
        assert b"hi" in raw
        # The tail of the deleted file survives in cover.txt's slack.
        assert b"TAIL-DATA-HERE" in raw

    def test_read_file_never_returns_slack(self):
        device = BlockDevice(n_blocks=4, block_size=32)
        fs = SimpleFilesystem(device)
        fs.write_file("old", "OLD-CONTENT-FILLING-THE-BLOCK!!!")
        fs.delete_file("old")
        fs.write_file("filler", "x" * 96)
        fs.write_file("new", "tiny")
        assert fs.read_file("new") == b"tiny"


class TestSlackCarving:
    def test_carving_recovers_artifact_from_slack(self):
        device = BlockDevice(n_blocks=4, block_size=64)
        fs = SimpleFilesystem(device)
        # An artifact that fits inside one block's tail.
        fs.write_file("evidence.jpg", "padpadpad JPEG[slacked pic]GEPJ")
        fs.delete_file("evidence.jpg")
        fs.write_file("filler", "x" * 192)  # 3 blocks
        fs.write_file("innocent.txt", "note")  # overwrites only 4 bytes
        carved = carve(device)
        assert any(b"slacked pic" in item.contents for item in carved)

    def test_overwritten_header_defeats_carving(self):
        device = BlockDevice(n_blocks=4, block_size=64)
        fs = SimpleFilesystem(device)
        fs.write_file("evidence.jpg", "JPEG[gone]GEPJ")
        fs.delete_file("evidence.jpg")
        fs.write_file("filler", "x" * 192)
        # The new file's prefix destroys the signature header.
        fs.write_file("innocent.txt", "long enough to cover JPEG[")
        signature = FileSignature(
            name="jpeg", header=b"JPEG[", footer=b"]GEPJ"
        )
        carved = carve(device, signatures=(signature,))
        assert not any(b"gone" in item.contents for item in carved)
