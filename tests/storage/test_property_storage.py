"""Property-based tests for the storage substrate."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.blockdev import BlockDevice, image_device
from repro.storage.filesystem import FilesystemError, SimpleFilesystem

names = st.text(
    alphabet=string.ascii_lowercase, min_size=1, max_size=8
)
contents = st.text(
    alphabet=string.ascii_letters + string.digits + " ", max_size=200
)


@given(st.dictionaries(names, contents, min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_roundtrip_many_files(files):
    fs = SimpleFilesystem(BlockDevice(n_blocks=512, block_size=32))
    for name, data in files.items():
        fs.write_file(name, data)
    for name, data in files.items():
        assert fs.read_file(name) == data.encode()
    assert fs.list_files() == sorted(files)


@given(st.lists(st.tuples(names, contents), min_size=1, max_size=12))
@settings(max_examples=100, deadline=None)
def test_delete_then_recover_before_pressure(operations):
    fs = SimpleFilesystem(BlockDevice(n_blocks=1024, block_size=32))
    written: dict[str, str] = {}
    for name, data in operations:
        fs.write_file(name, data)
        written[name] = data
    for name in list(written):
        fs.delete_file(name)
    recovered = fs.recover_deleted()
    # With no subsequent writes, the most recent content of every file is
    # recoverable (name collisions resolve to the last write).
    for name, data in written.items():
        assert recovered.get(name) == data.encode()


@given(st.dictionaries(names, contents, min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_imaging_preserves_hash(files):
    device = BlockDevice(n_blocks=256, block_size=32)
    fs = SimpleFilesystem(device)
    for name, data in files.items():
        fs.write_file(name, data)
    image = image_device(device)
    assert image.sha256() == device.sha256()
    assert image.raw_bytes() == device.raw_bytes()


@given(st.integers(min_value=1, max_value=64))
@settings(max_examples=30, deadline=None)
def test_free_blocks_conserved(n_files):
    fs = SimpleFilesystem(BlockDevice(n_blocks=256, block_size=16))
    initial = fs.free_blocks
    created = []
    for i in range(n_files):
        try:
            fs.write_file(f"f{i}", "x" * (i % 40))
            created.append(f"f{i}")
        except FilesystemError:
            break
    for name in created:
        fs.delete_file(name)
    assert fs.free_blocks == initial
