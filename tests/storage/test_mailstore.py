"""Unit tests for the SCA-aware mail store (section III.A.3)."""

import pytest

from repro.core import (
    LegalSource,
    ProcessKind,
    ProviderRole,
)
from repro.storage.mailstore import MailProvider, Message


@pytest.fixture()
def gmail():
    provider = MailProvider("gmail", serves_public=True)
    provider.create_account("bob")
    return provider


@pytest.fixture()
def university():
    provider = MailProvider("cs.charlie.edu", serves_public=False)
    provider.create_account("alice")
    return provider


def make_message(recipient="bob"):
    return Message(
        sender="someone@example.com",
        recipient=recipient,
        subject="s",
        body="b",
        sent_at=0.0,
    )


class TestLifecycle:
    def test_in_transit_before_delivery(self):
        message = make_message()
        assert message.in_transit

    def test_delivery(self, gmail):
        message = make_message()
        gmail.deliver(message, time=1.0)
        assert not message.in_transit
        assert message.delivered_at == 1.0
        assert gmail.mailbox("bob") == [message]

    def test_delivery_to_unknown_account(self, gmail):
        with pytest.raises(KeyError):
            gmail.deliver(make_message(recipient="ghost"), time=1.0)

    def test_retrieve_marks_opened(self, gmail):
        message = make_message()
        gmail.deliver(message, time=1.0)
        gmail.retrieve("bob", message.message_id)
        assert message.retrieved

    def test_delete_removes_from_mailbox(self, gmail):
        message = make_message()
        gmail.deliver(message, time=1.0)
        gmail.delete("bob", message.message_id)
        assert gmail.mailbox("bob") == []
        assert message.deleted

    def test_unknown_message_raises(self, gmail):
        with pytest.raises(KeyError):
            gmail.retrieve("bob", 99999)

    def test_duplicate_account_rejected(self, gmail):
        with pytest.raises(ValueError):
            gmail.create_account("bob")


class TestScaRoles:
    def test_public_provider_ecs_then_rcs(self, gmail):
        message = make_message()
        gmail.deliver(message, time=1.0)
        assert gmail.role_for(message) is ProviderRole.ECS
        gmail.retrieve("bob", message.message_id)
        assert gmail.role_for(message) is ProviderRole.RCS

    def test_nonpublic_provider_ecs_then_neither(self, university):
        message = make_message(recipient="alice")
        university.deliver(message, time=1.0)
        assert university.role_for(message) is ProviderRole.ECS
        university.retrieve("alice", message.message_id)
        assert university.role_for(message) is ProviderRole.NEITHER


class TestRequiredProcess:
    def test_ecs_content_needs_warrant_under_sca(self, gmail):
        message = make_message()
        gmail.deliver(message, time=1.0)
        process, source = gmail.required_process_for(message)
        assert process is ProcessKind.SEARCH_WARRANT
        assert source is LegalSource.SCA

    def test_dropped_out_message_governed_by_fourth_amendment(
        self, university
    ):
        message = make_message(recipient="alice")
        university.deliver(message, time=1.0)
        university.retrieve("alice", message.message_id)
        process, source = university.required_process_for(message)
        assert process is ProcessKind.SEARCH_WARRANT
        assert source is LegalSource.FOURTH_AMENDMENT


class TestEngineConsistency:
    def test_engine_agrees_with_mailstore(self, engine, gmail, university):
        scenarios = []
        gmail_msg = make_message()
        gmail.deliver(gmail_msg, time=1.0)
        scenarios.append((gmail, gmail_msg))
        gmail.retrieve("bob", gmail_msg.message_id)
        scenarios.append((gmail, gmail_msg))

        uni_msg = make_message(recipient="alice")
        university.deliver(uni_msg, time=1.0)
        scenarios.append((university, uni_msg))
        university.retrieve("alice", uni_msg.message_id)
        scenarios.append((university, uni_msg))

        for provider, message in scenarios:
            expected_process, __ = provider.required_process_for(message)
            ruling = engine.evaluate(provider.describe_compulsion(message))
            assert ruling.required_process is expected_process

    def test_dropped_out_compulsion_not_governed_by_sca(
        self, engine, university
    ):
        message = make_message(recipient="alice")
        university.deliver(message, time=1.0)
        university.retrieve("alice", message.message_id)
        ruling = engine.evaluate(university.describe_compulsion(message))
        assert LegalSource.SCA not in ruling.governing_sources
        assert LegalSource.FOURTH_AMENDMENT in ruling.governing_sources
