"""Unit tests for block devices and imaging."""

import pytest

from repro.storage.blockdev import BlockDevice, image_device


class TestGeometry:
    def test_capacity(self):
        assert BlockDevice(n_blocks=10, block_size=512).capacity == 5120

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            BlockDevice(n_blocks=0)
        with pytest.raises(ValueError):
            BlockDevice(block_size=-1)


class TestReadWrite:
    def test_roundtrip_with_padding(self):
        device = BlockDevice(n_blocks=4, block_size=8)
        device.write_block(1, b"abc")
        assert device.read_block(1) == b"abc\x00\x00\x00\x00\x00"

    def test_out_of_range_rejected(self):
        device = BlockDevice(n_blocks=4, block_size=8)
        with pytest.raises(IndexError):
            device.read_block(4)
        with pytest.raises(IndexError):
            device.write_block(-1, b"x")

    def test_oversized_write_rejected(self):
        device = BlockDevice(n_blocks=4, block_size=8)
        with pytest.raises(ValueError):
            device.write_block(0, b"123456789")

    def test_io_counters(self):
        device = BlockDevice(n_blocks=4, block_size=8)
        device.write_block(0, b"x")
        device.read_block(0)
        device.read_block(0)
        assert device.writes == 1
        assert device.reads == 2


class TestImaging:
    def test_image_is_bit_for_bit(self):
        device = BlockDevice(n_blocks=8, block_size=16)
        device.write_block(3, b"evidence here")
        image = image_device(device)
        assert image.raw_bytes() == device.raw_bytes()
        assert image.sha256() == device.sha256()

    def test_image_is_independent(self):
        device = BlockDevice(n_blocks=8, block_size=16)
        device.write_block(0, b"original")
        image = image_device(device)
        device.write_block(0, b"tampered")
        assert image.read_block(0).startswith(b"original")
        assert image.sha256() != device.sha256()

    def test_hash_is_stable(self):
        device = BlockDevice(n_blocks=2, block_size=4)
        assert device.sha256() == device.sha256()
        before = device.sha256()
        device.write_block(0, b"z")
        assert device.sha256() != before
