"""Property-based tests for the SCA mail-store lifecycle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProcessKind, ProviderRole
from repro.storage.mailstore import MailProvider, Message


@given(
    serves_public=st.booleans(),
    retrieve=st.booleans(),
    n_messages=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=100, deadline=None)
def test_lifecycle_invariants(serves_public, retrieve, n_messages):
    provider = MailProvider("p", serves_public=serves_public)
    provider.create_account("user")
    messages = []
    for index in range(n_messages):
        message = Message(
            sender=f"s{index}@x",
            recipient="user",
            subject=f"m{index}",
            body="...",
            sent_at=float(index),
        )
        provider.deliver(message, time=float(index) + 0.5)
        messages.append(message)

    for message in messages:
        # Unretrieved mail is always ECS, whoever the provider is.
        assert provider.role_for(message) is ProviderRole.ECS
        if retrieve:
            provider.retrieve("user", message.message_id)

    for message in messages:
        role = provider.role_for(message)
        if not retrieve:
            assert role is ProviderRole.ECS
        elif serves_public:
            assert role is ProviderRole.RCS
        else:
            assert role is ProviderRole.NEITHER

        # Whatever the role, compelling content always takes a warrant —
        # the governing *source* shifts, never the burden.
        process, __ = provider.required_process_for(message)
        assert process is ProcessKind.SEARCH_WARRANT


@given(n_messages=st.integers(min_value=1, max_value=6))
@settings(max_examples=50, deadline=None)
def test_deletion_empties_the_mailbox(n_messages):
    provider = MailProvider("p", serves_public=True)
    provider.create_account("user")
    ids = []
    for index in range(n_messages):
        message = Message(
            sender="s@x",
            recipient="user",
            subject=f"m{index}",
            body="...",
            sent_at=float(index),
        )
        provider.deliver(message, time=float(index))
        ids.append(message.message_id)
    for message_id in ids:
        provider.delete("user", message_id)
    assert provider.mailbox("user") == []
