"""Unit tests for the recoverable filesystem."""

import pytest

from repro.storage.blockdev import BlockDevice
from repro.storage.filesystem import FilesystemError, SimpleFilesystem


@pytest.fixture()
def fs():
    return SimpleFilesystem(BlockDevice(n_blocks=16, block_size=8))


class TestBasicOperations:
    def test_write_read_roundtrip(self, fs):
        fs.write_file("a.txt", "hello filesystem")
        assert fs.read_file("a.txt") == b"hello filesystem"

    def test_bytes_roundtrip(self, fs):
        fs.write_file("b.bin", b"\x01\x02\x03")
        assert fs.read_file("b.bin") == b"\x01\x02\x03"

    def test_list_and_exists(self, fs):
        fs.write_file("a", "1")
        fs.write_file("b", "2")
        assert fs.list_files() == ["a", "b"]
        assert fs.exists("a")
        assert not fs.exists("c")

    def test_read_missing_raises(self, fs):
        with pytest.raises(FilesystemError):
            fs.read_file("ghost")

    def test_overwrite_replaces_content(self, fs):
        fs.write_file("a", "old content here")
        fs.write_file("a", "new")
        assert fs.read_file("a") == b"new"
        assert fs.list_files() == ["a"]

    def test_device_full(self, fs):
        fs.write_file("big", "x" * 100)  # 13 blocks
        with pytest.raises(FilesystemError, match="no space"):
            fs.write_file("more", "y" * 50)

    def test_empty_file_takes_one_block(self, fs):
        fs.write_file("empty", "")
        assert fs.read_file("empty") == b""
        assert fs.free_blocks == 15


class TestDeletion:
    def test_delete_unlinks(self, fs):
        fs.write_file("doomed", "data")
        fs.delete_file("doomed")
        assert not fs.exists("doomed")
        with pytest.raises(FilesystemError):
            fs.read_file("doomed")

    def test_delete_missing_raises(self, fs):
        with pytest.raises(FilesystemError):
            fs.delete_file("ghost")

    def test_delete_frees_blocks(self, fs):
        before = fs.free_blocks
        fs.write_file("f", "x" * 20)
        fs.delete_file("f")
        assert fs.free_blocks == before


class TestRecovery:
    def test_deleted_file_recoverable(self, fs):
        fs.write_file("secret", "deleted but not gone")
        fs.delete_file("secret")
        recovered = fs.recover_deleted()
        assert recovered["secret"] == b"deleted but not gone"

    def test_overwritten_blocks_not_recoverable(self, fs):
        fs.write_file("victim", "x" * 100)  # most of the disk
        fs.delete_file("victim")
        fs.write_file("newcomer", "y" * 100)  # reuses the blocks
        assert "victim" not in fs.recover_deleted()

    def test_space_pressure_reclaims_deleted_blocks(self, fs):
        # Freed blocks go to the back of the pool: a small deleted file
        # survives until later writes exhaust the fresh blocks.
        fs.write_file("a", "aaaa")  # 1 block
        fs.delete_file("a")
        assert "a" in fs.recover_deleted()  # fresh blocks still available
        fs.write_file("filler", "x" * 128)  # 16 blocks: forces reuse
        assert "a" not in fs.recover_deleted()

    def test_multiple_deleted_files(self, fs):
        fs.write_file("one", "first")
        fs.write_file("two", "second")
        fs.delete_file("one")
        fs.delete_file("two")
        recovered = fs.recover_deleted()
        assert set(recovered) == {"one", "two"}


class TestExhaustiveExamination:
    def test_all_contents_includes_deleted(self, fs):
        fs.write_file("live", "visible")
        fs.write_file("dead", "invisible")
        fs.delete_file("dead")
        contents = fs.all_contents()
        assert contents["live"] == b"visible"
        assert contents["(deleted) dead"] == b"invisible"

    def test_all_contents_can_exclude_deleted(self, fs):
        fs.write_file("dead", "gone")
        fs.delete_file("dead")
        assert fs.all_contents(include_deleted=False) == {}
