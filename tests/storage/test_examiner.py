"""Unit tests for the forensic examiner workflow."""

import pytest

from repro.storage import (
    BlockDevice,
    ForensicExaminer,
    KnownFileSet,
    SimpleFilesystem,
    TimelineEventKind,
    sha256_hex,
)


@pytest.fixture()
def seized_fs():
    fs = SimpleFilesystem(BlockDevice(n_blocks=256, block_size=64))
    fs.write_file("report.txt", "quarterly report")
    fs.write_file("photo.jpg", "JPEG[vacation]GEPJ")
    fs.write_file("cp.jpg", "JPEG[contraband]GEPJ")
    fs.delete_file("cp.jpg")
    return fs


@pytest.fixture()
def examiner():
    known = KnownFileSet.from_contents(["JPEG[contraband]GEPJ"])
    return ForensicExaminer(known_files=known)


class TestExamination:
    def test_image_verified(self, examiner, seized_fs):
        report = examiner.examine(seized_fs)
        assert report.image_verified
        assert report.image_hash == seized_fs.device.sha256()

    def test_live_and_recovered_inventories(self, examiner, seized_fs):
        report = examiner.examine(seized_fs)
        assert set(report.live_files) == {"report.txt", "photo.jpg"}
        assert set(report.recovered_files) == {"cp.jpg"}
        assert report.total_files_examined == 3
        assert report.live_files["report.txt"] == sha256_hex(
            "quarterly report"
        )

    def test_carving_finds_both_jpegs(self, examiner, seized_fs):
        report = examiner.examine(seized_fs)
        jpeg_artifacts = [
            a for a in report.carved_artifacts if a.signature == "jpeg"
        ]
        assert len(jpeg_artifacts) == 2

    def test_known_file_hit_on_deleted_contraband(self, examiner, seized_fs):
        report = examiner.examine(seized_fs)
        assert report.known_file_hits == ("cp.jpg",)

    def test_original_device_untouched(self, examiner, seized_fs):
        before = seized_fs.device.sha256()
        writes_before = seized_fs.device.writes
        examiner.examine(seized_fs)
        assert seized_fs.device.sha256() == before
        assert seized_fs.device.writes == writes_before

    def test_no_known_set_no_hits(self, seized_fs):
        report = ForensicExaminer().examine(seized_fs)
        assert report.known_file_hits == ()

    def test_summary_renders(self, examiner, seized_fs):
        summary = examiner.examine(seized_fs).summary()
        assert "verified" in summary
        assert "2 live files" in summary
        assert "1 recovered" in summary


class TestTimeline:
    def test_creation_precedes_deletion(self, examiner, seized_fs):
        report = examiner.examine(seized_fs)
        created = next(
            e
            for e in report.timeline
            if e.kind is TimelineEventKind.FILE_CREATED
            and e.subject == "cp.jpg"
        )
        deleted = next(
            e
            for e in report.timeline
            if e.kind is TimelineEventKind.FILE_DELETED
        )
        assert created.order < deleted.order

    def test_timeline_is_ordered(self, examiner, seized_fs):
        report = examiner.examine(seized_fs)
        orders = [e.order for e in report.timeline]
        assert orders == sorted(orders)

    def test_recovery_and_hit_events_present(self, examiner, seized_fs):
        report = examiner.examine(seized_fs)
        kinds = {e.kind for e in report.timeline}
        assert TimelineEventKind.FILE_RECOVERED in kinds
        assert TimelineEventKind.KNOWN_FILE_HIT in kinds
        assert TimelineEventKind.ARTIFACT_CARVED in kinds
