"""Unit tests for the shared signal kernels in ``repro.signal``."""

import numpy as np
import pytest

from repro.signal import (
    autocorrelation_spectrum,
    batched_code_correlation,
    batched_pearson,
    bin_edges_grid,
    binned_count_matrix,
    fold_half_counts,
    grouped_median,
    offset_grid,
)


class TestOffsetGrid:
    def test_matches_scalar_accumulation(self):
        offsets = offset_grid(1.0, 0.1)
        expected = []
        offset = 0.0
        while offset <= 1.0:
            expected.append(offset)
            offset += 0.1
        assert offsets.tolist() == expected

    def test_always_contains_zero(self):
        assert offset_grid(0.0, 0.05).tolist() == [0.0]

    def test_rejects_zero_step(self):
        with pytest.raises(ValueError, match="offset_step"):
            offset_grid(1.0, 0.0)

    def test_rejects_negative_step(self):
        with pytest.raises(ValueError, match="offset_step"):
            offset_grid(1.0, -0.1)

    def test_rejects_negative_max_offset(self):
        with pytest.raises(ValueError, match="max_offset"):
            offset_grid(-0.5, 0.1)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            offset_grid(float("nan"), 0.1)
        with pytest.raises(ValueError):
            offset_grid(1.0, float("inf"))

    def test_rejects_oversized_grid(self):
        with pytest.raises(ValueError, match="cap"):
            offset_grid(1.0, 1e-9)


class TestBinnedCountMatrix:
    def test_rows_match_histogram(self):
        rng = np.random.default_rng(1)
        times = rng.uniform(0.0, 10.0, 500)
        offsets = offset_grid(1.0, 0.07)
        counts = binned_count_matrix(times, 0.0, offsets, 16, 0.5)
        for i, offset in enumerate(offsets):
            edges = offset + np.arange(17) * 0.5
            expected, _ = np.histogram(times, bins=edges)
            assert counts[i].tolist() == expected.tolist()

    def test_last_bin_closed_like_histogram(self):
        # An arrival exactly on the final edge belongs to the last bin.
        times = [0.0, 1.0, 2.0]
        counts = binned_count_matrix(times, 0.0, np.array([0.0]), 2, 1.0)
        expected, _ = np.histogram(times, bins=[0.0, 1.0, 2.0])
        assert counts[0].tolist() == expected.tolist() == [1, 2]

    def test_chunking_is_invisible(self):
        rng = np.random.default_rng(2)
        times = rng.uniform(0.0, 5.0, 200)
        offsets = offset_grid(1.0, 0.01)
        whole = binned_count_matrix(times, 0.0, offsets, 10, 0.5)
        chunked = binned_count_matrix(
            times, 0.0, offsets, 10, 0.5, chunk_bytes=256
        )
        assert (whole == chunked).all()

    def test_empty_offsets(self):
        counts = binned_count_matrix([1.0], 0.0, np.array([]), 4, 0.5)
        assert counts.shape == (0, 4)

    def test_edges_grid_validation(self):
        with pytest.raises(ValueError, match="n_bins"):
            bin_edges_grid(0.0, np.array([0.0]), 0, 0.5)
        with pytest.raises(ValueError, match="width"):
            bin_edges_grid(0.0, np.array([0.0]), 4, 0.0)


class TestBatchedCorrelation:
    def test_matches_manual_correlation(self):
        rng = np.random.default_rng(3)
        chips = np.where(rng.random(16) < 0.5, -1.0, 1.0)
        counts = rng.poisson(10.0, (5, 16)).astype(float)
        correlations = batched_code_correlation(counts, chips)
        for row, correlation in zip(counts, correlations):
            centered = row - row.mean()
            norm = np.linalg.norm(centered) * np.linalg.norm(chips)
            assert correlation == pytest.approx(
                float(centered @ chips / norm), abs=1e-12
            )

    def test_constant_row_is_zero(self):
        chips = np.array([1.0, -1.0, 1.0, -1.0])
        counts = np.full((2, 4), 7.0)
        assert batched_code_correlation(counts, chips).tolist() == [0.0, 0.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            batched_code_correlation(np.ones((2, 3)), np.ones(4))

    def test_pearson_matches_numpy(self):
        rng = np.random.default_rng(4)
        reference = rng.poisson(5.0, 32).astype(float)
        candidates = rng.poisson(5.0, (6, 32)).astype(float)
        correlations = batched_pearson(candidates, reference)
        for row, correlation in zip(candidates, correlations):
            expected = np.corrcoef(row, reference)[0, 1]
            assert correlation == pytest.approx(float(expected), abs=1e-12)

    def test_pearson_constant_side_is_zero(self):
        reference = np.arange(8, dtype=float)
        candidates = np.vstack([np.full(8, 3.0), np.arange(8, dtype=float)])
        correlations = batched_pearson(candidates, reference)
        assert correlations[0] == 0.0
        assert correlations[1] == pytest.approx(1.0)

    def test_pearson_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            batched_pearson(np.ones((2, 3)), np.ones(4))


class TestFoldHalfCounts:
    def test_matches_scalar_fold(self):
        rng = np.random.default_rng(5)
        times = np.sort(rng.uniform(0.0, 40.0, 300))
        offsets = offset_grid(1.0, 0.13)
        first_half, total = fold_half_counts(times, 0.0, offsets, 4.0, 32.0)
        for i, offset in enumerate(offsets):
            shifted = times - offset
            in_window = shifted[(shifted >= 0) & (shifted < 32.0)]
            phase = np.mod(in_window, 4.0)
            assert first_half[i] == int((phase < 2.0).sum())
            assert total[i] == in_window.size

    def test_chunking_is_invisible(self):
        rng = np.random.default_rng(6)
        times = rng.uniform(0.0, 20.0, 150)
        offsets = offset_grid(0.5, 0.02)
        whole = fold_half_counts(times, 0.0, offsets, 2.0, 16.0)
        chunked = fold_half_counts(
            times, 0.0, offsets, 2.0, 16.0, chunk_bytes=1024
        )
        assert (whole[0] == chunked[0]).all()
        assert (whole[1] == chunked[1]).all()

    def test_empty_series(self):
        first_half, total = fold_half_counts(
            [], 0.0, offset_grid(1.0, 0.5), 2.0, 8.0
        )
        assert first_half.tolist() == [0, 0, 0]
        assert total.tolist() == [0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError, match="period"):
            fold_half_counts([1.0], 0.0, np.array([0.0]), 0.0, 8.0)
        with pytest.raises(ValueError, match="duration"):
            fold_half_counts([1.0], 0.0, np.array([0.0]), 2.0, 0.0)

    def test_boundary_counting_matches_dense_fold(self):
        """The searchsorted fast path is bit-identical to the broadcast fold.

        Exercises non-dyadic periods, irrational-ish offsets, and times
        planted exactly on (and one ulp around) half-period boundaries —
        the cases where an inexact boundary collapse would flip a count.
        """
        from repro.signal.folding import _fold_half_counts_dense

        rng = np.random.default_rng(11)
        for period, start in [(4.0, 0.0), (0.7, 3.25), (3.3333, -1.5), (1e-3, 0.1)]:
            duration = period * 9.5
            offsets = offset_grid(period / 3, period / 41)
            times = rng.uniform(-period, duration + period, 400)
            half = period / 2
            shifts = start + offsets
            planted = []
            for shift in shifts[:: max(1, shifts.size // 7)]:
                for k in range(10):
                    for edge in (k * period, k * period + half):
                        t = shift + edge
                        planted.extend(
                            [t, np.nextafter(t, np.inf), np.nextafter(t, -np.inf)]
                        )
            times = np.concatenate([times, planted])
            fast = fold_half_counts(times, start, offsets, period, duration)
            dense = _fold_half_counts_dense(
                times,
                start,
                offsets,
                period,
                duration,
                chunk_bytes=1 << 20,
                first_half=np.zeros(offsets.size, dtype=np.int64),
                total=np.zeros(offsets.size, dtype=np.int64),
            )
            assert (fast[0] == dense[0]).all(), period
            assert (fast[1] == dense[1]).all(), period


class TestAutocorrelationSpectrum:
    def test_matches_direct_dot_products(self):
        rng = np.random.default_rng(7)
        series = rng.poisson(8.0, 64).astype(float)
        centered = series - series.mean()
        denominator = float(centered @ centered)
        spectrum = autocorrelation_spectrum(series, 20)
        for k in range(20):
            lag = k + 1
            expected = float(centered[:-lag] @ centered[lag:]) / denominator
            assert spectrum[k] == pytest.approx(expected, abs=1e-9)

    def test_constant_series_is_zero(self):
        assert autocorrelation_spectrum(np.full(16, 3.0), 5).tolist() == [
            0.0
        ] * 5

    def test_lags_beyond_series_are_zero(self):
        spectrum = autocorrelation_spectrum(np.array([1.0, 2.0, 1.0]), 8)
        assert spectrum.shape == (8,)
        assert (spectrum[2:] == 0.0).all()

    def test_rejects_bad_max_lag(self):
        with pytest.raises(ValueError, match="max_lag"):
            autocorrelation_spectrum(np.ones(8), 0)


class TestGroupedMedian:
    def test_matches_statistics_median(self):
        import statistics

        rng = np.random.default_rng(8)
        labels = rng.choice(["a", "b", "c", "dd"], 101)
        values = rng.random(101)
        unique, medians, counts = grouped_median(labels, values)
        assert unique.tolist() == sorted(set(labels.tolist()))
        for label, median, count in zip(unique, medians, counts):
            group = values[labels == label]
            assert float(median) == statistics.median(group.tolist())
            assert int(count) == group.size

    def test_even_group_mean_of_middle_two(self):
        unique, medians, counts = grouped_median(
            ["x", "x", "x", "x"], [4.0, 1.0, 3.0, 2.0]
        )
        assert medians.tolist() == [2.5]
        assert counts.tolist() == [4]

    def test_empty_input(self):
        unique, medians, counts = grouped_median([], [])
        assert unique.size == medians.size == counts.size == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouped_median(["a"], [1.0, 2.0])
