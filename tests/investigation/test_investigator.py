"""Unit tests for the process-bound investigator."""

import pytest

from repro.core import (
    Actor,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ProcessKind,
    Timing,
)
from repro.core.errors import InsufficientProcess, StalenessError
from repro.court.docket import IssuedProcess
from repro.investigation.case import Case, ip_address_fact, suspicion_fact
from repro.investigation.investigator import Investigator


def warrant_action():
    return InvestigativeAction(
        description="search the suspect's computer",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
    )


def free_action():
    return InvestigativeAction(
        description="browse a public site",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.PUBLIC, knowingly_exposed=True),
    )


@pytest.fixture()
def officer():
    return Investigator("det. t")


class TestProcessManagement:
    def test_starts_with_nothing(self, officer):
        assert officer.current_process(0.0) is ProcessKind.NONE

    def test_apply_with_probable_cause(self, officer):
        case = Case("c")
        case.add_fact(ip_address_fact("1.2.3.4", "fraud"))
        decision = officer.apply_for(
            ProcessKind.SEARCH_WARRANT,
            case,
            time=1.0,
            target_place="home",
            target_items=("pc",),
        )
        assert decision.granted
        assert (
            officer.current_process(2.0) is ProcessKind.SEARCH_WARRANT
        )

    def test_apply_without_showing_denied(self, officer):
        case = Case("c")
        case.add_fact(suspicion_fact("just a hunch"))
        decision = officer.apply_for(
            ProcessKind.SEARCH_WARRANT,
            case,
            time=1.0,
            target_place="home",
            target_items=("pc",),
        )
        assert not decision.granted
        assert officer.current_process(2.0) is ProcessKind.NONE

    def test_expired_instrument_ignored(self, officer):
        officer.instruments.append(
            IssuedProcess(
                kind=ProcessKind.SEARCH_WARRANT,
                issued_to=officer.name,
                issued_at=0.0,
                expires_at=10.0,
            )
        )
        assert officer.current_process(5.0) is ProcessKind.SEARCH_WARRANT
        assert officer.current_process(11.0) is ProcessKind.NONE


class TestActing:
    def test_comply_mode_refuses_without_process(self, officer):
        with pytest.raises(InsufficientProcess):
            officer.act(warrant_action(), time=0.0, content="loot")
        assert officer.evidence == []

    def test_comply_mode_allows_free_actions(self, officer):
        item = officer.act(free_action(), time=0.0, content="public page")
        assert item.process_held is ProcessKind.NONE
        assert officer.evidence == [item]
        assert officer.violations == []

    def test_force_mode_records_violation(self, officer):
        item = officer.act(
            warrant_action(), time=0.0, content="loot", comply=False
        )
        assert officer.evidence == [item]
        assert len(officer.violations) == 1
        assert "search warrant" in officer.violations[0]

    def test_acting_with_process_is_clean(self, officer):
        case = Case("c")
        case.add_fact(ip_address_fact("1.2.3.4", "fraud"))
        officer.apply_for(
            ProcessKind.SEARCH_WARRANT,
            case,
            time=0.0,
            target_place="home",
            target_items=("pc",),
        )
        item = officer.act(warrant_action(), time=1.0, content="files")
        assert item.process_held is ProcessKind.SEARCH_WARRANT
        assert officer.violations == []

    def test_derivation_links_recorded(self, officer):
        parent = officer.act(free_action(), time=0.0, content="lead")
        child = officer.act(
            free_action(),
            time=1.0,
            content="follow-up",
            derived_from=(parent.evidence_id,),
        )
        assert child.derived_from == (parent.evidence_id,)


class TestReliance:
    def test_rely_on_valid_instrument(self, officer):
        instrument = IssuedProcess(
            kind=ProcessKind.SUBPOENA,
            issued_to=officer.name,
            issued_at=0.0,
            expires_at=10.0,
        )
        officer.rely_on(instrument, time=5.0)  # no raise

    def test_rely_on_expired_instrument_raises(self, officer):
        instrument = IssuedProcess(
            kind=ProcessKind.SUBPOENA,
            issued_to=officer.name,
            issued_at=0.0,
            expires_at=10.0,
        )
        with pytest.raises(StalenessError):
            officer.rely_on(instrument, time=11.0)

    def test_rely_on_revoked_instrument_raises(self, officer):
        instrument = IssuedProcess(
            kind=ProcessKind.SUBPOENA,
            issued_to=officer.name,
            issued_at=0.0,
            expires_at=10.0,
        )
        instrument.revoke()
        with pytest.raises(StalenessError):
            officer.rely_on(instrument, time=5.0)
