"""The pipeline's magistrate is shared: the docket accumulates."""

from repro.core import build_table1
from repro.court.magistrate import Magistrate
from repro.investigation.pipeline import InvestigationPipeline


class TestSharedMagistrate:
    def test_docket_accumulates_across_scenes(self):
        pipeline = InvestigationPipeline()
        scenes = tuple(
            s
            for s in build_table1()
            if pipeline.engine.evaluate(s.action).needs_process
        )[:3]
        assert len(scenes) == 3
        pipeline.run_all(scenes, obtain_process=True)
        docket = pipeline.magistrate.docket
        assert docket.applications_received == len(scenes)

    def test_injected_magistrate_is_used(self):
        magistrate = Magistrate()
        pipeline = InvestigationPipeline(magistrate=magistrate)
        scene = next(s for s in build_table1() if s.number == 18)
        pipeline.run_scene(scene, obtain_process=True)
        assert magistrate.docket.applications_received == 1

    def test_outcomes_unchanged_by_sharing(self):
        pipeline = InvestigationPipeline()
        scenes = build_table1()
        complying = pipeline.run_all(scenes, obtain_process=True)
        assert all(not outcome.suppressed for outcome in complying)
