"""Parallel-equivalence tests for the campaign worker pool.

``run_campaign(..., max_workers=N)`` fans cases across a seed-isolated
``ProcessPoolExecutor``; everything the paper's thesis depends on — the
scene sequence, every ruling, every suppression — must be identical to
the serial run.  Evidence items carry process-global serial ids, so the
comparison goes through :func:`case_signature`, which captures exactly
the legally meaningful content.
"""

import pytest

from repro.investigation.campaign import (
    CampaignConfig,
    case_signature,
    compliance_curve,
    draw_cases,
    resolve_workers,
    run_campaign,
)
from repro.core.scenarios import build_table1


class TestResolveWorkers:
    def test_explicit_count_respected(self):
        assert resolve_workers(3, 100) == 3

    def test_below_two_means_serial(self):
        assert resolve_workers(0, 100) == 1
        assert resolve_workers(-4, 100) == 1

    def test_none_caps_at_case_count(self):
        assert 1 <= resolve_workers(None, 2) <= 2


class TestDrawCases:
    def test_draws_match_serial_rng_stream(self):
        config = CampaignConfig(n_cases=25, comply_probability=0.5, seed=11)
        draws = draw_cases(config, build_table1())
        serial = run_campaign(config, max_workers=1)
        assert [scenario.number for scenario, _ in draws] == [
            outcome.scenario.number for outcome in serial.outcomes
        ]

    def test_draws_deterministic(self):
        config = CampaignConfig(n_cases=25, comply_probability=0.5, seed=12)
        scenarios = build_table1()
        assert draw_cases(config, scenarios) == draw_cases(config, scenarios)


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_signatures_identical_to_serial(self, workers):
        config = CampaignConfig(n_cases=40, comply_probability=0.6, seed=13)
        serial = run_campaign(config, max_workers=1)
        parallel = run_campaign(config, max_workers=workers)
        assert [case_signature(o) for o in serial.outcomes] == [
            case_signature(o) for o in parallel.outcomes
        ]
        assert serial.successes == parallel.successes
        assert serial.suppressed == parallel.suppressed

    def test_aggregate_rates_identical(self):
        config = CampaignConfig(n_cases=40, comply_probability=0.3, seed=14)
        serial = run_campaign(config, max_workers=1)
        parallel = run_campaign(config, max_workers=2)
        assert serial.success_rate == parallel.success_rate
        assert serial.success_rate_for(
            needs_process=True
        ) == parallel.success_rate_for(needs_process=True)

    def test_parallel_curve_matches_serial(self):
        probabilities = [0.0, 1.0]
        serial = compliance_curve(probabilities, n_cases=30, seed=15)
        parallel = compliance_curve(
            probabilities, n_cases=30, seed=15, max_workers=2
        )
        assert serial == parallel


class TestCaseSignature:
    def test_signature_is_deterministic_per_outcome(self):
        config = CampaignConfig(n_cases=10, comply_probability=0.5, seed=16)
        outcomes = run_campaign(config).outcomes
        assert [case_signature(o) for o in outcomes] == [
            case_signature(o) for o in outcomes
        ]

    def test_signature_separates_suppressed_outcomes(self):
        complying = run_campaign(
            CampaignConfig(n_cases=20, comply_probability=1.0, seed=17)
        )
        defiant = run_campaign(
            CampaignConfig(n_cases=20, comply_probability=0.0, seed=17)
        )
        assert {case_signature(o) for o in complying.outcomes} != {
            case_signature(o) for o in defiant.outcomes
        }
