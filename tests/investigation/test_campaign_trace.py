"""Trace equivalence for the parallel campaign collector merge.

With telemetry on, a parallel ``run_campaign`` runs each case under a
per-worker collector and the parent adopts the exported records in case
order.  The merged trace must match the serial trace span for span —
modulo span ids (renumbered on adoption) and process-global serial ids
(evidence, instrument, docket counters restart per worker process).
"""

from repro import obs
from repro.investigation.campaign import (
    CampaignConfig,
    case_signature,
    run_campaign,
)

#: Attribute/audit fields whose values are process-global serials or
#: per-process fingerprint tuples; equal runs differ here by design.
SERIAL_FIELDS = {"instrument_id", "docket_id", "evidence_id", "action_fp"}


def normalized(records):
    """Span shape minus ids: what must be equal across serial/parallel."""
    return [
        (
            record.name,
            record.sim_time,
            {k: v for k, v in record.attrs.items() if k not in SERIAL_FIELDS},
            {k: v for k, v in record.audit.items() if k not in SERIAL_FIELDS},
        )
        for record in records
    ]


def traced_campaign(config, workers):
    obs.reset()
    collector = obs.enable(obs.TraceCollector())
    try:
        summary = run_campaign(config, max_workers=workers)
    finally:
        obs.disable()
    return summary, collector.spans


class TestCollectorMerge:
    def test_merged_worker_traces_equal_serial_trace(self):
        config = CampaignConfig(n_cases=12, comply_probability=0.5, seed=21)
        serial_summary, serial_spans = traced_campaign(config, workers=1)
        parallel_summary, parallel_spans = traced_campaign(config, workers=2)
        assert normalized(serial_spans) == normalized(parallel_spans)
        assert [case_signature(o) for o in serial_summary.outcomes] == [
            case_signature(o) for o in parallel_summary.outcomes
        ]

    def test_adopted_ids_are_unique_and_parents_resolve(self):
        config = CampaignConfig(n_cases=8, comply_probability=0.5, seed=22)
        _, spans = traced_campaign(config, workers=2)
        ids = [record.span_id for record in spans]
        assert len(set(ids)) == len(ids)
        known = set(ids)
        for record in spans:
            assert record.parent_id is None or record.parent_id in known

    def test_every_case_has_a_case_span(self):
        config = CampaignConfig(n_cases=10, comply_probability=0.5, seed=23)
        _, spans = traced_campaign(config, workers=2)
        cases = [r for r in spans if r.name == "campaign.case"]
        assert sorted(r.attrs["case"] for r in cases) == list(range(10))

    def test_untraced_parallel_path_untouched(self):
        # With telemetry off the campaign must take the original worker
        # path and produce no spans at all.
        obs.reset()
        config = CampaignConfig(n_cases=8, comply_probability=0.5, seed=24)
        summary = run_campaign(config, max_workers=2)
        assert obs.OBS.collector is None
        assert len(summary.outcomes) == 8
