"""Unit tests for the campaign simulator."""

import pytest

from repro.investigation.campaign import (
    CampaignConfig,
    compliance_curve,
    run_campaign,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(n_cases=0)
        with pytest.raises(ValueError):
            CampaignConfig(comply_probability=1.5)


class TestCampaign:
    def test_full_compliance_always_succeeds(self):
        result = run_campaign(
            CampaignConfig(n_cases=60, comply_probability=1.0, seed=1)
        )
        assert result.success_rate == 1.0
        assert result.suppressed == 0

    def test_zero_compliance_fails_exactly_the_process_scenes(self):
        result = run_campaign(
            CampaignConfig(n_cases=60, comply_probability=0.0, seed=2)
        )
        # Scenes needing no process still succeed; the rest all fail.
        assert result.success_rate_for(needs_process=False) == 1.0
        assert result.success_rate_for(needs_process=True) == 0.0
        assert 0.0 < result.success_rate < 1.0

    def test_determinism(self):
        config = CampaignConfig(n_cases=40, comply_probability=0.5, seed=3)
        assert (
            run_campaign(config).success_rate
            == run_campaign(config).success_rate
        )

    def test_counts_consistent(self):
        result = run_campaign(
            CampaignConfig(n_cases=30, comply_probability=0.5, seed=4)
        )
        assert result.successes + result.suppressed == 30
        assert len(result.outcomes) == 30


class TestComplianceCurve:
    def test_curve_is_monotone(self):
        curve = compliance_curve(
            [0.0, 0.5, 1.0], n_cases=80, seed=5
        )
        assert curve[0.0] <= curve[0.5] <= curve[1.0]
        assert curve[1.0] == 1.0

    def test_zero_compliance_matches_scene_mix(self):
        # Table 1 is a 10/10 split, so zero compliance converges toward
        # a 50% success rate.
        curve = compliance_curve([0.0], n_cases=400, seed=6)
        assert 0.35 <= curve[0.0] <= 0.65
