"""Unit tests for cases and the probable-cause fact helpers."""

from repro.core import ProcessKind, Standard
from repro.investigation.case import (
    Case,
    articulable_facts,
    ip_address_fact,
    membership_fact,
    membership_with_intent_fact,
    suspicion_fact,
)


class TestCase:
    def test_empty_case_shows_nothing(self):
        assert Case("c").showing() is Standard.NOTHING

    def test_showing_is_max(self):
        case = Case("c")
        case.add_fact(suspicion_fact("a hunch"))
        case.add_fact(articulable_facts("specific logs"))
        assert case.showing() is Standard.SPECIFIC_AND_ARTICULABLE_FACTS

    def test_can_apply_for(self):
        case = Case("c")
        case.add_fact(suspicion_fact("a hunch"))
        assert case.can_apply_for(ProcessKind.SUBPOENA)
        assert not case.can_apply_for(ProcessKind.SEARCH_WARRANT)

    def test_suspects(self):
        case = Case("c")
        case.add_suspect("mallory")
        case.add_suspect("mallory")
        assert case.suspects == ["mallory"]

    def test_to_application_packages_facts(self):
        case = Case("c")
        case.add_fact(ip_address_fact("1.2.3.4", "fraud"))
        application = case.to_application(
            kind=ProcessKind.SEARCH_WARRANT,
            applicant="officer",
            applied_at=5.0,
            target_place="home",
            target_items=("pc",),
        )
        assert application.showing() is Standard.PROBABLE_CAUSE
        assert application.applied_at == 5.0
        assert application.is_particular()


class TestFactHelpers:
    """The paper's probable-cause scenarios, section III.A.1."""

    def test_ip_address_supports_probable_cause(self):
        fact = ip_address_fact("10.1.2.3", "child pornography trafficking")
        assert fact.supports is Standard.PROBABLE_CAUSE
        assert "10.1.2.3" in fact.description

    def test_membership_alone_is_only_suspicion(self):
        # Coreas: membership alone does not establish probable cause.
        fact = membership_fact("user9", "an illicit site")
        assert fact.supports is Standard.MERE_SUSPICION

    def test_membership_with_intent_is_probable_cause(self):
        # Gourde plus the paper's intent observation.
        fact = membership_with_intent_fact(
            "user9", "an illicit site", "paid for a renewing subscription"
        )
        assert fact.supports is Standard.PROBABLE_CAUSE

    def test_articulable_facts_support_court_order(self):
        fact = articulable_facts("server logs tie the account to the event")
        assert fact.supports is Standard.SPECIFIC_AND_ARTICULABLE_FACTS

    def test_observed_at_carried(self):
        fact = suspicion_fact("old tip", observed_at=123.0)
        assert fact.observed_at == 123.0
