"""Unit tests for the pipeline and the report formatters."""

from repro.core import Admissibility, ProcessKind, build_table1
from repro.investigation.pipeline import (
    InvestigationPipeline,
    suppression_split,
)
from repro.investigation.reporting import (
    format_assessment,
    format_suppression_outcomes,
    format_table1,
)
from repro.techniques import OneSwarmTimingAttack


class TestPipeline:
    def test_warrantless_scene_needing_process_is_suppressed(self):
        pipeline = InvestigationPipeline()
        scene_8 = build_table1()[7]  # ISP full packets: wiretap order
        outcome = pipeline.run_scene(scene_8, obtain_process=False)
        assert outcome.suppressed
        assert outcome.process_obtained is ProcessKind.NONE
        assert outcome.admissibility is Admissibility.SUPPRESSED

    def test_compliant_scene_is_admitted(self):
        pipeline = InvestigationPipeline()
        scene_8 = build_table1()[7]
        outcome = pipeline.run_scene(scene_8, obtain_process=True)
        assert not outcome.suppressed
        assert outcome.process_obtained is ProcessKind.WIRETAP_ORDER

    def test_no_process_scene_unaffected_either_way(self):
        pipeline = InvestigationPipeline()
        scene_9 = build_table1()[8]  # normal P2P: no process
        for obtain in (False, True):
            outcome = pipeline.run_scene(scene_9, obtain_process=obtain)
            assert not outcome.suppressed
            assert outcome.process_obtained is ProcessKind.NONE

    def test_suppression_split_shape(self):
        pipeline = InvestigationPipeline()
        outcomes = pipeline.run_all(build_table1(), obtain_process=False)
        need_rate, no_need_rate = suppression_split(outcomes)
        assert need_rate == 1.0
        assert no_need_rate == 0.0

    def test_suppression_split_empty(self):
        assert suppression_split([]) == (0.0, 0.0)


class TestReporting:
    def test_table1_format(self, engine):
        text = format_table1(build_table1(), engine)
        assert "agreement: 20/20" in text
        assert text.count("\n") >= 22
        assert "Paper" in text and "Engine" in text

    def test_assessment_format(self):
        assessment = OneSwarmTimingAttack().assess()
        text = format_assessment(assessment)
        assert "workable without process" in text
        assert "Recommendation" in text

    def test_suppression_outcomes_format(self):
        pipeline = InvestigationPipeline()
        outcomes = pipeline.run_all(
            build_table1()[:3], obtain_process=False
        )
        text = format_suppression_outcomes(outcomes)
        assert "Outcome" in text
        assert text.count("\n") >= 4
