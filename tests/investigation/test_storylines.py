"""Integration tests for the codified storylines."""

from repro.core import Admissibility
from repro.investigation.storylines import (
    ip_traceback_storyline,
    watermark_situation_one,
    watermark_situation_two,
)


class TestIpTraceback:
    def test_by_the_book_succeeds(self):
        report = ip_traceback_storyline(comply=True)
        assert report.succeeded
        assert report.suppression is not None
        assert report.suppression.suppression_rate == 0.0
        assert any("warrant issued" in step for step in report.steps)

    def test_crist_error_fails(self):
        report = ip_traceback_storyline(comply=False)
        assert not report.succeeded
        assert report.suppression.suppression_rate > 0.0
        # The subpoenaed identity survives; the hash hits do not.
        outcomes = [
            report.suppression.findings[item.evidence_id].outcome
            for item in report.evidence
        ]
        assert Admissibility.ADMISSIBLE in outcomes
        assert Admissibility.SUPPRESSED in outcomes
        assert Admissibility.SUPPRESSED_DERIVATIVE in outcomes


class TestWatermarkSituationOne:
    def test_court_ordered_traceback_succeeds(self):
        report = watermark_situation_one()
        assert report.succeeded
        assert report.suppression is not None
        assert report.suppression.suppression_rate == 0.0
        assert any("court order issued" in step for step in report.steps)
        assert any(
            "identified subscriber(s): [0]" in step for step in report.steps
        )


class TestWatermarkSituationTwo:
    def test_private_search_route_succeeds(self):
        report = watermark_situation_two()
        assert report.succeeded
        assert any("private search" in step for step in report.steps)
        assert any("granted" in step for step in report.steps)
        # No government acquisition happened, so nothing went to court.
        assert report.suppression is None
