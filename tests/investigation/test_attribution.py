"""Unit tests for the III.A.2 attribution/intent analysis."""

import pytest

from repro.core import Standard
from repro.investigation.attribution import (
    AttributionAnalyzer,
    BrowsingRecord,
    LoginRecord,
    MachineProfile,
    MalwareScanResult,
    UserAccount,
)


def make_profile(
    logins=None,
    browsing=None,
    clean=True,
    password_protected=True,
):
    return MachineProfile(
        accounts=(
            UserAccount("suspect", password_protected=password_protected),
            UserAccount("roommate", password_protected=False),
        ),
        logins=tuple(
            logins
            if logins is not None
            else [LoginRecord("suspect", 0.0, 100.0)]
        ),
        browsing=tuple(browsing or ()),
        malware_scan=MalwareScanResult(
            clean=clean,
            findings=() if clean else ("trojan.dropper",),
        ),
    )


@pytest.fixture()
def analyzer():
    return AttributionAnalyzer(crime_keywords=["methamphetamine", "lab"])


class TestAttributionProng:
    def test_single_logged_in_user_attributed(self, analyzer):
        report = analyzer.analyze(make_profile(), artifact_created_at=50.0)
        assert report.attributed_user == "suspect"
        assert report.exclusive_attribution

    def test_no_active_session_no_attribution(self, analyzer):
        report = analyzer.analyze(
            make_profile(logins=[LoginRecord("suspect", 0.0, 10.0)]),
            artifact_created_at=50.0,
        )
        assert report.attributed_user is None
        assert report.supports is Standard.NOTHING

    def test_two_concurrent_users_defeat_attribution(self, analyzer):
        report = analyzer.analyze(
            make_profile(
                logins=[
                    LoginRecord("suspect", 0.0, 100.0),
                    LoginRecord("roommate", 0.0, 100.0),
                ]
            ),
            artifact_created_at=50.0,
        )
        assert report.attributed_user is None

    def test_unprotected_account_is_not_exclusive(self, analyzer):
        report = analyzer.analyze(
            make_profile(password_protected=False),
            artifact_created_at=50.0,
        )
        assert report.attributed_user == "suspect"
        assert not report.exclusive_attribution


class TestMalwareProng:
    def test_clean_scan_rules_out_malware(self, analyzer):
        report = analyzer.analyze(make_profile(), artifact_created_at=50.0)
        assert report.malware_ruled_out

    def test_infected_machine_does_not(self, analyzer):
        report = analyzer.analyze(
            make_profile(clean=False), artifact_created_at=50.0
        )
        assert not report.malware_ruled_out


class TestKnowledgeProng:
    def test_subject_research_shows_knowledge(self, analyzer):
        report = analyzer.analyze(
            make_profile(
                browsing=[
                    BrowsingRecord(
                        "suspect", 1.0, "how to build a methamphetamine lab"
                    ),
                    BrowsingRecord("suspect", 2.0, "cat videos"),
                ]
            ),
            artifact_created_at=50.0,
        )
        assert report.knowledge_shown
        assert len(report.knowledge_entries) == 1

    def test_other_users_history_does_not_count(self, analyzer):
        report = analyzer.analyze(
            make_profile(
                browsing=[
                    BrowsingRecord(
                        "roommate", 1.0, "methamphetamine wiki"
                    ),
                ]
            ),
            artifact_created_at=50.0,
        )
        assert not report.knowledge_shown


class TestGrading:
    def test_all_three_prongs_is_probable_cause(self, analyzer):
        report = analyzer.analyze(
            make_profile(
                browsing=[
                    BrowsingRecord("suspect", 1.0, "methamphetamine lab"),
                ]
            ),
            artifact_created_at=50.0,
        )
        assert report.supports is Standard.PROBABLE_CAUSE

    def test_partial_prongs_are_articulable_facts(self, analyzer):
        report = analyzer.analyze(
            make_profile(clean=False), artifact_created_at=50.0
        )
        # attribution + exclusivity, but no malware clearance or knowledge
        assert report.supports is Standard.SPECIFIC_AND_ARTICULABLE_FACTS

    def test_bare_attribution_is_suspicion(self, analyzer):
        report = analyzer.analyze(
            make_profile(clean=False, password_protected=False),
            artifact_created_at=50.0,
        )
        assert report.supports is Standard.MERE_SUSPICION

    def test_to_fact_round_trip(self, analyzer):
        report = analyzer.analyze(
            make_profile(
                browsing=[BrowsingRecord("suspect", 1.0, "lab supplies")]
            ),
            artifact_created_at=50.0,
        )
        fact = report.to_fact("contraband file", observed_at=60.0)
        assert fact.supports is report.supports
        assert "suspect" in fact.description
        assert fact.observed_at == 60.0

    def test_unattributed_fact_description(self, analyzer):
        report = analyzer.analyze(
            make_profile(logins=[]), artifact_created_at=50.0
        )
        fact = report.to_fact("contraband file")
        assert "could not attribute" in fact.description


class TestValidation:
    def test_empty_keywords_rejected(self):
        with pytest.raises(ValueError):
            AttributionAnalyzer(crime_keywords=[])
