"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTable1:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "agreement: 20/20" in out


class TestScene:
    def test_known_scene(self, capsys):
        assert main(["scene", "18"]) == 0
        out = capsys.readouterr().out
        assert "Scene 18" in out
        assert "search warrant" in out

    def test_unknown_scene(self, capsys):
        assert main(["scene", "42"]) == 1
        assert "no scene 42" in capsys.readouterr().out


class TestAssess:
    @pytest.mark.parametrize(
        "technique,expected",
        [
            ("timing", "workable without process"),
            ("watermark", "court order"),
            ("hash-search", "search warrant"),
            ("mining", "no process"),
            ("credentials", "no process"),
            ("square-wave", "court order"),
            ("correlation", "court order"),
        ],
    )
    def test_each_technique(self, capsys, technique, expected):
        assert main(["assess", technique]) == 0
        assert expected in capsys.readouterr().out

    def test_unknown_technique(self, capsys):
        assert main(["assess", "teleportation"]) == 1
        assert "unknown technique" in capsys.readouterr().out


class TestStoryline:
    def test_ip_storyline(self, capsys):
        assert main(["storyline", "ip"]) == 0
        out = capsys.readouterr().out
        assert "SUCCESS" in out

    def test_crist_storyline_fails(self, capsys):
        assert main(["storyline", "ip-crist"]) == 0
        assert "FAILED" in capsys.readouterr().out

    def test_wm2_storyline(self, capsys):
        assert main(["storyline", "wm2"]) == 0
        assert "SUCCESS" in capsys.readouterr().out

    def test_unknown_storyline(self, capsys):
        assert main(["storyline", "heist"]) == 1
        assert "unknown storyline" in capsys.readouterr().out


class TestReference:
    def test_reference_renders(self, capsys):
        assert main(["reference"]) == 0
        out = capsys.readouterr().out
        assert out.count("Scene ") == 20
        assert "authorities:" in out


class TestCurve:
    def test_curve_renders(self, capsys):
        assert main(["curve", "--cases", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "p=1.00: 100.0%" in out
        assert "p=0.00" in out


class TestAuthorities:
    def test_listing(self, capsys):
        assert main(["authorities"]) == 0
        out = capsys.readouterr().out
        assert "katz" in out
        assert "Katz v. United States" in out

    def test_verbose_includes_holdings(self, capsys):
        assert main(["authorities", "-v"]) == 0
        assert "reasonable expectation of privacy" in capsys.readouterr().out


class TestBench:
    def test_quick_bench_writes_report(self, capsys, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        code = main(
            ["bench", "--quick", "--corpus", "200", "--out", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "speedup (hot vs uncached)" in text
        assert "differential: 200 actions, 0 mismatches" in text

        import json

        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["ok"] is True
        assert report["differential"]["identical"] is True
        assert report["differential"]["second_pass_hit_rate"] > 0
        assert report["table1"]["agreement"] == "20/20"
        assert report["corpus"]["speedup_hot"] > 1.0
        assert (
            report["latency"]["cached_hot"]["p50_us"]
            <= report["latency"]["uncached"]["p99_us"]
        )

    def test_invalid_corpus_size_fails_cleanly(self, capsys, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        code = main(["bench", "--corpus", "-5", "--out", str(out)])
        assert code == 1
        assert "corpus size must be >= 1" in capsys.readouterr().out
        assert not out.exists()


class TestParser:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestMetrics:
    def test_metrics_renders_non_empty_exposition(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_evaluations_total counter" in out
        assert "repro_ruling_cache_hits" in out
        assert "repro_engine_evaluate_seconds_bucket" in out


class TestTrace:
    def test_audit_correlates_every_gated_acquisition(self, capsys):
        assert main(["trace", "--audit"]) == 0
        out = capsys.readouterr().out
        assert "20 acquisition span(s), 0 unauthorized" in out
        assert "authorized by" in out
        assert "docket #" in out

    def test_audit_flags_non_complying_run(self, capsys):
        assert main(["trace", "--audit", "--no-comply"]) == 1
        assert "9 unauthorized" in capsys.readouterr().out

    def test_jsonl_to_stdout(self, capsys):
        import json

        assert main(["trace"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert any(r["name"] == "pipeline.acquisition" for r in records)

    def test_chrome_export_to_file(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main(["trace", "--chrome", "--out", str(out)]) == 0
        trace = json.loads(out.read_text(encoding="utf-8"))
        assert trace["traceEvents"]
        assert {e["ph"] for e in trace["traceEvents"]} <= {"X", "i"}


class TestTraceOut:
    def test_chaos_trace_out_carries_fault_events(self, tmp_path, capsys):
        import json

        out = tmp_path / "chaos.jsonl"
        code = main(
            [
                "chaos", "--seed", "7", "--budget", "small",
                "--scenes", "1,5,18", "--trace-out", str(out),
            ]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in out.read_text(encoding="utf-8").splitlines()
        ]
        assert any(r["name"] == "chaos.plan" for r in records)
        assert any(r["name"] == "fault.log" for r in records)

    def test_curve_trace_out_writes_case_spans(self, tmp_path, capsys):
        import json

        out = tmp_path / "curve.jsonl"
        code = main(
            ["curve", "--cases", "6", "--trace-out", str(out)]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in out.read_text(encoding="utf-8").splitlines()
        ]
        assert any(r["name"] == "campaign.case" for r in records)


class TestWorkflow:
    def test_run_completes_and_reports(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        code = main(
            [
                "workflow",
                "run",
                "photo-recovery",
                "--seed",
                "7",
                "--journal",
                str(journal),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "status=completed" in out
        assert "workflow report: photo-recovery" in out
        assert journal.exists()

    def test_crash_then_resume_roundtrip(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        code = main(
            [
                "workflow",
                "run",
                "mailstore-triage",
                "--journal",
                str(journal),
                "--fault-plan",
                "crash-after-record=3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "crashed" in out
        assert "resume" in out

        code = main(
            [
                "workflow",
                "resume",
                "mailstore-triage",
                "--journal",
                str(journal),
                "-q",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "status=completed" in out
        assert "RESUMED" in out

    def test_unknown_pack_lists_choices(self, capsys):
        assert main(["workflow", "run", "nope"]) == 2
        out = capsys.readouterr().out
        assert "photo-recovery" in out
        assert "mailstore-triage" in out

    def test_bad_fault_plan_rejected(self, capsys):
        code = main(
            [
                "workflow",
                "run",
                "photo-recovery",
                "--fault-plan",
                "bogus-token=1",
            ]
        )
        assert code == 2

    def test_resume_without_journal_fails_cleanly(self, capsys, tmp_path):
        code = main(
            [
                "workflow",
                "resume",
                "photo-recovery",
                "--journal",
                str(tmp_path / "missing.jsonl"),
            ]
        )
        assert code == 2
        assert "cannot resume" in capsys.readouterr().out

    def test_batch_runs_independent_items(self, capsys, tmp_path):
        code = main(
            [
                "workflow",
                "run",
                "mailstore-triage",
                "--items",
                "2",
                "--seed",
                "40",
                "--workers",
                "1",
                "--journal-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "items=2" in out
        assert (tmp_path / "mailstore-triage-seed40.jsonl").exists()
        assert (tmp_path / "mailstore-triage-seed41.jsonl").exists()

    def test_verify_resume_gate_passes(self, capsys, tmp_path):
        code = main(
            [
                "workflow",
                "verify-resume",
                "--pack",
                "mailstore-triage",
                "--seed",
                "5",
                "--chaos",
                "2",
                "--workdir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: OK" in out
        assert "boundary check(s)" in out
