"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTable1:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "agreement: 20/20" in out


class TestScene:
    def test_known_scene(self, capsys):
        assert main(["scene", "18"]) == 0
        out = capsys.readouterr().out
        assert "Scene 18" in out
        assert "search warrant" in out

    def test_unknown_scene(self, capsys):
        assert main(["scene", "42"]) == 1
        assert "no scene 42" in capsys.readouterr().out


class TestAssess:
    @pytest.mark.parametrize(
        "technique,expected",
        [
            ("timing", "workable without process"),
            ("watermark", "court order"),
            ("hash-search", "search warrant"),
            ("mining", "no process"),
            ("credentials", "no process"),
            ("square-wave", "court order"),
            ("correlation", "court order"),
        ],
    )
    def test_each_technique(self, capsys, technique, expected):
        assert main(["assess", technique]) == 0
        assert expected in capsys.readouterr().out

    def test_unknown_technique(self, capsys):
        assert main(["assess", "teleportation"]) == 1
        assert "unknown technique" in capsys.readouterr().out


class TestStoryline:
    def test_ip_storyline(self, capsys):
        assert main(["storyline", "ip"]) == 0
        out = capsys.readouterr().out
        assert "SUCCESS" in out

    def test_crist_storyline_fails(self, capsys):
        assert main(["storyline", "ip-crist"]) == 0
        assert "FAILED" in capsys.readouterr().out

    def test_wm2_storyline(self, capsys):
        assert main(["storyline", "wm2"]) == 0
        assert "SUCCESS" in capsys.readouterr().out

    def test_unknown_storyline(self, capsys):
        assert main(["storyline", "heist"]) == 1
        assert "unknown storyline" in capsys.readouterr().out


class TestReference:
    def test_reference_renders(self, capsys):
        assert main(["reference"]) == 0
        out = capsys.readouterr().out
        assert out.count("Scene ") == 20
        assert "authorities:" in out


class TestCurve:
    def test_curve_renders(self, capsys):
        assert main(["curve", "--cases", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "p=1.00: 100.0%" in out
        assert "p=0.00" in out


class TestAuthorities:
    def test_listing(self, capsys):
        assert main(["authorities"]) == 0
        out = capsys.readouterr().out
        assert "katz" in out
        assert "Katz v. United States" in out

    def test_verbose_includes_holdings(self, capsys):
        assert main(["authorities", "-v"]) == 0
        assert "reasonable expectation of privacy" in capsys.readouterr().out


class TestParser:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
