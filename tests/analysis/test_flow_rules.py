"""The dataflow-powered rules: REPRO110-113 plus the rewritten 107/109."""

import ast

from repro.analysis.pylint_rules import ModuleUnderLint
from repro.analysis.pylint_rules.fault_swallow import FaultSwallowRule
from repro.analysis.pylint_rules.gated_acquisition import (
    GatedAcquisitionRule,
)
from repro.analysis.pylint_rules.hash_checkpoint import HashCheckpointRule
from repro.analysis.pylint_rules.poisonous_flow import PoisonousFlowRule
from repro.analysis.pylint_rules.retry_backoff import RetryBackoffRule
from repro.analysis.pylint_rules.telemetry import TelemetryChannelRule


def module(source: str, path: str = "src/repro/example.py"):
    return ModuleUnderLint(
        path=path, tree=ast.parse(source), source=source
    )


def findings(rule, source: str, path: str = "src/repro/example.py"):
    mod = module(source, path)
    if not rule.applies_to(mod):
        return []
    return list(rule.check(mod))


class TestGatedAcquisition:
    def test_ungated_acquisition_is_flagged_with_path(self):
        source = (
            "def seize(device):\n"
            "    return image_device(device)\n"
        )
        [found] = findings(GatedAcquisitionRule(), source)
        assert found.code == "REPRO110"
        assert "`seize`" in found.message
        assert "image_device" in found.message
        assert "entry" in found.message  # the rendered path

    def test_dominating_gate_clears_the_call(self):
        source = (
            "def seize(process, requirement, device):\n"
            "    if not process.satisfies(requirement):\n"
            "        raise InsufficientProcess(requirement)\n"
            "    return image_device(device)\n"
        )
        assert findings(GatedAcquisitionRule(), source) == []

    def test_one_armed_gate_leaves_an_ungated_path(self):
        source = (
            "def seize(urgent, process, requirement, device):\n"
            "    if urgent:\n"
            "        process.satisfies(requirement)\n"
            "    return image_device(device)\n"
        )
        [found] = findings(GatedAcquisitionRule(), source)
        # The rendered path routes around the gated `then` arm.
        assert "then" not in found.message.split("[")[-1]

    def test_exception_predicate_branch_is_a_gate(self):
        source = (
            "def peek(provider, stream):\n"
            "    if provider_own_monitoring(provider):\n"
            "        return attach_tap(stream)\n"
            "    return None\n"
        )
        assert findings(GatedAcquisitionRule(), source) == []

    def test_gate_after_the_call_does_not_count(self):
        source = (
            "def seize(process, requirement, device):\n"
            "    image = image_device(device)\n"
            "    process.satisfies(requirement)\n"
            "    return image\n"
        )
        assert len(findings(GatedAcquisitionRule(), source)) == 1

    def test_exception_path_into_handler_bypasses_gate(self):
        source = (
            "def seize(engine, action, device):\n"
            "    try:\n"
            "        prepare(device)\n"
            "        engine.evaluate(action)\n"
            "    except RuntimeError:\n"
            "        pass\n"
            "    return image_device(device)\n"
        )
        # prepare() can raise before the gate runs, and the handler
        # falls through to the acquisition.
        [found] = findings(GatedAcquisitionRule(), source)
        assert "except" in found.message


class TestPoisonousFlow:
    def test_tainted_value_reaching_application_sink(self):
        source = (
            "def chain(device, court):\n"
            "    image = image_device(device)\n"
            "    return court.apply_for(image)\n"
        )
        [found] = findings(PoisonousFlowRule(), source)
        assert found.code == "REPRO111"
        assert found.authorities == ("wong_sun", "nix_v_williams")

    def test_gated_source_is_not_poison(self):
        source = (
            "def chain(process, requirement, device, court):\n"
            "    process.satisfies(requirement)\n"
            "    image = image_device(device)\n"
            "    return court.apply_for(image)\n"
        )
        assert findings(PoisonousFlowRule(), source) == []

    def test_taint_survives_attribute_access_and_operators(self):
        source = (
            "def chain(relay, court):\n"
            "    hits = relay.query('le', 'cp')\n"
            "    peer = hits[0].peer + ':443'\n"
            "    return court.apply_for(peer)\n"
        )
        assert len(findings(PoisonousFlowRule(), source)) == 1

    def test_derived_from_keyword_is_exempt(self):
        source = (
            "def record(device, ledger):\n"
            "    image = image_device(device)\n"
            "    ledger.add_fact('imaged', derived_from=image)\n"
        )
        assert findings(PoisonousFlowRule(), source) == []

    def test_interprocedural_return_taint(self):
        source = (
            "def fetch(device):\n"
            "    return image_device(device)\n"
            "def chain(device, court):\n"
            "    image = fetch(device)\n"
            "    return court.apply_for(image)\n"
        )
        [found] = findings(PoisonousFlowRule(), source)
        assert found.line == 5
        assert "apply_for" in found.message

    def test_interprocedural_param_to_sink(self):
        source = (
            "def file_application(court, fact):\n"
            "    return court.apply_for(fact)\n"
            "def chain(device, court):\n"
            "    image = image_device(device)\n"
            "    return file_application(court, image)\n"
        )
        assert len(findings(PoisonousFlowRule(), source)) >= 1

    def test_suppressed_source_is_sanctioned(self):
        source = (
            "def chain(device, court):\n"
            "    # repro-lint: disable=REPRO110 -- seized under warrant\n"
            "    image = image_device(device)\n"
            "    return court.apply_for(image)\n"
        )
        assert findings(PoisonousFlowRule(), source) == []

    def test_untainted_argument_to_sink_is_fine(self):
        source = (
            "def chain(device, court, fact):\n"
            "    image = image_device(device)\n"
            "    del image\n"
            "    return court.apply_for(fact)\n"
        )
        assert findings(PoisonousFlowRule(), source) == []


class TestHashCheckpoint:
    def test_image_used_before_hash(self):
        source = (
            "def examine(device):\n"
            "    image = image_device(device)\n"
            "    return carve(image)\n"
        )
        [found] = findings(HashCheckpointRule(), source)
        assert found.code == "REPRO112"
        assert "image" in found.message

    def test_hash_before_use_is_clean(self):
        source = (
            "def examine(device):\n"
            "    image = image_device(device)\n"
            "    record_hash(sha256(image))\n"
            "    return carve(image)\n"
        )
        assert findings(HashCheckpointRule(), source) == []

    def test_hash_on_one_branch_only_still_flags(self):
        source = (
            "def examine(device, quick):\n"
            "    image = image_device(device)\n"
            "    if not quick:\n"
            "        sha256(image)\n"
            "    return carve(image)\n"
        )
        assert len(findings(HashCheckpointRule(), source)) == 1

    def test_reassignment_clears_the_obligation(self):
        source = (
            "def examine(device):\n"
            "    image = image_device(device)\n"
            "    image = load_reference()\n"
            "    return carve(image)\n"
        )
        assert findings(HashCheckpointRule(), source) == []

    def test_one_diagnostic_per_name(self):
        source = (
            "def examine(device):\n"
            "    image = image_device(device)\n"
            "    carve(image)\n"
            "    carve(image)\n"
        )
        assert len(findings(HashCheckpointRule(), source)) == 1


class TestRetryBackoff:
    def test_retry_loop_without_backoff(self):
        source = (
            "def persist(court, kind):\n"
            "    while True:\n"
            "        process = court.apply_for(kind)\n"
            "        if process:\n"
            "            return process\n"
        )
        [found] = findings(RetryBackoffRule(), source)
        assert found.code == "REPRO113"

    def test_retry_loop_with_sim_clock_backoff(self):
        source = (
            "def persist(court, kind, clock):\n"
            "    while True:\n"
            "        process = court.apply_for(kind)\n"
            "        if process:\n"
            "            return process\n"
            "        clock.advance(60)\n"
        )
        assert findings(RetryBackoffRule(), source) == []

    def test_retry_outside_loop_is_fine(self):
        source = (
            "def once(court, kind):\n"
            "    return court.apply_for(kind)\n"
        )
        assert findings(RetryBackoffRule(), source) == []

    def test_retry_through_helper_called_in_loop(self):
        source = (
            "def attempt(court, kind):\n"
            "    return court.apply_for(kind)\n"
            "def persist(court, kind):\n"
            "    for _ in range(3):\n"
            "        process = attempt(court, kind)\n"
            "        if process:\n"
            "            return process\n"
        )
        assert len(findings(RetryBackoffRule(), source)) == 1


class TestFaultSwallowStrictness:
    PATH = "src/repro/techniques/example.py"

    def test_conditional_recording_is_flagged(self):
        source = (
            "def run_probe(overlay, noisy):\n"
            "    try:\n"
            "        step(overlay)\n"
            "    except ReadError:\n"
            "        if noisy:\n"
            "            result.record_miss()\n"
        )
        found = findings(FaultSwallowRule(), source, path=self.PATH)
        assert len(found) == 1
        assert "every handler path" in found[0].message

    def test_unconditional_recording_is_clean(self):
        source = (
            "def run_probe(overlay):\n"
            "    try:\n"
            "        step(overlay)\n"
            "    except ReadError:\n"
            "        result.record_miss()\n"
        )
        assert findings(FaultSwallowRule(), source, path=self.PATH) == []

    def test_branch_recording_on_both_arms_is_clean(self):
        source = (
            "def run_probe(overlay, noisy):\n"
            "    try:\n"
            "        step(overlay)\n"
            "    except ReadError:\n"
            "        if noisy:\n"
            "            result.record_miss()\n"
            "        else:\n"
            "            raise\n"
        )
        assert findings(FaultSwallowRule(), source, path=self.PATH) == []


class TestTelemetryPrecision:
    def test_import_alias_of_time_is_flagged(self):
        source = (
            "import time as clock\n"
            "def f():\n"
            "    return clock.perf_counter()\n"
        )
        [found] = findings(TelemetryChannelRule(), source)
        assert found.code == "REPRO109"

    def test_from_import_bare_call_is_flagged(self):
        source = (
            "from time import perf_counter\n"
            "def f():\n"
            "    return perf_counter()\n"
        )
        assert len(findings(TelemetryChannelRule(), source)) == 1

    def test_shadowed_print_is_not_flagged(self):
        source = (
            "def f(collect):\n"
            "    print = collect\n"
            "    print('hello')\n"
        )
        assert findings(TelemetryChannelRule(), source) == []

    def test_builtin_print_is_flagged(self):
        source = "def f():\n    print('hello')\n"
        assert len(findings(TelemetryChannelRule(), source)) == 1

    def test_non_time_module_attribute_is_not_flagged(self):
        source = (
            "import arrow\n"
            "def f():\n"
            "    return arrow.time()\n"
        )
        assert findings(TelemetryChannelRule(), source) == []

    def test_parameter_named_time_is_not_flagged(self):
        source = (
            "def f(time):\n"
            "    return time.monotonic()\n"
        )
        assert findings(TelemetryChannelRule(), source) == []
