"""Tier-1 guarantee: the shipped package satisfies its own invariants."""

from repro.analysis import has_errors, lint_paths


class TestRepoLintsClean:
    def test_package_has_no_lint_findings(self):
        diagnostics = lint_paths()
        assert diagnostics == [], "\n".join(
            diagnostic.render() for diagnostic in diagnostics
        )

    def test_has_errors_reflects_diagnostics(self):
        assert has_errors(lint_paths()) is False
