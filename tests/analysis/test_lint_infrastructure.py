"""Suppressions, baselines, SARIF output, and run determinism."""

import json

import pytest

from repro.analysis.baseline import (
    filter_baselined,
    load_baseline,
    write_baseline,
)
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.pylint_rules import all_rules
from repro.analysis.runner import run_lint
from repro.analysis.sarif import fingerprint, to_sarif, write_sarif
from repro.analysis.suppress import is_suppressed, parse_suppressions


def diag(code="REPRO110", path="src/repro/a.py", line=3, col=5,
         message="ungated"):
    return Diagnostic(
        severity=Severity.ERROR,
        code=code,
        message=message,
        path=path,
        line=line,
        col=col,
    )


class TestSuppressionParser:
    def test_trailing_comment_targets_its_own_line(self):
        source = (
            "x = 1\n"
            "image = image_device(d)  "
            "# repro-lint: disable=REPRO110 -- warrant on file\n"
        )
        suppressions = parse_suppressions(source)
        assert 2 in suppressions
        assert suppressions[2].codes == frozenset({"REPRO110"})
        assert suppressions[2].justification == "warrant on file"

    def test_own_line_comment_targets_next_code_line(self):
        source = (
            "# repro-lint: disable=REPRO110 -- warrant on file\n"
            "\n"
            "# unrelated comment\n"
            "image = image_device(d)\n"
        )
        suppressions = parse_suppressions(source)
        assert list(suppressions) == [4]

    def test_justification_is_mandatory(self):
        source = "image = image_device(d)  # repro-lint: disable=REPRO110\n"
        assert parse_suppressions(source) == {}

    def test_multiple_codes_on_one_directive(self):
        source = (
            "image = image_device(d)  "
            "# repro-lint: disable=REPRO110,REPRO112 -- sanctioned\n"
        )
        [suppression] = parse_suppressions(source).values()
        assert suppression.codes == frozenset({"REPRO110", "REPRO112"})

    def test_is_suppressed_matches_code_and_line(self):
        source = (
            "image = image_device(d)  "
            "# repro-lint: disable=REPRO110 -- sanctioned\n"
        )
        suppressions = parse_suppressions(source)
        assert is_suppressed(suppressions, "REPRO110", 1)
        assert not is_suppressed(suppressions, "REPRO111", 1)
        assert not is_suppressed(suppressions, "REPRO110", 2)


class TestBaseline:
    def test_round_trip_filters_known_findings(self, tmp_path):
        known = diag(message="old finding")
        fresh = diag(message="new finding", line=9)
        baseline = tmp_path / "baseline.json"
        adopted = write_baseline(baseline, [known])
        assert adopted == 1
        fingerprints = load_baseline(baseline)
        kept, dropped = filter_baselined([known, fresh], fingerprints)
        assert kept == [fresh]
        assert dropped == 1

    def test_bad_format_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format": "not-a-baseline"}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_baseline_file_is_deterministic(self, tmp_path):
        diagnostics = [diag(line=9), diag(line=3)]
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_baseline(first, diagnostics)
        write_baseline(second, list(reversed(diagnostics)))
        assert first.read_text() == second.read_text()


class TestSarif:
    def test_log_shape(self):
        log = to_sarif([diag()], all_rules())
        assert log["version"] == "2.1.0"
        assert "sarif-schema" in str(log["$schema"])
        [run] = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"REPRO110", "REPRO111", "REPRO112", "REPRO113"} <= rule_ids
        [result] = run["results"]
        assert result["ruleId"] == "REPRO110"
        assert result["level"] == "error"
        assert result["message"]["text"].startswith("ungated")
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/a.py"
        assert location["region"] == {"startLine": 3, "startColumn": 5}
        assert "reproLint/v1" in result["partialFingerprints"]

    def test_fingerprint_is_stable_and_content_keyed(self):
        assert fingerprint(diag()) == fingerprint(diag())
        assert len(fingerprint(diag())) == 32
        # Line numbers are deliberately excluded: a baseline entry must
        # survive unrelated edits shifting the finding up or down.
        assert fingerprint(diag()) == fingerprint(diag(line=9))
        assert fingerprint(diag()) != fingerprint(
            diag(message="different")
        )
        assert fingerprint(diag()) != fingerprint(
            diag(path="src/repro/b.py")
        )
        assert fingerprint(diag()) != fingerprint(diag(code="REPRO111"))

    def test_write_is_byte_stable(self, tmp_path):
        first = tmp_path / "a.sarif"
        second = tmp_path / "b.sarif"
        write_sarif(first, [diag()], all_rules())
        write_sarif(second, [diag()], all_rules())
        assert first.read_bytes() == second.read_bytes()
        json.loads(first.read_text())  # well-formed


class TestRunDeterminism:
    def test_two_runs_produce_identical_ordered_output(self, tmp_path):
        first = tmp_path / "src" / "repro" / "alpha.py"
        second = tmp_path / "src" / "repro" / "beta.py"
        first.parent.mkdir(parents=True)
        first.write_text(
            "def seize(d):\n    return image_device(d)\n"
        )
        second.write_text(
            "def f():\n    print('x')\n"
            "def g():\n    print('y')\n"
        )
        runs = [run_lint(paths=[tmp_path]) for _ in range(2)]
        assert runs[0].diagnostics == runs[1].diagnostics
        keys = [
            (d.path, d.line, d.col, d.code)
            for d in runs[0].diagnostics
        ]
        assert keys == sorted(keys)
        assert len({d.code for d in runs[0].diagnostics}) >= 2

    def test_duplicate_diagnostics_are_deduped(self, tmp_path):
        target = tmp_path / "src" / "repro" / "alpha.py"
        target.parent.mkdir(parents=True)
        target.write_text("def seize(d):\n    return image_device(d)\n")
        run = run_lint(paths=[tmp_path])
        assert len(run.diagnostics) == len(set(run.diagnostics))
