"""Per-rule unit tests: one positive and one negative fixture each."""

import ast

import pytest

from repro.analysis.pylint_rules import ModuleUnderLint, all_rules
from repro.analysis.pylint_rules.determinism import DeterminismRule
from repro.analysis.pylint_rules.empty_iterable import (
    EmptyIterableExtremumRule,
)
from repro.analysis.pylint_rules.enum_dispatch import EnumDispatchRule
from repro.analysis.pylint_rules.fault_swallow import FaultSwallowRule
from repro.analysis.pylint_rules.float_sweep import FloatSweepRule
from repro.analysis.pylint_rules.mutable_defaults import MutableDefaultRule
from repro.analysis.pylint_rules.scenario_answers import ScenarioAnswerRule
from repro.analysis.pylint_rules.technique_contract import (
    TechniqueContractRule,
)
from repro.analysis.pylint_rules.telemetry import TelemetryChannelRule


def module(source: str, path: str = "src/repro/example.py"):
    return ModuleUnderLint(
        path=path, tree=ast.parse(source), source=source
    )


def findings(rule, source: str, path: str = "src/repro/example.py"):
    mod = module(source, path)
    if not rule.applies_to(mod):
        return []
    return list(rule.check(mod))


class TestRegistry:
    def test_all_six_seed_rules_registered(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes)
        assert {
            "REPRO101",
            "REPRO102",
            "REPRO103",
            "REPRO104",
            "REPRO105",
            "REPRO106",
        } <= set(codes)


class TestTechniqueContract:
    def test_flags_subclass_missing_both(self):
        source = (
            "class Bad(Technique):\n"
            "    def run(self):\n"
            "        pass\n"
        )
        found = findings(TechniqueContractRule(), source)
        assert len(found) == 2
        assert all(f.code == "REPRO101" for f in found)

    def test_accepts_complete_subclass(self):
        source = (
            "class Good(Technique):\n"
            "    name = 'good'\n"
            "    def required_actions(self):\n"
            "        return []\n"
        )
        assert findings(TechniqueContractRule(), source) == []

    def test_ignores_abstract_subclass(self):
        source = (
            "import abc\n"
            "class Mid(Technique):\n"
            "    @abc.abstractmethod\n"
            "    def required_actions(self):\n"
            "        ...\n"
        )
        assert findings(TechniqueContractRule(), source) == []

    def test_ignores_unrelated_classes(self):
        assert findings(TechniqueContractRule(), "class Foo:\n    pass\n") == []


class TestScenarioAnswer:
    CATALOGUE = "src/repro/core/scenarios.py"

    def test_flags_scenario_without_answer(self):
        source = "s = Scenario(number=1, action=a)\n"
        found = findings(ScenarioAnswerRule(), source, self.CATALOGUE)
        assert [f.code for f in found] == ["REPRO102"]

    def test_accepts_scenario_with_answer(self):
        source = (
            "s = Scenario(number=1, action=a, paper_needs_process=True)\n"
        )
        assert findings(ScenarioAnswerRule(), source, self.CATALOGUE) == []

    def test_flags_extended_scene_without_expectation(self):
        source = "s = ExtendedScene(scene_id='E1', action=a)\n"
        found = findings(
            ScenarioAnswerRule(),
            source,
            "src/repro/core/extended_scenarios.py",
        )
        assert [f.code for f in found] == ["REPRO102"]

    def test_rule_scoped_to_catalogue_files(self):
        source = "s = Scenario(number=1, action=a)\n"
        assert findings(ScenarioAnswerRule(), source) == []


class TestDeterminism:
    NETSIM = "src/repro/netsim/example.py"

    @pytest.mark.parametrize(
        "call",
        [
            "time.time()",
            "datetime.datetime.now()",
            "random.random()",
            "random.randint(0, 9)",
            "np.random.rand(3)",
        ],
    )
    def test_flags_ambient_entropy(self, call):
        found = findings(DeterminismRule(), f"x = {call}\n", self.NETSIM)
        assert [f.code for f in found] == ["REPRO103"]

    @pytest.mark.parametrize(
        "call",
        [
            "random.Random(0)",
            "np.random.default_rng(7)",
            "self._rng.random()",
        ],
    )
    def test_accepts_seeded_generators(self, call):
        assert findings(DeterminismRule(), f"x = {call}\n", self.NETSIM) == []

    def test_rule_scoped_to_deterministic_subsystems(self):
        source = "x = time.time()\n"
        assert (
            findings(DeterminismRule(), source, "src/repro/workloads.py")
            == []
        )


class TestEmptyIterableExtremum:
    def test_flags_bare_max_over_iterable(self):
        source = "def f(xs):\n    return max(xs)\n"
        found = findings(EmptyIterableExtremumRule(), source)
        assert [f.code for f in found] == ["REPRO104"]

    def test_accepts_default_keyword(self):
        source = "def f(xs):\n    return max(xs, default=None)\n"
        assert findings(EmptyIterableExtremumRule(), source) == []

    def test_accepts_two_argument_form(self):
        source = "def f(a, b):\n    return min(a, b)\n"
        assert findings(EmptyIterableExtremumRule(), source) == []

    def test_accepts_guarded_call(self):
        source = (
            "def f(xs):\n"
            "    if not xs:\n"
            "        return None\n"
            "    return max(x.v for x in xs)\n"
        )
        assert findings(EmptyIterableExtremumRule(), source) == []

    def test_guard_must_precede_the_call(self):
        source = (
            "def f(xs):\n"
            "    worst = max(xs)\n"
            "    if not xs:\n"
            "        return None\n"
            "    return worst\n"
        )
        found = findings(EmptyIterableExtremumRule(), source)
        assert [f.code for f in found] == ["REPRO104"]


class TestEnumDispatch:
    def test_flags_partial_process_kind_dict(self):
        source = (
            "table = {\n"
            "    ProcessKind.NONE: 0,\n"
            "    ProcessKind.SUBPOENA: 1,\n"
            "}\n"
        )
        found = findings(EnumDispatchRule(), source)
        assert [f.code for f in found] == ["REPRO105"]
        assert "WIRETAP_ORDER" in found[0].message

    def test_accepts_exhaustive_admissibility_dict(self):
        source = (
            "table = {\n"
            "    Admissibility.ADMISSIBLE: 1,\n"
            "    Admissibility.SUPPRESSED: 2,\n"
            "    Admissibility.SUPPRESSED_DERIVATIVE: 3,\n"
            "}\n"
        )
        assert findings(EnumDispatchRule(), source) == []

    def test_flags_partial_match_without_wildcard(self):
        source = (
            "def f(kind):\n"
            "    match kind:\n"
            "        case Admissibility.ADMISSIBLE:\n"
            "            return 1\n"
            "        case Admissibility.SUPPRESSED:\n"
            "            return 2\n"
        )
        found = findings(EnumDispatchRule(), source)
        assert [f.code for f in found] == ["REPRO105"]

    def test_accepts_match_with_wildcard(self):
        source = (
            "def f(kind):\n"
            "    match kind:\n"
            "        case Admissibility.ADMISSIBLE:\n"
            "            return 1\n"
            "        case _:\n"
            "            return 0\n"
        )
        assert findings(EnumDispatchRule(), source) == []

    def test_ignores_dicts_over_other_enums(self):
        source = "table = {Color.RED: 1, Color.BLUE: 2}\n"
        assert findings(EnumDispatchRule(), source) == []


class TestMutableDefault:
    def test_flags_list_default(self):
        source = "def f(x, seen=[]):\n    return seen\n"
        found = findings(MutableDefaultRule(), source)
        assert [f.code for f in found] == ["REPRO106"]

    def test_flags_dict_constructor_default(self):
        source = "def f(x, cache=dict()):\n    return cache\n"
        found = findings(MutableDefaultRule(), source)
        assert [f.code for f in found] == ["REPRO106"]

    def test_accepts_none_default(self):
        source = "def f(x, seen=None):\n    return seen or []\n"
        assert findings(MutableDefaultRule(), source) == []

    def test_accepts_frozen_defaults(self):
        source = "def f(x, pair=(), label=''):\n    return pair\n"
        assert findings(MutableDefaultRule(), source) == []


TECHNIQUE_PATH = "src/repro/techniques/example.py"


class TestFaultSwallow:
    def test_flags_swallowed_fault_in_detect(self):
        source = (
            "def detect(self, arrivals):\n"
            "    try:\n"
            "        data = read(arrivals)\n"
            "    except FaultError:\n"
            "        data = []\n"
            "    return Result(data)\n"
        )
        found = findings(FaultSwallowRule(), source, TECHNIQUE_PATH)
        assert [f.code for f in found] == ["REPRO107"]
        assert "detect" in found[0].message

    def test_flags_fault_subclasses_and_tuples(self):
        source = (
            "def run(self):\n"
            "    try:\n"
            "        step()\n"
            "    except (StorageFault, TransientReadError):\n"
            "        pass\n"
        )
        found = findings(FaultSwallowRule(), source, TECHNIQUE_PATH)
        assert len(found) == 1

    def test_accepts_reraise(self):
        source = (
            "def run(self):\n"
            "    try:\n"
            "        step()\n"
            "    except FaultError:\n"
            "        raise\n"
        )
        assert findings(FaultSwallowRule(), source, TECHNIQUE_PATH) == []

    def test_accepts_confidence_degradation(self):
        source = (
            "def correlate(self, a, b):\n"
            "    confidence = 1.0\n"
            "    try:\n"
            "        data = read(a)\n"
            "    except FaultError:\n"
            "        data, confidence = [], 0.5\n"
            "    return Result(data, confidence=confidence)\n"
        )
        assert findings(FaultSwallowRule(), source, TECHNIQUE_PATH) == []

    def test_accepts_custody_recording(self):
        source = (
            "def investigate(self, custody):\n"
            "    try:\n"
            "        acquire()\n"
            "    except CourtFault as fault:\n"
            "        custody.record_event(str(fault))\n"
        )
        assert findings(FaultSwallowRule(), source, TECHNIQUE_PATH) == []

    def test_ignores_non_fault_exceptions(self):
        source = (
            "def run(self):\n"
            "    try:\n"
            "        step()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert findings(FaultSwallowRule(), source, TECHNIQUE_PATH) == []

    def test_ignores_helpers_outside_entry_points(self):
        source = (
            "def _load(self):\n"
            "    try:\n"
            "        step()\n"
            "    except FaultError:\n"
            "        pass\n"
        )
        assert findings(FaultSwallowRule(), source, TECHNIQUE_PATH) == []

    def test_only_applies_to_techniques(self):
        source = (
            "def run(self):\n"
            "    try:\n"
            "        step()\n"
            "    except FaultError:\n"
            "        pass\n"
        )
        assert (
            findings(FaultSwallowRule(), source, "src/repro/netsim/link.py")
            == []
        )


class TestFloatSweep:
    def test_flags_offset_accumulation_sweep(self):
        source = (
            "def detect(self, arrival_times, start, max_offset, step):\n"
            "    offset = 0.0\n"
            "    while offset <= max_offset:\n"
            "        scan(arrival_times, start + offset)\n"
            "        offset += step\n"
        )
        found = findings(FloatSweepRule(), source, TECHNIQUE_PATH)
        assert len(found) == 1
        assert found[0].code == "REPRO108"
        assert "float" in found[0].message
        assert "offset_grid" in found[0].fix_it

    def test_flags_strict_less_than_sweep(self):
        source = (
            "def correlate(self, bound):\n"
            "    delay = 0.0\n"
            "    while delay < bound:\n"
            "        probe(delay)\n"
            "        delay += self.offset_step\n"
        )
        found = findings(FloatSweepRule(), source, TECHNIQUE_PATH)
        assert len(found) == 1

    def test_exempts_reference_twins(self):
        source = (
            "def _reference_detect(detector, times, start, bound, step):\n"
            "    offset = 0.0\n"
            "    while offset <= bound:\n"
            "        detector.correlate(times, start, offset)\n"
            "        offset += step\n"
        )
        assert findings(FloatSweepRule(), source, TECHNIQUE_PATH) == []

    def test_exempts_arrival_process_increments(self):
        source = (
            "def embed(self, channel, start):\n"
            "    t = start\n"
            "    while t < self.end:\n"
            "        channel.send(t)\n"
            "        t += self._rng.expovariate(self.rate)\n"
        )
        assert findings(FloatSweepRule(), source, TECHNIQUE_PATH) == []

    def test_exempts_integer_counters(self):
        source = (
            "def detect(self, n):\n"
            "    index = 0\n"
            "    while index < n:\n"
            "        step(index)\n"
            "        index += 1\n"
        )
        assert findings(FloatSweepRule(), source, TECHNIQUE_PATH) == []

    def test_only_applies_to_techniques(self):
        source = (
            "def detect(self, bound, step):\n"
            "    offset = 0.0\n"
            "    while offset <= bound:\n"
            "        offset += step\n"
        )
        assert (
            findings(FloatSweepRule(), source, "src/repro/netsim/link.py")
            == []
        )


class TestTelemetryChannel:
    def test_flags_bare_print(self):
        source = (
            "def evaluate(self, action):\n"
            "    print('evaluating', action)\n"
        )
        found = findings(TelemetryChannelRule(), source)
        assert len(found) == 1
        assert found[0].code == "REPRO109"
        assert "print" in found[0].message
        assert "repro.obs" in found[0].fix_it

    def test_flags_ad_hoc_wall_clock_timing(self):
        source = (
            "import time\n"
            "def evaluate(self, action):\n"
            "    start = time.perf_counter()\n"
            "    rule(action)\n"
            "    elapsed = time.perf_counter() - start\n"
        )
        found = findings(TelemetryChannelRule(), source)
        assert len(found) == 2
        assert {f.code for f in found} == {"REPRO109"}
        assert "perf_counter" in found[0].message

    def test_flags_time_time(self):
        source = "stamp = time.time()\n"
        found = findings(TelemetryChannelRule(), source)
        assert [f.code for f in found] == ["REPRO109"]

    def test_accepts_span_usage(self):
        source = (
            "from repro import obs\n"
            "def evaluate(self, action):\n"
            "    with obs.span('engine.evaluate'):\n"
            "        return rule(action)\n"
        )
        assert findings(TelemetryChannelRule(), source) == []

    def test_accepts_non_timing_time_attrs(self):
        source = "zone = time.tzname\nsleepy = time.sleep(0.1)\n"
        assert findings(TelemetryChannelRule(), source) == []

    def test_allowlists_cli_and_bench(self):
        source = "print('Scene 18')\nstart = time.perf_counter()\n"
        for path in (
            "src/repro/cli.py",
            "src/repro/__main__.py",
            "src/repro/bench.py",
            "src/repro/bench_techniques.py",
        ):
            assert findings(TelemetryChannelRule(), source, path) == []

    def test_allowlists_the_obs_package(self):
        source = "now = time.perf_counter()\n"
        path = "src/repro/obs/tracing.py"
        assert findings(TelemetryChannelRule(), source, path) == []

    def test_only_applies_inside_repro(self):
        source = "print('hello')\n"
        assert (
            findings(TelemetryChannelRule(), source, "scripts/tool.py")
            == []
        )
