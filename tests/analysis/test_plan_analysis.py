"""Static plan analysis: Table 1 reproduction and cross-step checks."""

import pytest

from repro.analysis import (
    Plan,
    PlanAnalyzer,
    PlanStep,
    forfeited_consent_plan,
    plan_from_scenario,
    plan_from_scene_number,
    plan_from_technique,
    tainted_downstream_plan,
)
from repro.analysis.diagnostics import Severity
from repro.core import ComplianceEngine, build_table1
from repro.core.enums import ProcessKind
from repro.techniques import PacketCountingCorrelator


@pytest.fixture(scope="module")
def analyzer():
    return PlanAnalyzer(ComplianceEngine())


class TestTable1Static:
    def test_all_twenty_scenes_reproduce_paper_answers(self, analyzer):
        for scenario in build_table1():
            report = analyzer.analyze(plan_from_scenario(scenario))
            needs = report.required_process is not ProcessKind.NONE
            assert needs == scenario.paper_needs_process, (
                f"scene {scenario.number}: static analysis says "
                f"{report.required_process}, paper says "
                f"{scenario.paper_answer}"
            )

    def test_scene_with_adequate_instrument_passes(self, analyzer):
        plan = plan_from_scene_number(
            18, instruments=(ProcessKind.SEARCH_WARRANT,)
        )
        report = analyzer.analyze(plan)
        assert report.ok

    def test_scene_without_instrument_gets_fix_it(self, analyzer):
        report = analyzer.analyze(plan_from_scene_number(18))
        shortfalls = [
            d for d in report.diagnostics if d.code == "PLAN001"
        ]
        assert len(shortfalls) == 1
        assert shortfalls[0].fix_it == (
            "obtain a search warrant before step 1"
        )
        assert shortfalls[0].authorities  # statute/case citations attach

    def test_unknown_scene_number_raises(self):
        with pytest.raises(KeyError):
            plan_from_scene_number(21)


class TestTaintPropagation:
    def test_engine_alone_passes_the_downstream_step(self, analyzer):
        plan = tainted_downstream_plan()
        report = analyzer.analyze(plan)
        # Judged per-action, step 2 needs only the subpoena the plan holds.
        assert report.rulings[1].required_process is ProcessKind.SUBPOENA
        assert plan.held_process.satisfies(
            report.rulings[1].required_process
        )

    def test_plan_checker_flags_the_downstream_step(self, analyzer):
        report = analyzer.analyze(tainted_downstream_plan())
        fruit = [d for d in report.diagnostics if d.code == "PLAN003"]
        assert len(fruit) == 1
        assert fruit[0].step == 2
        assert "wong_sun" in fruit[0].authorities
        assert not report.ok

    def test_taint_propagates_transitively(self, analyzer):
        base = tainted_downstream_plan()
        third = PlanStep(
            action=base.steps[1].action, uses=(2,), note="derived again"
        )
        plan = Plan(
            name="three-step chain",
            steps=base.steps + (third,),
            instruments=base.instruments,
        )
        report = analyzer.analyze(plan)
        fruit_steps = {
            d.step for d in report.diagnostics if d.code == "PLAN003"
        }
        assert fruit_steps == {2, 3}

    def test_curing_the_root_clears_the_taint(self, analyzer):
        cured = Plan(
            name="cured",
            steps=tainted_downstream_plan().steps,
            instruments=(ProcessKind.WIRETAP_ORDER,),
        )
        report = analyzer.analyze(cured)
        assert [d for d in report.diagnostics if d.code == "PLAN003"] == []
        assert report.ok


class TestForfeitedConsent:
    def test_revoked_consent_cannot_be_revived_downstream(self, analyzer):
        report = analyzer.analyze(forfeited_consent_plan())
        forfeited = [
            d for d in report.diagnostics if d.code == "PLAN002"
        ]
        assert len(forfeited) == 1
        assert forfeited[0].step == 2
        assert "megahed" in forfeited[0].authorities

    def test_second_step_alone_satisfies_the_engine(self, analyzer):
        report = analyzer.analyze(forfeited_consent_plan())
        # The per-action engine sees an effective consent at step 2.
        assert report.rulings[1].required_process is ProcessKind.NONE


class TestPlanIr:
    def test_forward_evidence_edges_rejected(self):
        step = PlanStep(
            action=tainted_downstream_plan().steps[0].action, uses=(2,)
        )
        with pytest.raises(ValueError, match="not an earlier step"):
            Plan(name="bad", steps=(step,))

    def test_technique_plans_chain_their_steps(self, analyzer):
        plan = plan_from_technique(PacketCountingCorrelator())
        assert len(plan.steps) >= 1
        for number, step in enumerate(plan.steps, 1):
            assert step.uses == ((number - 1,) if number > 1 else ())
        report = analyzer.analyze(plan)
        assert report.required_process is not ProcessKind.NONE

    def test_overprocess_noted_not_errored(self, analyzer):
        plan = plan_from_scene_number(
            11, instruments=(ProcessKind.WIRETAP_ORDER,)
        )  # scene 11 is a public website: no process needed
        report = analyzer.analyze(plan)
        notes = [d for d in report.diagnostics if d.code == "PLAN004"]
        assert len(notes) == 1
        assert notes[0].severity is Severity.NOTE
        assert report.ok
