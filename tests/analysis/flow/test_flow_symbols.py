"""Symbol table scoping rules and project-level call resolution."""

import ast

from repro.analysis.flow import BindingKind, Project, ScopedSymbolTable
from repro.analysis.pylint_rules.base import ModuleUnderLint


def table_of(source: str) -> tuple[ScopedSymbolTable, ast.Module]:
    tree = ast.parse(source)
    return ScopedSymbolTable(tree), tree


def find_call(tree: ast.Module, name: str) -> ast.Call:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == name:
                return node
            if isinstance(func, ast.Attribute):
                base = func.value
                if isinstance(base, ast.Name) and base.id == name:
                    return node
    raise AssertionError(f"no call involving {name!r}")


class TestBindings:
    def test_import_alias_binds_alias_with_module(self):
        table, tree = table_of("import time as clock\nclock.time()\n")
        call = find_call(tree, "clock")
        binding = table.resolve("clock", within=call.func)
        assert binding is not None
        assert binding.kind is BindingKind.IMPORT
        assert binding.module == "time"

    def test_from_import_records_origin(self):
        table, _ = table_of("from time import perf_counter as pc\n")
        binding = table.resolve("pc")
        assert binding is not None
        assert binding.kind is BindingKind.FROM_IMPORT
        assert (binding.module, binding.origin) == ("time", "perf_counter")

    def test_parameter_shadows_module_binding(self):
        table, tree = table_of(
            "import time\n"
            "def f(time):\n"
            "    return time.time()\n"
        )
        call = find_call(tree, "time")
        binding = table.resolve("time", within=call.func)
        assert binding is not None
        assert binding.kind is BindingKind.PARAMETER

    def test_local_assignment_shadows_builtin(self):
        table, tree = table_of(
            "def f():\n"
            "    print = collect\n"
            "    print('x')\n"
        )
        call = find_call(tree, "print")
        binding = table.resolve("print", within=call)
        assert binding is not None
        assert binding.kind is BindingKind.ASSIGNMENT

    def test_unbound_name_resolves_to_none(self):
        table, tree = table_of("def f():\n    print('x')\n")
        call = find_call(tree, "print")
        assert table.resolve("print", within=call) is None


class TestScopingRules:
    def test_method_does_not_see_class_body_names(self):
        table, tree = table_of(
            "class C:\n"
            "    helper = object()\n"
            "    def m(self):\n"
            "        return helper\n"
        )
        method = tree.body[0].body[1]
        use = method.body[0].value
        assert table.resolve("helper", within=use) is None

    def test_class_body_sees_its_own_names(self):
        table, tree = table_of(
            "class C:\n"
            "    helper = object()\n"
            "    other = helper\n"
        )
        use = tree.body[0].body[1].value
        binding = table.resolve("helper", within=use)
        assert binding is not None

    def test_comprehension_target_stays_inside(self):
        table, tree = table_of(
            "def f(xs):\n"
            "    ys = [x for x in xs]\n"
            "    return x\n"
        )
        trailing = tree.body[0].body[1].value
        assert table.resolve("x", within=trailing) is None

    def test_nested_function_sees_enclosing_function_names(self):
        table, tree = table_of(
            "def outer():\n"
            "    secret = 1\n"
            "    def inner():\n"
            "        return secret\n"
        )
        inner = tree.body[0].body[1]
        use = inner.body[0].value
        binding = table.resolve("secret", within=use)
        assert binding is not None
        assert binding.kind is BindingKind.ASSIGNMENT

    def test_walrus_binds_in_enclosing_scope(self):
        table, tree = table_of(
            "def f(xs):\n"
            "    if (n := len(xs)) > 3:\n"
            "        pass\n"
            "    return n\n"
        )
        trailing = tree.body[0].body[1].value
        assert table.resolve("n", within=trailing) is not None


def project_of(*sources: tuple[str, str]) -> Project:
    return Project(
        [
            ModuleUnderLint(
                path=path, tree=ast.parse(source), source=source
            )
            for path, source in sources
        ]
    )


class TestCallResolution:
    def test_bare_name_resolves_to_local_def(self):
        project = project_of(
            (
                "a.py",
                "def helper():\n    pass\n"
                "def caller():\n    helper()\n",
            )
        )
        module = project.modules[0]
        call = find_call(module.tree, "helper")
        [target] = project.resolve_call(module, call)
        assert target.qualname == "helper"

    def test_from_import_resolves_across_modules(self):
        project = project_of(
            ("lib.py", "def shared():\n    pass\n"),
            (
                "app.py",
                "from lib import shared\n"
                "def caller():\n    shared()\n",
            ),
        )
        app = project.modules[1]
        call = find_call(app.tree, "shared")
        [target] = project.resolve_call(app, call)
        assert target.module.path == "lib.py"

    def test_unique_method_name_resolves(self):
        project = project_of(
            (
                "a.py",
                "class C:\n"
                "    def unique_method(self):\n"
                "        pass\n"
                "def caller(c):\n    c.unique_method()\n",
            )
        )
        module = project.modules[0]
        call = find_call(module.tree, "c")
        [target] = project.resolve_call(module, call)
        assert target.qualname == "C.unique_method"

    def test_ambiguous_method_name_resolves_to_nothing(self):
        project = project_of(
            (
                "a.py",
                "class C:\n"
                "    def act(self):\n"
                "        pass\n"
                "class D:\n"
                "    def act(self):\n"
                "        pass\n"
                "def caller(c):\n    c.act()\n",
            )
        )
        module = project.modules[0]
        call = find_call(module.tree, "c")
        assert project.resolve_call(module, call) == []

    def test_nested_function_is_indexed_with_qualname(self):
        project = project_of(
            (
                "a.py",
                "def outer():\n"
                "    def attempt():\n"
                "        pass\n"
                "    attempt()\n",
            )
        )
        module = project.modules[0]
        call = find_call(module.tree, "attempt")
        [target] = project.resolve_call(module, call)
        assert target.qualname == "outer.attempt"
