"""CFG construction: golden renderings and structural invariants."""

import ast

import pytest

from repro.analysis.flow import build_cfg, render_cfg
from repro.analysis.flow.cfg import iter_element_nodes


def cfg_of(source: str):
    tree = ast.parse(source)
    function = tree.body[0]
    assert isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(function)


class TestGoldenRenderings:
    """Pinned shapes for the trickiest constructs."""

    def test_try_finally_with_return(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    try:\n"
            "        if x:\n"
            "            return 1\n"
            "        step()\n"
            "    finally:\n"
            "        cleanup()\n"
            "    after()\n"
        )
        assert render_cfg(cfg) == (
            "b0[entry] -> b2\n"
            "b1[finally] L7:cleanup() -> b6, b7\n"
            "b2[try] L3:x -> b3, b5\n"
            "b3[then] L4:return 1 -> b1\n"
            "b5[after-if] L5:step() -> b1\n"
            "b6[after-try] L8:after() -> b7\n"
            "b7[exit]"
        )

    def test_while_else_break(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    while xs:\n"
            "        if bad(xs):\n"
            "            break\n"
            "        xs = step(xs)\n"
            "    else:\n"
            "        only_on_normal_exit()\n"
            "    after()\n"
        )
        assert render_cfg(cfg) == (
            "b0[entry] -> b1\n"
            "b1[loop-head] L2:xs -> b2, b6\n"
            "b2[loop-body] L3:bad(xs) -> b3, b5\n"
            "b3[then] L4:break -> b7\n"
            "b5[after-if] L5:xs = step(xs) -> b1\n"
            "b6[loop-else] L7:only_on_normal_exit() -> b7\n"
            "b7[after-loop] L8:after() -> b8\n"
            "b8[exit]"
        )

    def test_nested_with(self):
        cfg = cfg_of(
            "def f():\n"
            "    with open('a') as a:\n"
            "        with open('b') as b:\n"
            "            use(a, b)\n"
            "    after()\n"
        )
        assert render_cfg(cfg) == (
            "b0[entry] L2:open('a'); L2:a -> b1\n"
            "b1[with-body] L3:open('b'); L3:b -> b2\n"
            "b2[with-body] L4:use(a, b) -> b3\n"
            "b3[after-with] -> b4\n"
            "b4[after-with] L5:after() -> b5\n"
            "b5[exit]"
        )


class TestStructure:
    def test_if_else_joins(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a()\n"
            "    else:\n"
            "        b()\n"
            "    c()\n"
        )
        joins = [b for b in cfg.reachable_blocks() if b.label == "after-if"]
        assert len(joins) == 1
        assert sorted(joins[0].predecessors) == [1, 2]

    def test_try_body_has_edges_to_every_handler(self):
        cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except ValueError:\n"
            "        a()\n"
            "    except KeyError:\n"
            "        b()\n"
        )
        try_blocks = [
            b for b in cfg.reachable_blocks() if b.label == "try"
        ]
        handlers = sorted(
            b.index for b in cfg.blocks if b.label == "except"
        )
        assert len(handlers) == 2
        for block in try_blocks:
            assert set(handlers) <= set(block.successors)

    def test_raise_without_try_exits(self):
        cfg = cfg_of("def f():\n    raise ValueError('x')\n")
        raisers = [
            b
            for b in cfg.reachable_blocks()
            if any(isinstance(e, ast.Raise) for e in b.elements)
        ]
        assert raisers and all(
            cfg.exit in b.successors for b in raisers
        )

    def test_for_else_runs_only_from_head(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        use(x)\n"
            "    else:\n"
            "        done()\n"
        )
        else_blocks = [
            b for b in cfg.reachable_blocks() if b.label == "loop-else"
        ]
        heads = [
            b.index for b in cfg.reachable_blocks() if b.label == "loop-head"
        ]
        assert len(else_blocks) == 1
        assert else_blocks[0].predecessors == heads

    def test_match_without_wildcard_falls_through(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    match x:\n"
            "        case 1:\n"
            "            a()\n"
            "    after()\n"
        )
        after = [
            b for b in cfg.reachable_blocks() if b.label == "after-match"
        ][0]
        # Both the subject block and the case body reach the join.
        assert len(after.predecessors) == 2

    def test_match_with_wildcard_does_not_fall_through(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    match x:\n"
            "        case 1:\n"
            "            a()\n"
            "        case _:\n"
            "            b()\n"
            "    after()\n"
        )
        after = [
            b for b in cfg.reachable_blocks() if b.label == "after-match"
        ][0]
        case_blocks = {
            b.index for b in cfg.reachable_blocks() if b.label == "case"
        }
        assert set(after.predecessors) <= case_blocks

    @pytest.mark.parametrize(
        "source",
        [
            "def f(x):\n    if x:\n        a()\n    b()\n",
            "def f(xs):\n    for x in xs:\n        use(x)\n",
            "def f():\n    try:\n        a()\n    except E:\n        b()\n"
            "    finally:\n        c()\n",
            "def f():\n    while True:\n        if q():\n            break\n",
            "def f():\n    return 1\n",
        ],
    )
    def test_exit_is_reachable_and_terminal(self, source):
        cfg = cfg_of(source)
        assert cfg.exit in cfg.reachable
        assert cfg.blocks[cfg.exit].successors == []

    def test_predecessors_mirror_successors(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    try:\n"
            "        while x:\n"
            "            x = step(x)\n"
            "    except E:\n"
            "        pass\n"
        )
        for block in cfg.blocks:
            for successor in block.successors:
                assert block.index in cfg.blocks[successor].predecessors
            for predecessor in block.predecessors:
                assert block.index in cfg.blocks[predecessor].successors


class TestElementWalk:
    def test_nested_function_bodies_are_opaque(self):
        tree = ast.parse(
            "def outer():\n"
            "    def inner():\n"
            "        hidden()\n"
            "    visible()\n"
        )
        function = tree.body[0]
        cfg = build_cfg(function)
        names = {
            node.func.id
            for block in cfg.reachable_blocks()
            for element in block.elements
            for node in iter_element_nodes(element)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
        }
        assert "visible" in names
        assert "hidden" not in names
