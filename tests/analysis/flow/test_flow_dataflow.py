"""The worklist solver and the must-pass analyses built on it."""

import ast

from repro.analysis.flow import (
    Direction,
    build_cfg,
    find_unguarded_path,
    must_pass_positions,
    solve,
)
from repro.analysis.flow.cfg import iter_element_nodes
from repro.analysis.flow.dataflow import all_paths_cross


def cfg_of(source: str):
    return build_cfg(ast.parse(source).body[0])


def is_call_to(name):
    def predicate(element):
        return any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == name
            for node in iter_element_nodes(element)
        )

    return predicate


def positions_of(cfg, name):
    found = []
    for block in cfg.reachable_blocks():
        for index, element in enumerate(block.elements):
            if is_call_to(name)(element):
                found.append((block.index, index))
    return found


class TestMustPass:
    def test_gate_on_only_one_branch_is_not_must(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        gate()\n"
            "    target()\n"
        )
        gated = must_pass_positions(cfg, is_call_to("gate"))
        [position] = positions_of(cfg, "target")
        assert gated[position] is False

    def test_gate_on_both_branches_is_must(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        gate()\n"
            "    else:\n"
            "        gate()\n"
            "    target()\n"
        )
        gated = must_pass_positions(cfg, is_call_to("gate"))
        [position] = positions_of(cfg, "target")
        assert gated[position] is True

    def test_gate_before_loop_covers_body(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    gate()\n"
            "    for x in xs:\n"
            "        target()\n"
        )
        gated = must_pass_positions(cfg, is_call_to("gate"))
        [position] = positions_of(cfg, "target")
        assert gated[position] is True

    def test_gate_later_in_same_block_does_not_count(self):
        cfg = cfg_of("def f():\n    target()\n    gate()\n")
        gated = must_pass_positions(cfg, is_call_to("gate"))
        [position] = positions_of(cfg, "target")
        assert gated[position] is False

    def test_try_handler_path_can_bypass_gate(self):
        # The gate sits after the risky call; an exception can jump to
        # the handler before it executes, so the handler's target is
        # not covered.
        cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "        gate()\n"
            "    except Error:\n"
            "        target()\n"
        )
        gated = must_pass_positions(cfg, is_call_to("gate"))
        [position] = positions_of(cfg, "target")
        assert gated[position] is False


class TestUnguardedPath:
    def test_path_goes_through_ungated_branch(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        gate()\n"
            "    else:\n"
            "        nothing()\n"
            "    target()\n"
        )
        [(block, index)] = positions_of(cfg, "target")
        path = find_unguarded_path(cfg, block, index, is_call_to("gate"))
        assert path is not None
        labels = [cfg.blocks[i].label for i in path]
        assert "else" in labels and "then" not in labels

    def test_no_path_when_fully_gated(self):
        cfg = cfg_of("def f():\n    gate()\n    target()\n")
        [(block, index)] = positions_of(cfg, "target")
        assert (
            find_unguarded_path(cfg, block, index, is_call_to("gate"))
            is None
        )


class TestAllPathsCross:
    def test_unconditional_barrier(self):
        cfg = cfg_of("def f():\n    gate()\n    other()\n")
        assert all_paths_cross(cfg, is_call_to("gate")) is True

    def test_conditional_barrier(self):
        cfg = cfg_of("def f(x):\n    if x:\n        gate()\n")
        assert all_paths_cross(cfg, is_call_to("gate")) is False

    def test_raise_counts_as_its_own_path(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        raise Error()\n"
            "    gate()\n"
        )
        # The raising path never crosses the gate, but it does cross
        # the raise; with the barrier being either, all paths cross.
        barrier = lambda e: is_call_to("gate")(e) or any(  # noqa: E731
            isinstance(n, ast.Raise) for n in iter_element_nodes(e)
        )
        assert all_paths_cross(cfg, barrier) is True
        assert all_paths_cross(cfg, is_call_to("gate")) is False


class TestGenericSolver:
    def test_forward_reaching_gate_names(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a()\n"
            "    else:\n"
            "        b()\n"
            "    join()\n"
        )

        def transfer(block, fact):
            names = {
                node.func.id
                for element in cfg.blocks[block].elements
                for node in iter_element_nodes(element)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
            }
            return fact | names

        solution = solve(
            cfg,
            boundary=frozenset(),
            top=frozenset(),
            transfer=transfer,
            join=lambda p, q: p | q,
        )
        assert {"a", "b", "join"} <= solution[cfg.exit][1]

    def test_backward_live_names(self):
        cfg = cfg_of("def f():\n    use(x)\n")

        def transfer(block, fact):
            reads = {
                node.id
                for element in cfg.blocks[block].elements
                for node in iter_element_nodes(element)
                if isinstance(node, ast.Name)
            }
            return fact | reads

        solution = solve(
            cfg,
            boundary=frozenset(),
            top=frozenset(),
            transfer=transfer,
            join=lambda p, q: p | q,
            direction=Direction.BACKWARD,
        )
        assert "x" in solution[cfg.entry][1]
