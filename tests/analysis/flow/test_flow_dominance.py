"""Dominance: differential against a naive fixpoint, plus properties."""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.flow import (
    back_edges,
    build_cfg,
    dominator_sets,
    dominator_tree_children,
    immediate_dominators,
    natural_loop,
)
from repro.analysis.flow.cfg import Cfg, CfgBlock


def synthetic_cfg(n_blocks: int, edges: list[tuple[int, int]]) -> Cfg:
    """A CFG with the given shape; block 0 is entry, n-1 is exit."""
    blocks = [CfgBlock(index=i, label=f"b{i}") for i in range(n_blocks)]
    for a, b in edges:
        if b not in blocks[a].successors:
            blocks[a].successors.append(b)
            blocks[b].predecessors.append(a)
    seen: set[int] = set()
    stack = [0]
    while stack:
        index = stack.pop()
        if index in seen:
            continue
        seen.add(index)
        stack.extend(blocks[index].successors)
    return Cfg(
        blocks=blocks,
        entry=0,
        exit=n_blocks - 1,
        reachable=frozenset(seen),
    )


def naive_dominator_sets(cfg: Cfg) -> dict[int, frozenset[int]]:
    """Textbook O(n^2) dataflow: dom(b) = {b} | AND over preds."""
    reachable = sorted(cfg.reachable)
    everything = frozenset(reachable)
    doms = {b: everything for b in reachable}
    doms[cfg.entry] = frozenset({cfg.entry})
    changed = True
    while changed:
        changed = False
        for block in reachable:
            if block == cfg.entry:
                continue
            predecessors = [
                p
                for p in cfg.blocks[block].predecessors
                if p in cfg.reachable
            ]
            if not predecessors:
                continue
            merged = everything
            for predecessor in predecessors:
                merged &= doms[predecessor]
            updated = merged | {block}
            if updated != doms[block]:
                doms[block] = updated
                changed = True
    return doms


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    possible = [
        (a, b) for a in range(n) for b in range(n) if a != b
    ]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=4 * n, unique=True)
    )
    # Guarantee a spine so most blocks are reachable.
    edges.extend((i, i + 1) for i in range(n - 1))
    return synthetic_cfg(n, edges)


class TestDifferential:
    @given(random_graphs())
    @settings(max_examples=200, deadline=None)
    def test_chk_matches_naive_dominators(self, cfg):
        assert dominator_sets(cfg) == naive_dominator_sets(cfg)

    @given(random_graphs())
    @settings(max_examples=200, deadline=None)
    def test_idom_is_unique_and_tree_is_acyclic(self, cfg):
        idom = immediate_dominators(cfg)
        assert idom[cfg.entry] is None
        # Every reachable block (entry aside) has exactly one idom, and
        # walking idoms always terminates at the entry: a tree, no cycle.
        for block in cfg.reachable:
            current = block
            hops = 0
            while idom[current] is not None:
                current = idom[current]
                hops += 1
                assert hops <= len(cfg.blocks)
            assert current == cfg.entry

    @given(random_graphs())
    @settings(max_examples=100, deadline=None)
    def test_tree_children_partition_non_entry_blocks(self, cfg):
        idom = immediate_dominators(cfg)
        children = dominator_tree_children(idom)
        listed = [c for kids in children.values() for c in kids]
        assert sorted(listed) == sorted(
            b for b in idom if idom[b] is not None
        )


class TestOnRealFunctions:
    def test_loop_head_dominates_body(self):
        cfg = build_cfg(
            ast.parse(
                "def f(xs):\n"
                "    total = 0\n"
                "    for x in xs:\n"
                "        total += x\n"
                "    return total\n"
            ).body[0]
        )
        (tail, head) = back_edges(cfg)[0]
        doms = dominator_sets(cfg)
        assert head in doms[tail]

    def test_natural_loop_contains_head_and_tail_only_loop_blocks(self):
        cfg = build_cfg(
            ast.parse(
                "def f(x):\n"
                "    pre()\n"
                "    while x:\n"
                "        x = step(x)\n"
                "    post()\n"
            ).body[0]
        )
        (tail, head) = back_edges(cfg)[0]
        loop = natural_loop(cfg, tail, head)
        labels = {cfg.blocks[i].label for i in loop}
        assert labels == {"loop-head", "loop-body"}

    def test_straight_line_has_no_back_edges(self):
        cfg = build_cfg(
            ast.parse("def f():\n    a()\n    b()\n").body[0]
        )
        assert back_edges(cfg) == []
