"""CLI surface of the static analyzer: exit codes and output shape."""

import pathlib

from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


class TestLintCommand:
    def test_lints_clean_on_the_repo(self, capsys):
        assert main(["lint"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_nonzero_on_seeded_violations(self, capsys):
        bad = str(FIXTURES / "bad_module.py")
        assert main(["lint", bad]) == 1
        out = capsys.readouterr().out
        assert "REPRO101" in out  # nameless technique
        assert "REPRO104" in out  # bare max()
        assert "REPRO105" in out  # partial enum dict
        assert "REPRO106" in out  # mutable default

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REPRO101", "REPRO106"):
            assert code in out


class TestAnalyzePlanCommand:
    def test_table1_reproduces_statically(self, capsys):
        assert main(["analyze-plan", "table1"]) == 0
        out = capsys.readouterr().out
        assert "20/20 scenes reproduce the paper's answer" in out

    def test_scene_with_declared_process_passes(self, capsys):
        assert (
            main(["analyze-plan", "18", "--with-process", "warrant"]) == 0
        )
        assert "no findings" in capsys.readouterr().out

    def test_tainted_demo_fails_with_fruit_finding(self, capsys):
        assert main(["analyze-plan", "tainted-downstream"]) == 1
        out = capsys.readouterr().out
        assert "PLAN003" in out
        assert "fruit of the poisonous tree" in out

    def test_technique_target(self, capsys):
        assert main(["analyze-plan", "watermark"]) == 1
        out = capsys.readouterr().out
        assert "PLAN001" in out
        assert "fix: obtain a" in out

    def test_unknown_target_lists_choices(self, capsys):
        assert main(["analyze-plan", "no-such-plan"]) == 1
        assert "choose from" in capsys.readouterr().out
