"""Mutation-corpus harness for the dataflow rules.

Each ``tests/analysis/fixtures/corpus/reproNNN_corpus.py`` file holds
~10 mutants of one violation family, with the offending line marked
``# expect: REPRONNN``.  The harness runs the rules over the file and
asserts the reported (line, code) pairs — restricted to the codes the
file declares — match the markers *exactly*: every mutant caught, no
false positives.  ``clean_corpus.py`` pins the zero-findings side.
"""

import ast
import re
from pathlib import Path

import pytest

from repro.analysis.pylint_rules import ModuleUnderLint, all_rules

CORPUS_DIR = Path(__file__).parent / "fixtures" / "corpus"

_MARKER = re.compile(r"#\s*expect:\s*(REPRO\d+)")

DATAFLOW_CODES = {"REPRO110", "REPRO111", "REPRO112", "REPRO113"}


def _module_for(path: Path) -> ModuleUnderLint:
    source = path.read_text(encoding="utf-8")
    # The corpus poses as a library module so path-scoped rules apply.
    return ModuleUnderLint(
        path=f"src/repro/{path.name}",
        tree=ast.parse(source),
        source=source,
    )


def _expected_markers(source: str) -> set[tuple[int, str]]:
    expected: set[tuple[int, str]] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _MARKER.search(line)
        if match:
            expected.add((lineno, match.group(1)))
    return expected


def _findings(module: ModuleUnderLint, codes: set[str]):
    found: set[tuple[int, str]] = set()
    for rule in all_rules():
        if rule.code not in codes or not rule.applies_to(module):
            continue
        for diagnostic in rule.check(module):
            assert diagnostic.line is not None
            found.add((diagnostic.line, diagnostic.code))
    return found


@pytest.mark.parametrize(
    "name", ["repro110", "repro111", "repro112", "repro113"]
)
def test_every_mutant_is_caught_exactly(name):
    path = CORPUS_DIR / f"{name}_corpus.py"
    module = _module_for(path)
    expected = _expected_markers(module.source)
    assert len(expected) >= 10, "corpus must hold ~10 mutants"
    codes = {code for _, code in expected}
    assert codes == {name.upper()}
    assert _findings(module, codes) == expected


def test_clean_corpus_has_zero_dataflow_findings():
    module = _module_for(CORPUS_DIR / "clean_corpus.py")
    assert _findings(module, DATAFLOW_CODES) == set()
