"""REPRO112 mutation corpus: images used before a hash checkpoint."""


def plain_use_before_hash(device):
    image = image_device(device)
    return carve(image)  # expect: REPRO112


def hash_only_on_one_branch(device, quick):
    image = image_device(device)
    if not quick:
        sha256(image)
    return carve(image)  # expect: REPRO112


def hash_after_the_use(device):
    image = image_device(device)
    summary = carve(image)  # expect: REPRO112
    record_hash(sha256(image))
    return summary


def use_inside_loop(devices):
    for device in devices:
        image = image_device(device)
        upload(image)  # expect: REPRO112


def passed_to_helper(device):
    image = image_device(device)
    return analyze(image, deep=True)  # expect: REPRO112


def returned_raw(device):
    image = image_device(device)
    return wrap(image)  # expect: REPRO112


def hash_skipped_by_exception(device):
    image = image_device(device)
    try:
        prepare()
    except RuntimeError:
        return carve(image)  # expect: REPRO112
    record_hash(sha256(image))
    return carve(image)


def reassigned_then_imaged_again(device, other):
    image = image_device(device)
    record_hash(sha256(image))
    image = image_device(other)
    return carve(image)  # expect: REPRO112


def two_images_one_hashed(device, other):
    first = image_device(device)
    second = image_device(other)
    record_hash(sha256(first))
    return carve(second)  # expect: REPRO112


def attribute_use_counts(device):
    image = image_device(device)
    return image.partitions()  # expect: REPRO112
