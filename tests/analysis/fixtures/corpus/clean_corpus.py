"""Negative corpus: lawful variants of every mutant family.

The harness asserts the dataflow rules (REPRO110-113) produce zero
findings here — each function is the gated / hashed / backed-off /
provenance-honest twin of a corpus mutant.
"""


def gated_straight_line(process, requirement, device):
    if not process.satisfies(requirement):
        raise InsufficientProcess(requirement)
    return image_device(device)


def gated_by_engine(engine, action, stream):
    engine.evaluate(action)
    return attach_tap(stream)


def gated_on_both_arms(flag, process, requirement, engine, action, device):
    if flag:
        process.satisfies(requirement)
    else:
        engine.evaluate(action)
    return image_device(device)


def exception_predicate_branch(provider, stream):
    if provider_own_monitoring(provider):
        return attach_tap(stream)
    return None


def explicit_exception_keyword(provider, account):
    return provider.voluntary_disclosure(account, emergency=True)


def gate_dominates_loop(engine, action, overlay):
    engine.evaluate(action)
    hits = []
    for label in ("le", "cp"):
        hits.extend(overlay.query(label, label))
    return hits


def hashed_before_use(process, requirement, device):
    process.satisfies(requirement)
    image = image_device(device)
    record_hash(sha256(image))
    return carve(image)


def hashed_on_every_branch(process, requirement, device, quick):
    process.satisfies(requirement)
    image = image_device(device)
    if quick:
        sha256(image)
    else:
        record_hash(sha256(image))
    return carve(image)


def retry_with_clock_advance(court, kind, clock):
    while True:
        process = court.apply_for(kind)
        if process:
            return process
        clock.advance(60)


def retry_with_policy_delay(court, kind, policy, now):
    for attempt in range(5):
        process = court.apply_for(kind)
        if process:
            return process
        now += policy.delay(attempt)
    return None


def provenance_recorded_honestly(process, requirement, device, ledger):
    process.satisfies(requirement)
    image = image_device(device)
    record_hash(sha256(image))
    ledger.add_fact("imaged", derived_from=image)
    return image


def derived_evidence_supports_new_application(
    process, requirement, relay, court
):
    process.satisfies(requirement)
    hits = relay.query("le", "cp")
    return court.apply_for("warrant", derived_from=hits)
