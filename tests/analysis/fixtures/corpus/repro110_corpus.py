"""REPRO110 mutation corpus: every marked line must be flagged.

Each function is one mutant — an acquisition reachable by at least one
path that never crosses a legal gate.  The harness asserts the rule
reports exactly the marked (line, code) pairs and nothing else.
"""


def straight_line(device):
    return image_device(device)  # expect: REPRO110


def gate_after_the_call(process, requirement, device):
    image = image_device(device)  # expect: REPRO110
    process.satisfies(requirement)
    return image


def one_armed_if(urgent, process, requirement, device):
    if urgent:
        process.satisfies(requirement)
    return image_device(device)  # expect: REPRO110


def else_arm_skips_the_gate(flag, engine, action, stream):
    if flag:
        engine.evaluate(action)
    else:
        note("skipping the check")
    return attach_tap(stream)  # expect: REPRO110


def loop_may_run_zero_times(processes, requirement, device):
    for process in processes:
        process.satisfies(requirement)
    return image_device(device)  # expect: REPRO110


def try_handler_bypasses_gate(engine, action, device):
    try:
        prepare(device)
        engine.evaluate(action)
    except RuntimeError:
        note("evaluation failed")
    return image_device(device)  # expect: REPRO110


def break_skips_the_gate(engine, action, stream):
    while pending():
        if impatient():
            break
        engine.evaluate(action)
    return attach_tap(stream)  # expect: REPRO110


def relay_query_without_process(overlay):
    return overlay.query("le", "cp", ttl=4)  # expect: REPRO110


def compelled_without_check(provider, account):
    return provider.compelled_disclosure(account)  # expect: REPRO110


def subscriber_lookup_without_process(isp, ip):
    return isp.subscriber_for_ip(ip)  # expect: REPRO110
