"""REPRO113 mutation corpus: retry loops that never advance the clock."""


def while_true_retry(court, kind):
    while True:
        process = court.apply_for(kind)  # expect: REPRO113
        if process:
            return process


def bounded_for_retry(court, kind):
    for _ in range(5):
        process = court.apply_for(kind)  # expect: REPRO113
        if process:
            return process
    return None


def apply_with_retry_loop(court, application):
    while True:
        process = court.apply_with(application)  # expect: REPRO113
        if process:
            return process


def review_resubmission(magistrate, application):
    granted = None
    while granted is None:
        granted = magistrate.review(application)  # expect: REPRO113
    return granted


def conditional_retry(court, kind, eager):
    while True:
        if eager:
            process = court.apply_for(kind)  # expect: REPRO113
            if process:
                return process


def retry_after_rejection(court, kind, log):
    attempts = 0
    while attempts < 9:
        attempts += 1
        process = court.apply_for(kind)  # expect: REPRO113
        if process is None:
            log.append(attempts)
            continue
        return process
    return None


def helper_submits_inside_loop(court, kind):
    for _ in range(3):
        process = submit_once(court, kind)  # expect: REPRO113
        if process:
            return process
    return None


def submit_once(court, kind):
    return court.apply_for(kind)


def nested_loop_retry(courts, kind):
    for court in courts:
        while True:
            process = court.apply_for(kind)  # expect: REPRO113
            if process:
                break
    return None


def retry_with_wall_sleep_only(court, kind, os_sleep):
    while True:
        process = court.apply_for(kind)  # expect: REPRO113
        if process:
            return process
        os_sleep()


def two_applications_one_loop(court, warrant, subpoena):
    while True:
        first = court.apply_for(warrant)  # expect: REPRO113
        second = court.apply_for(subpoena)
        if first and second:
            return first, second
