"""REPRO111 mutation corpus: tainted flows that must reach a sink.

Each function routes the product of an ungated acquisition into an
application or further acquisition through a different propagation
channel (assignment, attribute access, operators, unpacking, loop
targets, walrus, `with`, helper calls).
"""


def direct_chain(device, court):
    image = image_device(device)
    return court.apply_for(image)  # expect: REPRO111


def attribute_access(relay, court):
    hits = relay.query("le", "cp")
    peer = hits[0].peer
    return court.apply_for(peer)  # expect: REPRO111


def string_operators(relay, court):
    hits = relay.query("le", "cp")
    summary = "observed: " + str(hits)
    return court.apply_for(summary)  # expect: REPRO111


def augmented_assignment(relay, court):
    trail = "trail:"
    hits = relay.query("le", "cp")
    trail += str(hits)
    return court.apply_for(trail)  # expect: REPRO111


def tuple_unpacking(relay, court):
    first, second = relay.query("le", "cp")
    return court.apply_for(second)  # expect: REPRO111


def loop_target(relay, court):
    hits = relay.query("le", "cp")
    for hit in hits:
        court.apply_for(hit)  # expect: REPRO111


def walrus_binding(device, court):
    if (image := image_device(device)):
        court.apply_for(image)  # expect: REPRO111


def second_acquisition_as_sink(device, isp):
    image = image_device(device)
    return isp.subscriber_for_ip(image)  # expect: REPRO111


def interprocedural_return_taint(device, court):
    image = fetch_image(device)
    return court.apply_for(image)  # expect: REPRO111


def fetch_image(device):
    return image_device(device)


def positional_fact_is_not_provenance(device, ledger):
    image = image_device(device)
    ledger.add_fact(image)  # expect: REPRO111
