"""Deliberately broken module the linter must reject.

Every construct below violates one of the seed lint rules; the CLI test
asserts ``repro lint`` exits nonzero on this file.  Never import this
module.
"""


class Technique:  # stand-in base so the subclass below parses alone
    pass


class NamelessTechnique(Technique):  # REPRO101: no name, no actions
    def run(self):
        return None


PARTIAL_TABLE = {  # REPRO105: misses SEARCH_WARRANT and WIRETAP_ORDER
    ProcessKind.NONE: "nothing",  # noqa: F821
    ProcessKind.SUBPOENA: "subpoena",  # noqa: F821
    ProcessKind.COURT_ORDER: "court order",  # noqa: F821
}


def strongest(values):  # REPRO104: no default=, no emptiness guard
    return max(values)


def accumulate(item, seen=[]):  # REPRO106: mutable default
    seen.append(item)
    return seen
