"""Unit tests for process applications."""

from repro.core import ProcessKind, Standard
from repro.court.application import Fact, ProcessApplication


def fact(supports, description="a fact", observed_at=0.0):
    return Fact(
        description=description, supports=supports, observed_at=observed_at
    )


class TestShowing:
    def test_no_facts_shows_nothing(self):
        application = ProcessApplication(
            kind=ProcessKind.SUBPOENA, applicant="officer", facts=()
        )
        assert application.showing() is Standard.NOTHING

    def test_showing_is_maximum_not_sum(self):
        application = ProcessApplication(
            kind=ProcessKind.SEARCH_WARRANT,
            applicant="officer",
            facts=(
                fact(Standard.MERE_SUSPICION),
                fact(Standard.MERE_SUSPICION),
                fact(Standard.MERE_SUSPICION),
            ),
        )
        # Ten suspicions are still suspicion.
        assert application.showing() is Standard.MERE_SUSPICION

    def test_strongest_fact_carries(self):
        application = ProcessApplication(
            kind=ProcessKind.SEARCH_WARRANT,
            applicant="officer",
            facts=(
                fact(Standard.MERE_SUSPICION),
                fact(Standard.PROBABLE_CAUSE),
            ),
        )
        assert application.showing() is Standard.PROBABLE_CAUSE


class TestParticularity:
    def test_warrant_without_place_fails(self):
        application = ProcessApplication(
            kind=ProcessKind.SEARCH_WARRANT,
            applicant="officer",
            facts=(fact(Standard.PROBABLE_CAUSE),),
            target_items=("computers",),
        )
        assert not application.is_particular()

    def test_warrant_without_items_fails(self):
        application = ProcessApplication(
            kind=ProcessKind.SEARCH_WARRANT,
            applicant="officer",
            facts=(fact(Standard.PROBABLE_CAUSE),),
            target_place="5 Elm St",
        )
        assert not application.is_particular()

    def test_particular_warrant_passes(self):
        application = ProcessApplication(
            kind=ProcessKind.SEARCH_WARRANT,
            applicant="officer",
            facts=(fact(Standard.PROBABLE_CAUSE),),
            target_place="5 Elm St",
            target_items=("computers", "media"),
        )
        assert application.is_particular()

    def test_subpoena_needs_no_particularity(self):
        application = ProcessApplication(
            kind=ProcessKind.SUBPOENA,
            applicant="officer",
            facts=(fact(Standard.MERE_SUSPICION),),
        )
        assert application.is_particular()

    def test_wiretap_order_needs_particularity(self):
        application = ProcessApplication(
            kind=ProcessKind.WIRETAP_ORDER,
            applicant="officer",
            facts=(fact(Standard.SUPER_WARRANT_SHOWING),),
        )
        assert not application.is_particular()
