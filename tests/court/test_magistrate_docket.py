"""Unit tests for the magistrate and the docket."""

import pytest

from repro.core import ProcessKind, Standard
from repro.court.application import Fact, ProcessApplication
from repro.court.docket import DEFAULT_VALIDITY, Docket, IssuedProcess
from repro.court.magistrate import Magistrate


def application(kind, supports, observed_at=0.0, applied_at=0.0, **kwargs):
    defaults = dict(
        target_place="place",
        target_items=("things",),
        necessity_statement="normal techniques exhausted (stipulated)",
    )
    defaults.update(kwargs)
    return ProcessApplication(
        kind=kind,
        applicant="officer",
        facts=(
            Fact(
                description="fact",
                supports=supports,
                observed_at=observed_at,
            ),
        ),
        applied_at=applied_at,
        **defaults,
    )


class TestStandardsLadder:
    """Section II.A: suspicion -> articulable facts -> probable cause."""

    @pytest.mark.parametrize(
        "kind,sufficient,insufficient",
        [
            (
                ProcessKind.SUBPOENA,
                Standard.MERE_SUSPICION,
                Standard.NOTHING,
            ),
            (
                ProcessKind.COURT_ORDER,
                Standard.SPECIFIC_AND_ARTICULABLE_FACTS,
                Standard.MERE_SUSPICION,
            ),
            (
                ProcessKind.SEARCH_WARRANT,
                Standard.PROBABLE_CAUSE,
                Standard.SPECIFIC_AND_ARTICULABLE_FACTS,
            ),
            (
                ProcessKind.WIRETAP_ORDER,
                Standard.SUPER_WARRANT_SHOWING,
                Standard.PROBABLE_CAUSE,
            ),
        ],
    )
    def test_grant_and_deny(self, kind, sufficient, insufficient):
        magistrate = Magistrate()
        granted = magistrate.review(application(kind, sufficient))
        assert granted.granted
        assert granted.instrument.kind is kind
        denied = magistrate.review(application(kind, insufficient))
        assert not denied.granted
        assert denied.instrument is None

    def test_none_kind_never_grants(self):
        magistrate = Magistrate()
        decision = magistrate.review(
            application(ProcessKind.NONE, Standard.PROBABLE_CAUSE)
        )
        assert not decision.granted

    def test_warrant_needs_particularity(self):
        magistrate = Magistrate()
        vague = application(
            ProcessKind.SEARCH_WARRANT,
            Standard.PROBABLE_CAUSE,
            target_place="",
            target_items=(),
        )
        decision = magistrate.review(vague)
        assert not decision.granted
        assert "particularity" in decision.reason

    def test_wiretap_order_needs_necessity(self):
        """18 U.S.C. 2518(1)(c): no necessity showing, no Title III order."""
        magistrate = Magistrate()
        no_necessity = application(
            ProcessKind.WIRETAP_ORDER,
            Standard.SUPER_WARRANT_SHOWING,
            necessity_statement="",
        )
        decision = magistrate.review(no_necessity)
        assert not decision.granted
        assert "necessity" in decision.reason

    def test_ordinary_warrant_needs_no_necessity(self):
        magistrate = Magistrate()
        decision = magistrate.review(
            application(
                ProcessKind.SEARCH_WARRANT,
                Standard.PROBABLE_CAUSE,
                necessity_statement="",
            )
        )
        assert decision.granted


class TestStaleness:
    def test_no_horizon_means_old_facts_still_count(self):
        magistrate = Magistrate(staleness_horizon=None)
        ancient = application(
            ProcessKind.SEARCH_WARRANT,
            Standard.PROBABLE_CAUSE,
            observed_at=0.0,
            applied_at=10 * 365 * 86400.0,
        )
        assert magistrate.review(ancient).granted

    def test_horizon_discounts_stale_facts(self):
        magistrate = Magistrate(staleness_horizon=30 * 86400.0)
        stale = application(
            ProcessKind.SEARCH_WARRANT,
            Standard.PROBABLE_CAUSE,
            observed_at=0.0,
            applied_at=60 * 86400.0,
        )
        assert not magistrate.review(stale).granted

    def test_fresh_facts_survive_horizon(self):
        magistrate = Magistrate(staleness_horizon=30 * 86400.0)
        fresh = application(
            ProcessKind.SEARCH_WARRANT,
            Standard.PROBABLE_CAUSE,
            observed_at=50 * 86400.0,
            applied_at=60 * 86400.0,
        )
        assert magistrate.review(fresh).granted


class TestDocket:
    def test_statistics(self):
        magistrate = Magistrate()
        magistrate.review(
            application(ProcessKind.SUBPOENA, Standard.MERE_SUSPICION)
        )
        magistrate.review(
            application(ProcessKind.SEARCH_WARRANT, Standard.MERE_SUSPICION)
        )
        assert magistrate.docket.applications_received == 2
        assert magistrate.docket.applications_denied == 1
        assert len(magistrate.docket.instruments) == 1

    def test_active_for_and_strongest(self):
        docket = Docket()
        docket.file(
            IssuedProcess(
                kind=ProcessKind.SUBPOENA,
                issued_to="officer",
                issued_at=0.0,
                expires_at=100.0,
            )
        )
        docket.file(
            IssuedProcess(
                kind=ProcessKind.SEARCH_WARRANT,
                issued_to="officer",
                issued_at=0.0,
                expires_at=50.0,
            )
        )
        assert (
            docket.strongest_process("officer", 10.0)
            is ProcessKind.SEARCH_WARRANT
        )
        # Warrant expired at t=60; subpoena remains.
        assert (
            docket.strongest_process("officer", 60.0) is ProcessKind.SUBPOENA
        )
        assert docket.strongest_process("other", 10.0) is ProcessKind.NONE


class TestIssuedProcess:
    def test_validity_window(self):
        instrument = IssuedProcess(
            kind=ProcessKind.SEARCH_WARRANT,
            issued_to="officer",
            issued_at=10.0,
            expires_at=20.0,
        )
        assert not instrument.valid_at(5.0)
        assert instrument.valid_at(15.0)
        assert not instrument.valid_at(25.0)

    def test_revocation(self):
        instrument = IssuedProcess(
            kind=ProcessKind.SUBPOENA,
            issued_to="officer",
            issued_at=0.0,
            expires_at=100.0,
        )
        instrument.revoke()
        assert not instrument.valid_at(50.0)

    def test_default_validity_warrants_shortest(self):
        assert (
            DEFAULT_VALIDITY[ProcessKind.SEARCH_WARRANT]
            < DEFAULT_VALIDITY[ProcessKind.COURT_ORDER]
            < DEFAULT_VALIDITY[ProcessKind.SUBPOENA]
        )

    def test_issued_instrument_carries_window(self):
        magistrate = Magistrate()
        decision = magistrate.review(
            application(
                ProcessKind.SEARCH_WARRANT,
                Standard.PROBABLE_CAUSE,
                applied_at=1000.0,
            )
        )
        instrument = decision.instrument
        assert instrument.issued_at == 1000.0
        assert instrument.expires_at == 1000.0 + DEFAULT_VALIDITY[
            ProcessKind.SEARCH_WARRANT
        ]
