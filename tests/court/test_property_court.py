"""Property-based tests for the court substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProcessKind, Standard
from repro.court.application import Fact, ProcessApplication
from repro.court.magistrate import Magistrate

standards = st.sampled_from(list(Standard))
kinds = st.sampled_from(
    [
        ProcessKind.SUBPOENA,
        ProcessKind.COURT_ORDER,
        ProcessKind.SEARCH_WARRANT,
        ProcessKind.WIRETAP_ORDER,
    ]
)


def make_application(kind, fact_standards):
    return ProcessApplication(
        kind=kind,
        applicant="officer",
        facts=tuple(
            Fact(description=f"fact-{i}", supports=standard)
            for i, standard in enumerate(fact_standards)
        ),
        target_place="place",
        target_items=("items",),
        necessity_statement="normal techniques exhausted",
    )


@given(kind=kinds, fact_standards=st.lists(standards, max_size=6))
@settings(max_examples=150, deadline=None)
def test_grant_iff_showing_meets_ladder(kind, fact_standards):
    """The magistrate's decision is exactly the ladder comparison."""
    from repro.core import REQUIRED_SHOWING

    decision = Magistrate().review(make_application(kind, fact_standards))
    showing = (
        max(fact_standards) if fact_standards else Standard.NOTHING
    )
    assert decision.granted == showing.satisfies(REQUIRED_SHOWING[kind])


@given(
    kind=kinds,
    fact_standards=st.lists(standards, min_size=1, max_size=5),
    extra=standards,
)
@settings(max_examples=150, deadline=None)
def test_adding_facts_never_hurts(kind, fact_standards, extra):
    """An application never loses by offering one more fact."""
    base = Magistrate().review(make_application(kind, fact_standards))
    augmented = Magistrate().review(
        make_application(kind, fact_standards + [extra])
    )
    assert augmented.granted or not base.granted


@given(fact_standards=st.lists(standards, min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_instrument_validity_window(fact_standards):
    """Granted instruments are valid at issuance and invalid after expiry."""
    decision = Magistrate().review(
        make_application(ProcessKind.SUBPOENA, fact_standards)
    )
    if not decision.granted:
        return
    instrument = decision.instrument
    assert instrument.valid_at(instrument.issued_at)
    assert not instrument.valid_at(instrument.expires_at + 1.0)
    instrument.revoke()
    assert not instrument.valid_at(instrument.issued_at)
