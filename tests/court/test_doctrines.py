"""Unit tests for exclusionary-rule limits (good faith, Nix, Wong Sun)."""

import pytest

from repro.core import (
    Actor,
    Admissibility,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ProcessKind,
    Timing,
)
from repro.court.doctrines import (
    INEVITABILITY_THRESHOLD,
    ProsecutionResponse,
    ResponseKind,
    response_prevails,
)
from repro.court.suppression import SuppressionHearing
from repro.evidence.items import EvidenceItem, derive


def warrant_action():
    return InvestigativeAction(
        description="search private computer",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
    )


def free_action():
    return InvestigativeAction(
        description="read public data",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.PUBLIC, knowingly_exposed=True),
    )


def make_item(action, held, content="x"):
    return EvidenceItem(
        description="item",
        content=content,
        acquired_by="officer",
        acquired_at=0.0,
        action=action,
        process_held=held,
    )


class TestResponsePrevails:
    def test_good_faith_on_facially_valid_warrant(self):
        response = ProsecutionResponse(
            evidence_id=1,
            kind=ResponseKind.GOOD_FAITH_RELIANCE,
            basis="warrant later invalidated for a defective affidavit",
            warrant_facially_valid=True,
        )
        prevails, reason = response_prevails(response, False)
        assert prevails
        assert "Leon" in reason

    def test_good_faith_fails_on_facially_deficient_warrant(self):
        response = ProsecutionResponse(
            evidence_id=1,
            kind=ResponseKind.GOOD_FAITH_RELIANCE,
            basis="warrant named no place at all",
            warrant_facially_valid=False,
        )
        prevails, __ = response_prevails(response, False)
        assert not prevails

    def test_independent_source_requires_admitted_parallel(self):
        response = ProsecutionResponse(
            evidence_id=1,
            kind=ResponseKind.INDEPENDENT_SOURCE,
            basis="a cooperating witness produced the same records",
            independent_evidence_id=9,
        )
        assert response_prevails(response, True)[0]
        assert not response_prevails(response, False)[0]

    def test_independent_source_without_named_evidence_fails(self):
        response = ProsecutionResponse(
            evidence_id=1,
            kind=ResponseKind.INDEPENDENT_SOURCE,
            basis="vague claim",
        )
        assert not response_prevails(response, True)[0]

    def test_inevitable_discovery_threshold(self):
        near_certain = ProsecutionResponse(
            evidence_id=1,
            kind=ResponseKind.INEVITABLE_DISCOVERY,
            basis="inventory search was already scheduled",
            discovery_probability=INEVITABILITY_THRESHOLD,
        )
        merely_possible = ProsecutionResponse(
            evidence_id=1,
            kind=ResponseKind.INEVITABLE_DISCOVERY,
            basis="someone might have looked eventually",
            discovery_probability=0.5,
        )
        assert response_prevails(near_certain, False)[0]
        assert not response_prevails(merely_possible, False)[0]

    def test_attenuation_needs_a_basis(self):
        with_basis = ProsecutionResponse(
            evidence_id=1,
            kind=ResponseKind.ATTENUATION,
            basis="months passed and an intervening voluntary confession",
        )
        bare = ProsecutionResponse(
            evidence_id=1, kind=ResponseKind.ATTENUATION, basis="  "
        )
        assert response_prevails(with_basis, False)[0]
        assert not response_prevails(bare, False)[0]

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ProsecutionResponse(
                evidence_id=1,
                kind=ResponseKind.INEVITABLE_DISCOVERY,
                basis="x",
                discovery_probability=1.5,
            )


class TestHearingIntegration:
    def test_good_faith_saves_the_evidence(self):
        item = make_item(warrant_action(), ProcessKind.NONE)
        hearing = SuppressionHearing()
        response = ProsecutionResponse(
            evidence_id=item.evidence_id,
            kind=ResponseKind.GOOD_FAITH_RELIANCE,
            basis="officer executed a warrant quashed months later",
        )
        outcome = hearing.hear(
            [item], responses={item.evidence_id: response}
        )
        assert outcome.outcome_for(item) is Admissibility.ADMISSIBLE
        assert "Leon" in outcome.findings[item.evidence_id].reason

    def test_saved_parent_cleans_the_fruit(self):
        parent = make_item(warrant_action(), ProcessKind.NONE)
        child = derive(parent, "analysis", "y", free_action())
        response = ProsecutionResponse(
            evidence_id=parent.evidence_id,
            kind=ResponseKind.GOOD_FAITH_RELIANCE,
            basis="reliance on a facially valid warrant",
        )
        outcome = SuppressionHearing().hear(
            [parent, child], responses={parent.evidence_id: response}
        )
        assert outcome.outcome_for(parent) is Admissibility.ADMISSIBLE
        assert outcome.outcome_for(child) is Admissibility.ADMISSIBLE

    def test_independent_source_saves_derivative(self):
        tainted_parent = make_item(warrant_action(), ProcessKind.NONE)
        clean_parallel = make_item(free_action(), ProcessKind.NONE, "same")
        fruit = derive(tainted_parent, "records", "same", free_action())
        response = ProsecutionResponse(
            evidence_id=fruit.evidence_id,
            kind=ResponseKind.INDEPENDENT_SOURCE,
            basis="the same records came from the clean acquisition",
            independent_evidence_id=clean_parallel.evidence_id,
        )
        outcome = SuppressionHearing().hear(
            [tainted_parent, clean_parallel, fruit],
            responses={fruit.evidence_id: response},
        )
        assert (
            outcome.outcome_for(tainted_parent) is Admissibility.SUPPRESSED
        )
        assert outcome.outcome_for(fruit) is Admissibility.ADMISSIBLE

    def test_failed_response_changes_nothing(self):
        item = make_item(warrant_action(), ProcessKind.NONE)
        response = ProsecutionResponse(
            evidence_id=item.evidence_id,
            kind=ResponseKind.INEVITABLE_DISCOVERY,
            basis="maybe",
            discovery_probability=0.2,
        )
        outcome = SuppressionHearing().hear(
            [item], responses={item.evidence_id: response}
        )
        assert outcome.outcome_for(item) is Admissibility.SUPPRESSED

    def test_response_never_needed_for_lawful_evidence(self):
        item = make_item(warrant_action(), ProcessKind.SEARCH_WARRANT)
        outcome = SuppressionHearing().hear([item], responses={})
        assert outcome.outcome_for(item) is Admissibility.ADMISSIBLE
