"""Unit tests for the suppression hearing."""

from repro.core import (
    Actor,
    Admissibility,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ProcessKind,
    Timing,
)
from repro.court.suppression import SuppressionHearing
from repro.evidence.items import EvidenceItem


def warrant_action():
    return InvestigativeAction(
        description="search private computer",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
    )


def make_item(held, content="x"):
    return EvidenceItem(
        description="item",
        content=content,
        acquired_by="officer",
        acquired_at=0.0,
        action=warrant_action(),
        process_held=held,
    )


class TestHearing:
    def test_partition(self):
        lawful = make_item(ProcessKind.SEARCH_WARRANT, "lawful")
        unlawful = make_item(ProcessKind.NONE, "unlawful")
        outcome = SuppressionHearing().hear([lawful, unlawful])
        assert outcome.admitted == (lawful,)
        assert outcome.suppressed == (unlawful,)
        assert outcome.suppression_rate == 0.5

    def test_outcome_for(self):
        item = make_item(ProcessKind.NONE)
        outcome = SuppressionHearing().hear([item])
        assert outcome.outcome_for(item) is Admissibility.SUPPRESSED

    def test_empty_hearing(self):
        outcome = SuppressionHearing().hear([])
        assert outcome.suppression_rate == 0.0
        assert outcome.admitted == ()
        assert outcome.suppressed == ()

    def test_findings_carry_rulings(self):
        item = make_item(ProcessKind.NONE)
        outcome = SuppressionHearing().hear([item])
        finding = outcome.findings[item.evidence_id]
        assert (
            finding.ruling.required_process is ProcessKind.SEARCH_WARRANT
        )
