"""Tests for the synthetic workload generators."""

from repro.core import ProcessKind
from repro.workloads import (
    action_corpus,
    labeled_corpus,
    process_distribution,
)


class TestActionCorpus:
    def test_deterministic(self):
        a = action_corpus(50, seed=5)
        b = action_corpus(50, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        assert action_corpus(50, seed=5) != action_corpus(50, seed=6)

    def test_size(self):
        assert len(action_corpus(123, seed=1)) == 123

    def test_actions_are_valid(self):
        from repro.core import ComplianceEngine

        engine = ComplianceEngine()
        for action in action_corpus(200, seed=7):
            ruling = engine.evaluate(action)  # must not raise
            assert ruling.required_process in ProcessKind


class TestLabeledCorpus:
    def test_labels_match_engine(self):
        from repro.core import ComplianceEngine

        engine = ComplianceEngine()
        for item in labeled_corpus(100, seed=3):
            assert (
                engine.evaluate(item.action).required_process
                is item.required_process
            )
            assert item.needs_process == (
                item.required_process is not ProcessKind.NONE
            )

    def test_distribution_sums(self):
        corpus = labeled_corpus(300, seed=11)
        distribution = process_distribution(corpus)
        assert sum(distribution.values()) == 300

    def test_large_corpus_covers_the_ladder(self):
        corpus = labeled_corpus(2000, seed=99)
        distribution = process_distribution(corpus)
        assert all(distribution[kind] > 0 for kind in ProcessKind)
