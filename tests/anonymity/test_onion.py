"""Unit tests for the onion-routing network."""

import pytest

from repro.anonymity.onion import (
    Circuit,
    HiddenService,
    OnionNetwork,
    Relay,
)
from repro.netsim.engine import Simulator


@pytest.fixture()
def network():
    return OnionNetwork(Simulator(), n_relays=10, seed=4)


class TestRelay:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Relay("bad", base_delay=-0.1)

    def test_forwarding_delay_at_least_base(self):
        import random

        relay = Relay("r", base_delay=0.02, jitter=0.5)
        rng = random.Random(0)
        delays = [relay.forwarding_delay(rng) for _ in range(200)]
        assert all(d >= 0.02 for d in delays)
        assert relay.cells_forwarded == 200

    def test_zero_jitter_is_deterministic(self):
        import random

        relay = Relay("r", base_delay=0.02, jitter=0.0)
        rng = random.Random(0)
        assert relay.forwarding_delay(rng) == 0.02


class TestCircuitConstruction:
    def test_default_three_hops(self, network):
        circuit = network.build_circuit("client", "server")
        assert circuit.path_length() == 3
        assert len(set(id(r) for r in circuit.relays)) == 3

    def test_too_many_hops_rejected(self, network):
        with pytest.raises(ValueError):
            network.build_circuit("c", "s", n_hops=11)

    def test_empty_relay_list_rejected(self, network):
        import random

        with pytest.raises(ValueError):
            Circuit(
                network.sim, "c", "s", relays=[], rng=random.Random(0)
            )

    def test_no_relays_network_rejected(self):
        with pytest.raises(ValueError):
            OnionNetwork(Simulator(), n_relays=0)

    def test_circuit_ids_unique(self, network):
        a = network.build_circuit("c1", "s")
        b = network.build_circuit("c2", "s")
        assert a.circuit_id != b.circuit_id

    def test_circuits_registered(self, network):
        network.build_circuit("c", "s")
        assert len(network.circuits) == 1


class TestCellTransit:
    def test_downstream_cell_arrives_later(self, network):
        circuit = network.build_circuit("client", "server")
        circuit.send_downstream()
        network.sim.run()
        assert len(circuit.server_side_log) == 1
        assert len(circuit.client_side_log) == 1
        sent = circuit.server_side_log[0].timestamp
        arrived = circuit.client_side_log[0].timestamp
        # 3 relays * base 0.02 + 4 links * 0.01 minimum transit
        assert arrived - sent >= 0.10

    def test_upstream_cell_transits_symmetrically(self, network):
        circuit = network.build_circuit("client", "server")
        circuit.send_upstream()
        network.sim.run()
        assert len(circuit.client_side_log) == 1
        assert len(circuit.server_side_log) == 1

    def test_ordering_of_departures_preserved_in_expectation(self, network):
        circuit = network.build_circuit("client", "server")
        for i in range(20):
            network.sim.schedule(i * 0.5, circuit.send_downstream)
        network.sim.run()
        arrivals = circuit.client_arrival_times()
        assert len(arrivals) == 20
        # Widely spaced cells keep order despite jitter.
        assert arrivals == sorted(arrivals)

    def test_observation_logs_carry_sizes(self, network):
        circuit = network.build_circuit("client", "server")
        circuit.send_downstream(size=1024)
        network.sim.run()
        assert circuit.server_side_log[0].size == 1024
        assert circuit.client_side_log[0].size == 1024

    def test_cells_sent_counter(self, network):
        circuit = network.build_circuit("client", "server")
        circuit.send_downstream()
        circuit.send_upstream()
        assert circuit.cells_sent == 2


class TestPacketLoss:
    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            OnionNetwork(Simulator(), n_relays=3, loss_rate=1.0).build_circuit(
                "c", "s"
            )

    def test_zero_loss_delivers_everything(self, network):
        circuit = network.build_circuit("c", "s")
        for __ in range(50):
            circuit.send_downstream()
        network.sim.run()
        assert len(circuit.client_side_log) == 50
        assert circuit.cells_lost == 0

    def test_lossy_circuit_drops_cells(self):
        sim = Simulator()
        net = OnionNetwork(sim, n_relays=5, seed=3, loss_rate=0.5)
        circuit = net.build_circuit("c", "s")
        for __ in range(200):
            circuit.send_downstream()
        sim.run()
        delivered = len(circuit.client_side_log)
        assert circuit.cells_lost + delivered == 200
        assert 40 < delivered < 160  # ~Binomial(200, 0.5)

    def test_server_side_log_sees_every_send(self):
        sim = Simulator()
        net = OnionNetwork(sim, n_relays=5, seed=4, loss_rate=0.5)
        circuit = net.build_circuit("c", "s")
        for __ in range(30):
            circuit.send_downstream()
        sim.run()
        # Loss happens in the network, after the server-side tap.
        assert len(circuit.server_side_log) == 30


class TestHiddenService:
    def test_accounts(self, network):
        service = HiddenService(network, "hidden-market")
        service.register_account("buyer-1")
        service.store("buyer-1", "download: file-9")
        assert service.accounts["buyer-1"] == ["download: file-9"]

    def test_store_unknown_account_raises(self, network):
        service = HiddenService(network, "hidden-market")
        with pytest.raises(KeyError):
            service.store("ghost", "x")

    def test_connect_builds_circuit_to_service(self, network):
        service = HiddenService(network, "hidden-market")
        circuit = service.connect("visitor")
        assert circuit.server == "hidden-market"
        assert circuit.client == "visitor"
