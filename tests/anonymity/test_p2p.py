"""Unit tests for the friend-to-friend P2P overlay."""

import statistics

import pytest

from repro.anonymity.p2p import P2POverlay, TimingParameters


class TestTopology:
    def test_add_peer(self):
        overlay = P2POverlay(seed=1)
        peer = overlay.add_peer("p", files={"f"})
        assert peer.has_file("f")
        assert not peer.has_file("g")

    def test_duplicate_peer_rejected(self):
        overlay = P2POverlay(seed=1)
        overlay.add_peer("p")
        with pytest.raises(ValueError):
            overlay.add_peer("p")

    def test_befriend_is_symmetric(self):
        overlay = P2POverlay(seed=1)
        overlay.add_peer("a")
        overlay.add_peer("b")
        overlay.befriend("a", "b", latency=0.02)
        assert overlay.peers["a"].friends["b"] == 0.02
        assert overlay.peers["b"].friends["a"] == 0.02

    def test_self_friendship_rejected(self):
        overlay = P2POverlay(seed=1)
        overlay.add_peer("a")
        with pytest.raises(ValueError):
            overlay.befriend("a", "a")

    def test_random_topology_is_connected(self):
        overlay = P2POverlay(seed=7)
        overlay.random_topology(50, mean_degree=3.0)
        # BFS from an arbitrary peer must reach everyone.
        start = next(iter(overlay.peers))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for friend in overlay.peers[current].friends:
                if friend not in seen:
                    seen.add(friend)
                    frontier.append(friend)
        assert seen == set(overlay.peers)

    def test_random_topology_source_count(self):
        overlay = P2POverlay(seed=7)
        sources = overlay.random_topology(
            100, source_fraction=0.1, file_id="f"
        )
        assert len(sources) == 10
        assert all(overlay.is_source(s, "f") for s in sources)

    def test_mean_degree_approximate(self):
        overlay = P2POverlay(seed=7)
        overlay.random_topology(100, mean_degree=4.0)
        degrees = [len(p.friends) for p in overlay.peers.values()]
        assert 3.0 <= statistics.mean(degrees) <= 5.0


class TestQueryMechanics:
    def build(self):
        overlay = P2POverlay(seed=3)
        overlay.add_peer("origin")
        overlay.add_peer("source", files={"f"})
        overlay.add_peer("relay")
        overlay.add_peer("far-source", files={"f"})
        overlay.befriend("origin", "source", latency=0.02)
        overlay.befriend("origin", "relay", latency=0.02)
        overlay.befriend("relay", "far-source", latency=0.02)
        return overlay

    def test_direct_source_responds(self):
        overlay = self.build()
        records = overlay.query("origin", "f", ttl=3, trials=1)
        neighbors = {r.neighbor for r in records}
        assert "source" in neighbors

    def test_far_source_reached_via_relay(self):
        overlay = self.build()
        records = overlay.query("origin", "f", ttl=3, trials=1)
        assert "relay" in {r.neighbor for r in records}

    def test_ttl_limits_reach(self):
        overlay = self.build()
        records = overlay.query("origin", "f", ttl=1, trials=1)
        # ttl=1: neighbours may answer but not forward.
        assert {r.neighbor for r in records} == {"source"}

    def test_unknown_origin_rejected(self):
        overlay = self.build()
        with pytest.raises(KeyError):
            overlay.query("ghost", "f")

    def test_no_sources_no_responses(self):
        overlay = P2POverlay(seed=3)
        overlay.add_peer("a")
        overlay.add_peer("b")
        overlay.befriend("a", "b")
        assert overlay.query("a", "missing", trials=2) == []

    def test_trials_tagged(self):
        overlay = self.build()
        records = overlay.query("origin", "f", ttl=3, trials=3)
        assert {r.trial for r in records} == {0, 1, 2}

    def test_response_time_positive(self):
        overlay = self.build()
        records = overlay.query("origin", "f", trials=1)
        assert all(r.response_time > 0 for r in records)


class TestTimingSeparation:
    """The signal the IV.A attack relies on."""

    def test_source_faster_than_forwarder(self):
        overlay = P2POverlay(seed=5)
        overlay.add_peer("origin")
        overlay.add_peer("near-source", files={"f"})
        overlay.add_peer("forwarder")
        overlay.add_peer("behind", files={"f"})
        overlay.befriend("origin", "near-source", latency=0.02)
        overlay.befriend("origin", "forwarder", latency=0.02)
        overlay.befriend("forwarder", "behind", latency=0.02)
        records = overlay.query("origin", "f", ttl=3, trials=10)
        by_neighbor = {}
        for record in records:
            by_neighbor.setdefault(record.neighbor, []).append(
                record.response_time
            )
        source_median = statistics.median(by_neighbor["near-source"])
        forwarder_median = statistics.median(by_neighbor["forwarder"])
        # The forwarder pays the artificial forward delay (>= 150 ms).
        assert forwarder_median - source_median > 0.1

    def test_measure_rtt(self):
        overlay = P2POverlay(seed=5)
        overlay.add_peer("a")
        overlay.add_peer("b")
        overlay.befriend("a", "b", latency=0.03)
        assert overlay.measure_rtt("a", "b") == pytest.approx(0.06)

    def test_measure_rtt_requires_friendship(self):
        overlay = P2POverlay(seed=5)
        overlay.add_peer("a")
        overlay.add_peer("b")
        with pytest.raises(ValueError):
            overlay.measure_rtt("a", "b")


class TestTimingParameters:
    def test_draw_within_range(self):
        import random

        params = TimingParameters()
        rng = random.Random(0)
        for _ in range(100):
            value = params.draw(rng, "forward_delay")
            assert 0.150 <= value <= 0.300

    def test_custom_parameters(self):
        params = TimingParameters(source_lookup=(0.001, 0.002))
        import random

        value = params.draw(random.Random(1), "source_lookup")
        assert 0.001 <= value <= 0.002
