"""Unit tests for the rotating circuit channel."""

import pytest

from repro.anonymity.onion import OnionNetwork, RotatingChannel
from repro.netsim.engine import Simulator


@pytest.fixture()
def pools():
    sim = Simulator()
    fast = OnionNetwork(sim, n_relays=5, seed=1, base_delay=0.01)
    slow = OnionNetwork(sim, n_relays=5, seed=2, base_delay=0.5)
    return sim, fast, slow


class TestValidation:
    def test_needs_circuits(self):
        with pytest.raises(ValueError):
            RotatingChannel([], rotation_interval=10.0)

    def test_needs_positive_interval(self, pools):
        sim, fast, __ = pools
        circuit = fast.build_circuit("c", "s")
        with pytest.raises(ValueError):
            RotatingChannel([circuit], rotation_interval=0)

    def test_same_client_required(self, pools):
        sim, fast, slow = pools
        a = fast.build_circuit("client-a", "s")
        b = slow.build_circuit("client-b", "s")
        with pytest.raises(ValueError, match="same client"):
            RotatingChannel([a, b], rotation_interval=10.0)


class TestRotation:
    def test_switches_circuits_over_time(self, pools):
        sim, fast, slow = pools
        circuits = [
            fast.build_circuit("suspect", "s"),
            slow.build_circuit("suspect", "s"),
        ]
        channel = RotatingChannel(circuits, rotation_interval=5.0)
        for tick in range(4):  # t = 0, 4, 8, 12 -> circuit 0,0,1,1...
            sim.schedule_at(tick * 4.0, channel.send_downstream)
        sim.run()
        assert circuits[0].cells_sent > 0
        assert circuits[1].cells_sent > 0
        assert channel.rotations >= 1

    def test_merged_arrivals_sorted_and_complete(self, pools):
        sim, fast, slow = pools
        circuits = [
            fast.build_circuit("suspect", "s"),
            slow.build_circuit("suspect", "s"),
        ]
        channel = RotatingChannel(circuits, rotation_interval=3.0)
        n = 10
        for index in range(n):
            sim.schedule_at(index * 1.0, channel.send_downstream)
        sim.run()
        arrivals = channel.client_arrival_times()
        assert len(arrivals) == n
        assert arrivals == sorted(arrivals)

    def test_single_circuit_never_rotates(self, pools):
        sim, fast, __ = pools
        circuit = fast.build_circuit("suspect", "s")
        channel = RotatingChannel([circuit], rotation_interval=1.0)
        for index in range(5):
            sim.schedule_at(index * 2.0, channel.send_downstream)
        sim.run()
        assert channel.rotations == 0
        assert circuit.cells_sent == 5
