"""Unit and property tests for the batching mix strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymity.mixes import NoMix, PoolMix, ThresholdMix, TimedMix

ARRIVALS = [0.1, 0.4, 0.9, 1.1, 1.6, 2.05, 2.4, 3.7]


class TestNoMix:
    def test_identity(self):
        assert NoMix().apply(ARRIVALS) == sorted(ARRIVALS)


class TestTimedMix:
    def test_quantizes_to_ticks(self):
        releases = TimedMix(interval=1.0).apply([0.1, 0.9, 1.5, 2.0])
        assert releases == [1.0, 1.0, 2.0, 2.0]

    def test_never_early(self):
        releases = TimedMix(interval=0.7).apply(ARRIVALS)
        for arrival, release in zip(sorted(ARRIVALS), releases):
            assert release >= arrival

    def test_validation(self):
        with pytest.raises(ValueError):
            TimedMix(interval=0)


class TestThresholdMix:
    def test_batches_of_k(self):
        releases = ThresholdMix(k=3).apply([1.0, 2.0, 3.0, 4.0, 5.0])
        # First batch of 3 leaves at t=3; the remainder at t=5.
        assert releases == [3.0, 3.0, 3.0, 5.0, 5.0]

    def test_k_one_is_identity(self):
        assert ThresholdMix(k=1).apply(ARRIVALS) == sorted(ARRIVALS)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdMix(k=0)


class TestPoolMix:
    def test_count_preserved(self):
        releases = PoolMix(round_interval=0.5, seed=1).apply(ARRIVALS)
        assert len(releases) == len(ARRIVALS)

    def test_never_early(self):
        releases = PoolMix(round_interval=0.5, seed=2).apply(ARRIVALS)
        # Releases happen at tick boundaries after arrival: every release
        # must be at or after the earliest arrival.
        assert min(releases) >= min(ARRIVALS)

    def test_empty(self):
        assert PoolMix(round_interval=0.5).apply([]) == []

    def test_max_hold_bounds_delay(self):
        mix = PoolMix(
            round_interval=0.5,
            release_fraction=0.01,
            seed=3,
            max_rounds_held=4,
        )
        releases = mix.apply([0.1])
        # Held at most max_rounds_held rounds past the first tick.
        assert releases[0] <= 0.5 * (1 + 4) + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            PoolMix(round_interval=0)
        with pytest.raises(ValueError):
            PoolMix(round_interval=1.0, release_fraction=0)
        with pytest.raises(ValueError):
            PoolMix(round_interval=1.0, release_fraction=1.5)


arrival_lists = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=0,
    max_size=60,
)


@pytest.mark.parametrize(
    "mix_factory",
    [
        NoMix,
        lambda: TimedMix(interval=0.9),
        lambda: ThresholdMix(k=4),
        lambda: PoolMix(round_interval=0.8, seed=7),
    ],
    ids=["none", "timed", "threshold", "pool"],
)
@given(arrivals=arrival_lists)
@settings(max_examples=50, deadline=None)
def test_mix_invariants(mix_factory, arrivals):
    """Every mix preserves cell count, sorts output, never releases early."""
    mix = mix_factory()
    releases = mix.apply(arrivals)
    assert len(releases) == len(arrivals)
    assert releases == sorted(releases)
    if arrivals:
        assert min(releases) >= min(arrivals) - 1e-9
