"""Unit tests for the single-hop anonymizing proxy."""

import pytest

from repro.anonymity.mixnet import AnonymizerProxy
from repro.netsim.engine import Simulator


@pytest.fixture()
def proxy():
    return AnonymizerProxy(Simulator(), base_delay=0.03, jitter=0.5, seed=3)


class TestSessions:
    def test_open_session(self, proxy):
        session = proxy.open_session("client", "server")
        assert session.client == "client"
        assert session.server == "server"
        assert proxy.sessions == [session]

    def test_multiple_sessions_independent(self, proxy):
        a = proxy.open_session("c1", "s")
        b = proxy.open_session("c2", "s")
        proxy.send_downstream(a)
        proxy.sim.run()
        assert len(a.client_side_log) == 1
        assert len(b.client_side_log) == 0


class TestRelaying:
    def test_downstream_delay_at_least_base(self, proxy):
        session = proxy.open_session("client", "server")
        proxy.send_downstream(session)
        proxy.sim.run()
        sent = session.server_side_log[0].timestamp
        arrived = session.client_side_log[0].timestamp
        assert arrived - sent >= 0.03

    def test_upstream_mirror(self, proxy):
        session = proxy.open_session("client", "server")
        proxy.send_upstream(session)
        proxy.sim.run()
        assert len(session.client_side_log) == 1
        assert len(session.server_side_log) == 1

    def test_cells_relayed_counter(self, proxy):
        session = proxy.open_session("client", "server")
        for _ in range(4):
            proxy.send_downstream(session)
        assert proxy.cells_relayed == 4

    def test_sizes_preserved(self, proxy):
        session = proxy.open_session("client", "server")
        proxy.send_downstream(session, size=640)
        proxy.sim.run()
        assert session.client_side_log[0].size == 640

    def test_timing_shape_survives_the_proxy(self, proxy):
        """Rate patterns survive relaying — the watermark's prerequisite."""
        session = proxy.open_session("client", "server")
        for i in range(10):
            proxy.sim.schedule(
                i * 1.0, lambda s=session: proxy.send_downstream(s)
            )
        proxy.sim.run()
        arrivals = [o.timestamp for o in session.client_side_log]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        # 1-second spacing survives within the jitter envelope.
        assert all(0.5 < gap < 1.5 for gap in gaps)
