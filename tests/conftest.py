"""Shared fixtures for the test suite."""

import pytest

from repro.core import ComplianceEngine


@pytest.fixture(scope="session")
def engine() -> ComplianceEngine:
    """One compliance engine shared across the suite (it is stateless)."""
    return ComplianceEngine()
