"""Shared fixtures for the test suite."""

import pytest

from repro import obs
from repro.core import ComplianceEngine


@pytest.fixture(scope="session")
def engine() -> ComplianceEngine:
    """One compliance engine shared across the suite (it is stateless)."""
    return ComplianceEngine()


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Telemetry is process-global state; never let it leak across tests."""
    yield
    obs.reset()
