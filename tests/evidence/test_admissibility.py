"""Unit tests for the exclusionary-rule analyzer."""

import pytest

from repro.core import (
    Actor,
    Admissibility,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ProcessKind,
    Timing,
)
from repro.evidence.admissibility import AdmissibilityAnalyzer
from repro.evidence.custody import ChainOfCustody
from repro.evidence.items import EvidenceItem, derive


def warrant_action():
    """An action requiring a search warrant (content on private premises)."""
    return InvestigativeAction(
        description="search suspect's computer",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
    )


def free_action():
    """An action needing no process (public website)."""
    return InvestigativeAction(
        description="read public website",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.PUBLIC, knowingly_exposed=True),
    )


def make_item(action, held, content="data"):
    return EvidenceItem(
        description="item",
        content=content,
        acquired_by="officer",
        acquired_at=1.0,
        action=action,
        process_held=held,
    )


@pytest.fixture()
def analyzer():
    return AdmissibilityAnalyzer()


class TestLegality:
    def test_lawful_acquisition_admitted(self, analyzer):
        item = make_item(warrant_action(), ProcessKind.SEARCH_WARRANT)
        finding = analyzer.analyze([item])[item.evidence_id]
        assert finding.outcome is Admissibility.ADMISSIBLE

    def test_insufficient_process_suppressed(self, analyzer):
        item = make_item(warrant_action(), ProcessKind.SUBPOENA)
        finding = analyzer.analyze([item])[item.evidence_id]
        assert finding.outcome is Admissibility.SUPPRESSED
        assert "search warrant" in finding.reason

    def test_stronger_process_than_needed_is_fine(self, analyzer):
        item = make_item(warrant_action(), ProcessKind.WIRETAP_ORDER)
        finding = analyzer.analyze([item])[item.evidence_id]
        assert finding.outcome is Admissibility.ADMISSIBLE

    def test_no_process_needed_no_process_held(self, analyzer):
        item = make_item(free_action(), ProcessKind.NONE)
        finding = analyzer.analyze([item])[item.evidence_id]
        assert finding.outcome is Admissibility.ADMISSIBLE


class TestFruitOfThePoisonousTree:
    def test_derivative_of_suppressed_is_tainted(self, analyzer):
        parent = make_item(warrant_action(), ProcessKind.NONE)
        child = derive(
            parent,
            description="analysis of illegal seizure",
            content="derived",
            action=free_action(),
            process_held=ProcessKind.NONE,
        )
        findings = analyzer.analyze([parent, child])
        assert (
            findings[parent.evidence_id].outcome
            is Admissibility.SUPPRESSED
        )
        assert (
            findings[child.evidence_id].outcome
            is Admissibility.SUPPRESSED_DERIVATIVE
        )
        assert "fruit" in findings[child.evidence_id].reason

    def test_taint_propagates_transitively(self, analyzer):
        parent = make_item(warrant_action(), ProcessKind.NONE)
        child = derive(parent, "level 1", "x", free_action())
        grandchild = derive(child, "level 2", "y", free_action())
        findings = analyzer.analyze([parent, child, grandchild])
        assert (
            findings[grandchild.evidence_id].outcome
            is Admissibility.SUPPRESSED_DERIVATIVE
        )

    def test_derivative_of_admitted_is_clean(self, analyzer):
        parent = make_item(warrant_action(), ProcessKind.SEARCH_WARRANT)
        child = derive(parent, "analysis", "x", free_action())
        findings = analyzer.analyze([parent, child])
        assert (
            findings[child.evidence_id].outcome is Admissibility.ADMISSIBLE
        )


class TestIntegrity:
    def test_broken_custody_suppressed(self, analyzer):
        item = make_item(free_action(), ProcessKind.NONE)
        chain = ChainOfCustody(item, custodian="officer", time=1.0)
        item.content = "tampered"
        chain.transfer("locker", time=2.0)
        findings = analyzer.analyze(
            [item], custody={item.evidence_id: chain}
        )
        assert findings[item.evidence_id].outcome is Admissibility.SUPPRESSED
        assert "custody" in findings[item.evidence_id].reason

    def test_tampered_content_without_chain_suppressed(self, analyzer):
        item = make_item(free_action(), ProcessKind.NONE)
        item.content = "tampered"
        findings = analyzer.analyze([item])
        assert findings[item.evidence_id].outcome is Admissibility.SUPPRESSED

    def test_intact_chain_admitted(self, analyzer):
        item = make_item(free_action(), ProcessKind.NONE)
        chain = ChainOfCustody(item, custodian="officer", time=1.0)
        chain.transfer("locker", time=2.0)
        findings = analyzer.analyze(
            [item], custody={item.evidence_id: chain}
        )
        assert findings[item.evidence_id].outcome is Admissibility.ADMISSIBLE
