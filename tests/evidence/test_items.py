"""Unit tests for evidence items and derivation."""

from repro.core import (
    Actor,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ProcessKind,
    Timing,
)
from repro.evidence.items import EvidenceItem, derive
from repro.storage.hashing import sha256_hex


def make_action():
    return InvestigativeAction(
        description="seize records",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.GOVERNMENT_CUSTODY),
    )


def make_item(content="the data"):
    return EvidenceItem(
        description="records",
        content=content,
        acquired_by="det. k",
        acquired_at=5.0,
        action=make_action(),
        process_held=ProcessKind.SEARCH_WARRANT,
    )


class TestEvidenceItem:
    def test_hash_computed_at_creation(self):
        item = make_item("payload")
        assert item.content_hash == sha256_hex("payload")

    def test_integrity_check_passes_unchanged(self):
        assert make_item().verify_integrity()

    def test_integrity_check_fails_on_tamper(self):
        item = make_item()
        item.content = "edited after the fact"
        assert not item.verify_integrity()

    def test_ids_unique(self):
        assert make_item().evidence_id != make_item().evidence_id

    def test_explicit_hash_respected(self):
        item = EvidenceItem(
            description="d",
            content="x",
            acquired_by="a",
            acquired_at=0.0,
            action=make_action(),
            content_hash="deadbeef",
        )
        assert item.content_hash == "deadbeef"
        assert not item.verify_integrity()


class TestDerivation:
    def test_derive_links_parent(self):
        parent = make_item()
        child = derive(
            parent,
            description="analysis",
            content="derived analysis",
            action=make_action(),
        )
        assert child.derived_from == (parent.evidence_id,)
        assert child.acquired_by == parent.acquired_by
        assert child.acquired_at == parent.acquired_at
        assert child.process_held is parent.process_held

    def test_derive_overrides(self):
        parent = make_item()
        child = derive(
            parent,
            description="later analysis",
            content="x",
            action=make_action(),
            process_held=ProcessKind.NONE,
            acquired_at=9.0,
        )
        assert child.process_held is ProcessKind.NONE
        assert child.acquired_at == 9.0
