"""Unit tests for the chain of custody."""

import pytest

from repro.core import (
    Actor,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    Timing,
)
from repro.evidence.custody import BrokenChainError, ChainOfCustody
from repro.evidence.items import EvidenceItem


def make_item():
    return EvidenceItem(
        description="drive image",
        content="raw image bytes",
        acquired_by="det. k",
        acquired_at=1.0,
        action=InvestigativeAction(
            description="image drive",
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.STORED,
            context=EnvironmentContext(place=Place.GOVERNMENT_CUSTODY),
        ),
    )


class TestChain:
    def test_collection_entry_created(self):
        chain = ChainOfCustody(make_item(), custodian="det. k", time=1.0)
        assert len(chain.entries) == 1
        assert chain.entries[0].event == "collected"
        assert chain.current_custodian == "det. k"

    def test_transfer(self):
        chain = ChainOfCustody(make_item(), custodian="det. k", time=1.0)
        chain.transfer("lab", time=2.0)
        assert chain.current_custodian == "lab"
        assert "transferred from det. k" in chain.entries[-1].event

    def test_record_event_keeps_custodian(self):
        chain = ChainOfCustody(make_item(), custodian="det. k", time=1.0)
        chain.record_event("verified image hash", time=2.0)
        assert chain.current_custodian == "det. k"
        assert len(chain.entries) == 2

    def test_backwards_time_rejected(self):
        chain = ChainOfCustody(make_item(), custodian="det. k", time=5.0)
        with pytest.raises(BrokenChainError):
            chain.transfer("lab", time=4.0)
        with pytest.raises(BrokenChainError):
            chain.record_event("x", time=1.0)


class TestIntegrity:
    def test_untouched_chain_intact(self):
        chain = ChainOfCustody(make_item(), custodian="det. k", time=1.0)
        chain.transfer("lab", time=2.0)
        chain.transfer("court", time=3.0)
        assert chain.intact()

    def test_tamper_between_transfers_detected(self):
        item = make_item()
        chain = ChainOfCustody(item, custodian="det. k", time=1.0)
        item.content = "altered image bytes"
        chain.transfer("lab", time=2.0)  # hash recorded post-tamper
        assert not chain.intact()

    def test_tamper_after_final_entry_detected(self):
        item = make_item()
        chain = ChainOfCustody(item, custodian="det. k", time=1.0)
        item.content = "altered late"
        assert not chain.intact()
