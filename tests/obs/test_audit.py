"""Audit frames and the acquisition/authorization correlation query."""

import itertools

from repro import obs
from repro.obs import ACQUISITION_SPAN, TraceCollector
from repro.obs.audit import (
    acquisition_spans,
    render_audit_report,
    unauthorized_acquisitions,
)


def fake_clock():
    ticks = itertools.count()
    return lambda: float(next(ticks))


class TestAuditFrames:
    def test_spans_are_stamped_with_the_enclosing_frame(self):
        collector = TraceCollector(clock=fake_clock())
        collector.push_audit({"docket_id": 1, "instrument_id": 5})
        with collector.span(ACQUISITION_SPAN, scene=18):
            pass
        collector.pop_audit()
        (record,) = collector.spans
        assert record.audit == {"docket_id": 1, "instrument_id": 5}

    def test_nested_frames_merge_inner_wins(self):
        collector = TraceCollector(clock=fake_clock())
        collector.push_audit({"docket_id": 1, "instrument_id": 5})
        collector.push_audit({"instrument_id": 9})
        assert collector.current_audit() == {
            "docket_id": 1,
            "instrument_id": 9,
        }
        collector.pop_audit()
        assert collector.current_audit() == {
            "docket_id": 1,
            "instrument_id": 5,
        }

    def test_audit_helper_drops_none_fields(self):
        collector = obs.enable(TraceCollector(clock=fake_clock()))
        with obs.audit(docket_id=1, instrument_id=None):
            with obs.span(ACQUISITION_SPAN):
                pass
        obs.disable()
        (record,) = collector.spans
        assert record.audit == {"docket_id": 1}

    def test_spans_outside_any_frame_carry_empty_audit(self):
        collector = TraceCollector(clock=fake_clock())
        with collector.span("free"):
            pass
        assert collector.spans[0].audit == {}


class TestCorrelationQuery:
    def _trace(self):
        collector = TraceCollector(clock=fake_clock())
        collector.push_audit({"docket_id": 1, "instrument_id": 7})
        with collector.span(ACQUISITION_SPAN, scene=4, needs_process=True):
            pass
        collector.pop_audit()
        with collector.span(ACQUISITION_SPAN, scene=1, needs_process=False):
            pass
        with collector.span(ACQUISITION_SPAN, scene=12, needs_process=True):
            pass  # gated, no frame: the accountability hole
        with collector.span("pipeline.suppression", scene=4):
            pass
        return collector.spans

    def test_acquisition_spans_filters_by_name(self):
        spans = acquisition_spans(self._trace())
        assert [record.attrs["scene"] for record in spans] == [4, 1, 12]

    def test_unauthorized_means_gated_without_instrument(self):
        holes = unauthorized_acquisitions(self._trace())
        assert [record.attrs["scene"] for record in holes] == [12]

    def test_report_names_the_hole_and_counts(self):
        report = render_audit_report(self._trace())
        assert "UNAUTHORIZED" in report
        assert "3 acquisition span(s), 1 unauthorized" in report

    def test_empty_trace_renders_placeholder(self):
        assert "no acquisition spans" in render_audit_report([])
