"""Span collection: nesting, finish order, merging, and the noop path."""

import itertools

import pytest

from repro import obs
from repro.obs import NOOP_SPAN, NoopSpan, SpanRecord, TraceCollector


def fake_clock():
    ticks = itertools.count()
    return lambda: float(next(ticks))


class TestNesting:
    def test_children_finish_before_parents(self):
        collector = TraceCollector(clock=fake_clock())
        with collector.span("outer"):
            with collector.span("inner"):
                pass
        names = [record.name for record in collector.spans]
        assert names == ["inner", "outer"]

    def test_parent_ids_follow_with_scoping(self):
        collector = TraceCollector(clock=fake_clock())
        with collector.span("outer"):
            with collector.span("middle"):
                with collector.span("leaf"):
                    pass
            with collector.span("sibling"):
                pass
        by_name = {record.name: record for record in collector.spans}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["leaf"].parent_id == by_name["middle"].span_id
        assert by_name["sibling"].parent_id == by_name["outer"].span_id

    def test_out_of_order_close_raises(self):
        collector = TraceCollector(clock=fake_clock())
        outer = collector.span("outer")
        inner = collector.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="nest"):
            collector._close(outer)

    def test_events_parent_under_open_span(self):
        collector = TraceCollector(clock=fake_clock())
        with collector.span("outer") as outer:
            record = collector.event("tick", detail=1)
        assert record.parent_id == outer.span_id
        assert record.duration == 0.0

    def test_exception_is_recorded_and_propagates(self):
        collector = TraceCollector(clock=fake_clock())
        with pytest.raises(ValueError):
            with collector.span("doomed"):
                raise ValueError("boom")
        (record,) = collector.spans
        assert record.attrs["error"] == "ValueError"

    def test_set_attaches_attributes(self):
        collector = TraceCollector(clock=fake_clock())
        with collector.span("s", kind="a") as span:
            span.set(result="ok")
        (record,) = collector.spans
        assert record.attrs == {"kind": "a", "result": "ok"}

    def test_sim_time_rides_along(self):
        collector = TraceCollector(clock=fake_clock())
        with collector.span("s", sim_time=42.5):
            pass
        assert collector.spans[0].sim_time == 42.5


class TestAdopt:
    def test_renumbers_ids_preserving_shape(self):
        worker = TraceCollector(clock=fake_clock())
        with worker.span("case"):
            with worker.span("step"):
                pass
        parent = TraceCollector(clock=fake_clock())
        with parent.span("campaign"):
            with parent.span("other"):
                pass
            parent.adopt(worker.export_records())
        by_name = {record.name: record for record in parent.spans}
        assert by_name["step"].parent_id == by_name["case"].span_id
        assert by_name["case"].parent_id == by_name["campaign"].span_id
        ids = [record.span_id for record in parent.spans]
        assert len(set(ids)) == len(ids)

    def test_explicit_parent_id_wins(self):
        worker = TraceCollector(clock=fake_clock())
        with worker.span("case"):
            pass
        parent = TraceCollector(clock=fake_clock())
        with parent.span("root") as root:
            pass
        parent.adopt(worker.export_records(), parent_id=root.span_id)
        assert parent.spans[-1].parent_id == root.span_id

    def test_round_trips_through_dicts(self):
        worker = TraceCollector(clock=fake_clock())
        with worker.span("case", sim_time=1.5, scene=18):
            pass
        payload = worker.export_records()
        restored = SpanRecord.from_dict(payload[0])
        assert restored == worker.spans[0]


class TestDisabledPath:
    def test_disabled_span_is_the_shared_noop_singleton(self):
        obs.reset()
        assert obs.span("engine.evaluate", scene=18) is NOOP_SPAN
        assert obs.event("tick") is None

    def test_noop_span_is_inert_and_chainable(self):
        with NOOP_SPAN as span:
            assert span.set(anything=1) is NOOP_SPAN
        assert NOOP_SPAN.duration == 0.0
        assert isinstance(NOOP_SPAN, NoopSpan)

    def test_enable_collects_then_disable_stops(self):
        collector = obs.enable(TraceCollector(clock=fake_clock()))
        with obs.span("live"):
            pass
        returned = obs.disable()
        assert returned is collector
        assert [record.name for record in collector.spans] == ["live"]
        assert obs.span("after") is NOOP_SPAN
