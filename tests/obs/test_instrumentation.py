"""End-to-end instrumentation and the disabled-mode cost contract."""

import time

from repro import obs
from repro.core import ComplianceEngine, RulingCache, build_table1
from repro.investigation.pipeline import InvestigationPipeline
from repro.workloads import action_corpus


class TestEngineInstrumentation:
    def test_disabled_engine_records_nothing(self):
        obs.reset()
        engine = ComplianceEngine()
        engine.evaluate_many([s.action for s in build_table1()])
        assert obs.OBS.collector is None
        assert obs.OBS.registry.names() == []

    def test_enabled_engine_emits_spans_and_metrics(self):
        obs.reset()
        collector = obs.enable()
        engine = ComplianceEngine()
        actions = [s.action for s in build_table1()]
        engine.evaluate_many(actions)
        engine.evaluate(actions[0])
        obs.disable()
        names = [record.name for record in collector.spans]
        assert "engine.evaluate_many" in names
        assert "engine.evaluate" in names
        registry = obs.OBS.registry
        assert registry.counter("repro_engine_evaluations_total").value() == 1.0
        batch = registry.counter("repro_engine_batch_actions_total")
        assert batch.value() == float(len(actions))

    def test_ruling_cache_gauges_track_live_stats(self):
        obs.reset()
        cache = RulingCache()
        engine = ComplianceEngine(cache=cache)
        obs.bind_ruling_cache(cache.stats)
        action = build_table1()[0].action
        engine.evaluate(action)
        engine.evaluate(action)
        text = obs.OBS.registry.render_text()
        assert 'repro_ruling_cache_hits{cache="engine"} 1' in text
        assert 'repro_ruling_cache_misses{cache="engine"} 1' in text


class TestPipelineInstrumentation:
    def test_gated_acquisitions_carry_instrument_and_docket(self):
        obs.reset()
        collector = obs.enable()
        InvestigationPipeline().run_all(build_table1(), obtain_process=True)
        obs.disable()
        gated = [
            record
            for record in obs.acquisition_spans(collector.spans)
            if record.attrs.get("needs_process")
        ]
        assert gated, "Table 1 has process-gated scenes"
        for record in gated:
            assert record.audit.get("instrument_id") is not None
            assert record.audit.get("docket_id") is not None
        assert obs.unauthorized_acquisitions(collector.spans) == []

    def test_non_comply_run_exposes_unauthorized_acquisitions(self):
        obs.reset()
        collector = obs.enable()
        InvestigationPipeline().run_all(build_table1(), obtain_process=False)
        obs.disable()
        holes = obs.unauthorized_acquisitions(collector.spans)
        assert len(holes) == 9  # the paper's nine process-gated scenes


class TestDisabledOverhead:
    def test_disabled_batch_path_skips_all_telemetry_calls(self):
        # Structural check: the public method must delegate straight to
        # the impl with no span bookkeeping when disabled.  A collector
        # left attached but not enabled must also stay empty.
        obs.reset()
        obs.OBS.collector = obs.TraceCollector()
        engine = ComplianceEngine()
        engine.evaluate_many(action_corpus(50, seed=3))
        assert obs.OBS.collector.spans == []

    def test_disabled_overhead_is_bounded(self):
        # Generous 1.5x wall-clock bound; the bench gates the real <3%
        # ceiling.  Warm cache so both passes do identical work.
        obs.reset()
        corpus = action_corpus(800, seed=3)
        engine = ComplianceEngine(cache=RulingCache(maxsize=2000))
        engine.evaluate_many(corpus)

        def best_of(fn, reps=5):
            times = []
            for _ in range(reps):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        public_s = best_of(lambda: engine.evaluate_many(corpus))
        impl_s = best_of(lambda: engine._evaluate_many_impl(corpus))
        assert public_s <= impl_s * 1.5
