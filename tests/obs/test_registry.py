"""Metrics registry: instrument semantics, quantiles, and exposition."""

import math
import statistics

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments_and_reads(self):
        counter = Counter("repro_things_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_rejects_negative_increment(self):
        counter = Counter("repro_things_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_labelled_series_are_independent(self):
        counter = Counter("repro_things_total")
        counter.inc(kind="a")
        counter.inc(3, kind="b")
        assert counter.value(kind="a") == 1.0
        assert counter.value(kind="b") == 3.0
        assert counter.value(kind="c") == 0.0

    def test_rejects_invalid_metric_name(self):
        with pytest.raises(ValueError):
            Counter("kebab-case-name")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_depth")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value() == 7.0


class TestHistogramQuantiles:
    def test_matches_statistics_quantiles_within_bucket_width(self):
        # Uniform samples over (0, 1): every populated bucket is at most
        # DEFAULT_BUCKETS-spaced, so interpolation error is bounded by
        # the widest populated bucket's width.
        histogram = Histogram("repro_latency_seconds")
        samples = [(i % 997) / 997.0 + 0.0005 for i in range(2000)]
        for value in samples:
            histogram.observe(value)
        exact = statistics.quantiles(samples, n=100, method="inclusive")
        widest = max(
            b - a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
            if a <= 1.0
        )
        for q, reference in ((0.50, exact[49]), (0.95, exact[94]), (0.99, exact[98])):
            assert abs(histogram.quantile(q) - reference) <= widest

    def test_min_and_max_pin_the_tails(self):
        histogram = Histogram("repro_latency_seconds", buckets=[10.0])
        for value in (0.25, 0.5, 0.75):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 0.25
        assert histogram.quantile(1.0) == 0.75

    def test_empty_histogram_quantile_is_nan(self):
        assert math.isnan(Histogram("repro_empty").quantile(0.5))

    def test_percentiles_keys(self):
        histogram = Histogram("repro_latency_seconds")
        histogram.observe(0.5)
        assert set(histogram.percentiles()) == {"p50", "p95", "p99"}

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            Histogram("repro_x").quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_a_total") is registry.counter(
            "repro_a_total"
        )

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total")
        with pytest.raises(TypeError):
            registry.gauge("repro_a_total")

    def test_render_text_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_evals_total", "Total evaluations.").inc(3)
        registry.gauge("repro_depth").set(2.0)
        histogram = registry.histogram(
            "repro_latency_seconds", buckets=[0.1, 1.0]
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.render_text()
        assert "# HELP repro_evals_total Total evaluations." in text
        assert "# TYPE repro_evals_total counter" in text
        assert "repro_evals_total 3" in text
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_latency_seconds_count 2" in text

    def test_callback_gauge_reads_live_value_at_render(self):
        registry = MetricsRegistry()
        state = {"value": 1.0}
        registry.gauge_fn("repro_live", lambda: state["value"])
        assert "repro_live 1" in registry.render_text()
        state["value"] = 7.0
        assert "repro_live 7" in registry.render_text()

    def test_callback_gauge_holds_one_series_per_label_set(self):
        # The per-shard binding pattern: every shard registers its private
        # cache counter under the same name with a distinguishing label,
        # and no shard's series clobbers another's.
        registry = MetricsRegistry()
        shards = {"0": 10.0, "1": 20.0, "2": 30.0}
        for shard in shards:
            registry.gauge_fn(
                "repro_cache_hits",
                (lambda s=shard: shards[s]),
                labels={"shard": shard},
            )
        text = registry.render_text()
        for shard, value in shards.items():
            assert f'repro_cache_hits{{shard="{shard}"}} {int(value)}' in text
        gauge = registry.get("repro_cache_hits")
        assert gauge.value(shard="1") == 20.0
        shards["1"] = 25.0
        assert gauge.value(shard="1") == 25.0

    def test_callback_gauge_rebind_replaces_same_label_set_only(self):
        registry = MetricsRegistry()
        registry.gauge_fn("repro_live", lambda: 1.0, labels={"shard": "0"})
        registry.gauge_fn("repro_live", lambda: 2.0, labels={"shard": "1"})
        registry.gauge_fn("repro_live", lambda: 9.0, labels={"shard": "0"})
        gauge = registry.get("repro_live")
        assert gauge.value(shard="0") == 9.0
        assert gauge.value(shard="1") == 2.0

    def test_callback_gauge_unlabelled_value_requires_unique_series(self):
        registry = MetricsRegistry()
        gauge = registry.gauge_fn("repro_live", lambda: 4.0, labels={"shard": "0"})
        assert gauge.value() == 4.0  # sole series: unlabelled read resolves
        registry.gauge_fn("repro_live", lambda: 5.0, labels={"shard": "1"})
        with pytest.raises(KeyError):
            gauge.value()  # ambiguous now
        assert gauge.value(shard="1") == 5.0


class TestSubMicrosecondBuckets:
    def test_default_buckets_start_at_100ns(self):
        assert DEFAULT_BUCKETS[0] == 1e-7
        assert 2.5e-7 in DEFAULT_BUCKETS
        assert 5e-7 in DEFAULT_BUCKETS
        assert 1e-6 in DEFAULT_BUCKETS
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_cached_ruling_scale_p50_interpolates_inside_a_bucket(self):
        # ~2 µs observations must land strictly inside (1e-6, 2.5e-6],
        # not be clamped to the lowest bucket edge.
        histogram = Histogram("repro_ruling_seconds")
        for i in range(1000):
            histogram.observe(1.8e-6 + (i % 10) * 4e-8)
        p50 = histogram.quantile(0.50)
        assert 1e-6 < p50 <= 2.5e-6
        assert p50 != DEFAULT_BUCKETS[0]

    def test_sub_microsecond_observations_spread_over_new_buckets(self):
        histogram = Histogram("repro_lookup_seconds")
        for value in (0.5e-7, 2e-7, 4e-7, 8e-7):
            for _ in range(100):
                histogram.observe(value)
        # With the 100 ns ladder the quartile boundaries are resolved by
        # distinct buckets rather than one giant (-inf, 1e-6] bin.
        assert histogram.quantile(0.20) <= 1e-7
        assert 1e-7 < histogram.quantile(0.45) <= 2.5e-7
        assert 2.5e-7 < histogram.quantile(0.70) <= 5e-7
        assert 5e-7 < histogram.quantile(0.95) <= 1e-6
