"""The scenario packs: real substrates under the workflow engine."""

import pytest

from repro.core.enums import ProcessKind
from repro.workflow.engine import WorkflowEngine
from repro.workflow.journal import load_journal
from repro.workflow.packs import get_pack, pack_names
from repro.workflow.report import StepStatus


class TestRegistry:
    def test_both_packs_registered(self):
        assert pack_names() == ("mailstore-triage", "photo-recovery")

    def test_unknown_pack_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            get_pack("nope")

    def test_source_paths_exist(self):
        for name in pack_names():
            for path in get_pack(name).source_paths():
                assert path.exists()


@pytest.mark.parametrize("name", ["photo-recovery", "mailstore-triage"])
class TestPackRuns:
    def test_run_completes_with_all_steps(self, name, tmp_path):
        pack = get_pack(name)
        subject = pack.build_subject(7, None)
        result = WorkflowEngine(pack.build_spec()).run(
            subject, seed=7, journal_path=tmp_path / "j.jsonl"
        )
        assert result.status == "completed"
        assert not result.suppressed
        spec = pack.build_spec()
        assert len(result.outcomes) == len(spec.steps)
        for outcome in result.outcomes:
            assert outcome.status is StepStatus.COMPLETED, outcome
        # run-start + one record per step + run-complete
        records = load_journal(tmp_path / "j.jsonl")
        assert len(records) == len(spec.steps) + 2
        assert records[0]["kind"] == "run-start"
        assert records[-1]["kind"] == "run-complete"

    def test_same_seed_is_byte_identical(self, name, tmp_path):
        pack = get_pack(name)

        def one_run():
            subject = pack.build_subject(11, None)
            return WorkflowEngine(pack.build_spec()).run(subject, seed=11)

        first, second = one_run(), one_run()
        assert first.report_text == second.report_text
        assert first.artifacts.hash_set() == second.artifacts.hash_set()

    def test_different_seeds_differ(self, name):
        pack = get_pack(name)
        runs = []
        for seed in (3, 4):
            subject = pack.build_subject(seed, None)
            runs.append(
                WorkflowEngine(pack.build_spec()).run(subject, seed=seed)
            )
        assert runs[0].artifacts.hash_set() != runs[1].artifacts.hash_set()

    def test_spec_passes_the_static_gate(self, name):
        WorkflowEngine(get_pack(name).build_spec()).check_legality()


class TestPackLegalStructure:
    def test_photo_recovery_gates_imaging_on_a_warrant(self):
        spec = get_pack("photo-recovery").build_spec()
        acquire = spec.step("acquire_image")
        assert acquire.gate is ProcessKind.SEARCH_WARRANT
        assert acquire.legal_action is not None

    def test_mailstore_uses_two_process_tiers(self):
        spec = get_pack("mailstore-triage").build_spec()
        gates = {step.step_id: step.gate for step in spec.gated_steps()}
        assert gates == {
            "inventory": ProcessKind.SUBPOENA,
            "acquire_content": ProcessKind.SEARCH_WARRANT,
        }

    def test_mailstore_content_taints_through_ungated_hops(self):
        plan = get_pack("mailstore-triage").build_spec().to_plan()
        notes = [step.note for step in plan.steps]
        assert notes == ["inventory", "acquire_content"]
        # acquire_content consumes sca.roles, produced by an ungated
        # step fed by the subpoenaed inventory — the evidence edge must
        # survive that hop into the plan IR.
        assert plan.steps[1].uses == (1,)
