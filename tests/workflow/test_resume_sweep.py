"""The acceptance gate: crash at every boundary, resume byte-identically.

These are the issue's headline tests — a run killed at *any* journal
record boundary, including under live storage-fault injection and even
when the baseline run itself aborts, must resume to the same final
report bytes, artifact hash set, custody chain, and suppression
outcome.
"""

import pytest

from repro.workflow.faultplan import WorkflowFaultPlan
from repro.workflow.packs import get_pack, pack_names
from repro.workflow.verify import _run_once, chaos_sample, resume_sweep


@pytest.mark.parametrize("name", sorted(pack_names()))
class TestEveryBoundary:
    def test_plain_sweep(self, name, tmp_path):
        report = resume_sweep(name, seed=7, workdir=tmp_path)
        assert report.boundaries, "sweep checked nothing"
        assert report.ok, report.render()

    def test_sweep_under_storage_faults(self, name, tmp_path):
        plan = WorkflowFaultPlan(
            storage_read_probability=0.05,
            storage_bitrot_probability=0.01,
            fault_seed=11,
        )
        report = resume_sweep(name, seed=11, workdir=tmp_path, fault_plan=plan)
        assert report.ok, report.render()


class TestAbortedRunsResume:
    def test_photo_recovery_aborted_baseline_resumes_identically(
        self, tmp_path
    ):
        # Aggressive enough that acquisition exhausts its retries: the
        # baseline aborts and suppresses, and every crash boundary must
        # restore that exact degraded outcome.
        plan = WorkflowFaultPlan(
            storage_read_probability=0.25,
            storage_bitrot_probability=0.05,
            fault_seed=11,
        )
        baseline = _run_once(
            get_pack("photo-recovery"),
            7,
            tmp_path / "abort-baseline.jsonl",
            plan,
            None,
        )
        assert baseline.status == "aborted"
        assert baseline.suppressed

        report = resume_sweep(
            "photo-recovery", seed=7, workdir=tmp_path, fault_plan=plan
        )
        assert report.ok, report.render()


class TestChaosSample:
    @pytest.mark.parametrize("name", sorted(pack_names()))
    def test_chaos_plans_resume_identically(self, name, tmp_path):
        report = chaos_sample(name, tmp_path, n_plans=25)
        assert len(report.boundaries) == 25
        assert report.ok, report.render()
