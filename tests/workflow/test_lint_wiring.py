"""`repro workflow lint`: pack step bodies go through the AST linter.

The shipped packs must be clean; a deliberately bad pack module — an
ungated ``image_device`` call and a process re-application loop with no
backoff — must trip REPRO110 and REPRO113 through the same entry point.
"""

import textwrap

from repro.analysis import has_errors, run_lint
from repro.workflow.packs import get_pack, pack_names

_BAD_PACK = '''
"""A deliberately non-compliant pack module for lint wiring tests."""


def grab_everything(device):
    # No require_process / validity check on any path: REPRO110.
    image = image_device(device)
    return image


def hammer_the_court(investigator, court):
    application = investigator.apply_for("warrant")
    while not application.granted:
        # Re-applies without advancing simulated time: REPRO113.
        application = investigator.apply_for("warrant")
    return application
'''


class TestShippedPacksAreClean:
    def test_no_findings_in_any_registered_pack(self):
        paths = [
            path
            for name in pack_names()
            for path in get_pack(name).source_paths()
        ]
        run = run_lint(paths)
        assert not run.diagnostics, [
            f"{d.code}: {d.message}" for d in run.diagnostics
        ]


class TestBadStepBodiesAreCaught:
    def test_ungated_acquisition_and_hot_retry_loop_flagged(self, tmp_path):
        bad = tmp_path / "bad_pack.py"
        bad.write_text(textwrap.dedent(_BAD_PACK))
        run = run_lint([bad])
        codes = {diagnostic.code for diagnostic in run.diagnostics}
        assert "REPRO110" in codes, codes
        assert "REPRO113" in codes, codes
        assert has_errors(run.diagnostics)

    def test_cli_lint_surfaces_the_findings(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad_pack.py"
        bad.write_text(textwrap.dedent(_BAD_PACK))
        exit_code = main(["workflow", "lint", str(bad)])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "REPRO110" in output
        assert "REPRO113" in output

    def test_cli_lint_passes_on_the_shipped_packs(self, capsys):
        from repro.cli import main

        assert main(["workflow", "lint"]) == 0
        assert "no findings" in capsys.readouterr().out
