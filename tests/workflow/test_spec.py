"""Unit tests for the declarative workflow DSL and its plan compiler."""

import dataclasses

import pytest

from repro.core.enums import ProcessKind
from repro.workflow.packs.mailstore_triage import (
    CONTENT_ACTION,
    INVENTORY_ACTION,
)
from repro.workflow.spec import (
    StepSpec,
    WorkflowDefinitionError,
    WorkflowSpec,
)


def _noop(ctx):
    raise AssertionError("spec tests never execute step bodies")


def _step(step_id, inputs=(), outputs=("out",), **kwargs):
    return StepSpec(
        step_id=step_id,
        title=step_id,
        run=_noop,
        inputs=inputs,
        outputs=outputs,
        **kwargs,
    )


class TestStepSpecValidation:
    def test_empty_step_id_rejected(self):
        with pytest.raises(WorkflowDefinitionError, match="step_id"):
            _step("")

    def test_no_outputs_rejected(self):
        with pytest.raises(WorkflowDefinitionError, match="no outputs"):
            _step("a", outputs=())

    def test_duplicate_outputs_rejected(self):
        with pytest.raises(WorkflowDefinitionError, match="duplicate"):
            _step("a", outputs=("x", "x"))

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(WorkflowDefinitionError, match="timeout"):
            _step("a", timeout=0.0)


class TestWorkflowSpecValidation:
    def test_duplicate_step_ids_rejected(self):
        with pytest.raises(WorkflowDefinitionError, match="duplicate step"):
            WorkflowSpec(
                name="w",
                steps=(_step("a", outputs=("x",)), _step("a", outputs=("y",))),
            )

    def test_input_must_come_from_earlier_step(self):
        with pytest.raises(WorkflowDefinitionError, match="not .*produced"):
            WorkflowSpec(
                name="w",
                steps=(_step("a", inputs=("missing",), outputs=("x",)),),
            )

    def test_each_kind_has_one_producer(self):
        with pytest.raises(WorkflowDefinitionError, match="produced by both"):
            WorkflowSpec(
                name="w",
                steps=(_step("a", outputs=("x",)), _step("b", outputs=("x",))),
            )

    def test_gate_above_declared_instruments_rejected(self):
        with pytest.raises(WorkflowDefinitionError, match="gates on"):
            WorkflowSpec(
                name="w",
                instruments=(ProcessKind.SUBPOENA,),
                steps=(
                    _step(
                        "a",
                        outputs=("x",),
                        legal_action=CONTENT_ACTION,
                        gate=ProcessKind.SEARCH_WARRANT,
                    ),
                ),
            )


class TestDependencyGraph:
    def _spec(self):
        return WorkflowSpec(
            name="w",
            instruments=(
                ProcessKind.SUBPOENA,
                ProcessKind.SEARCH_WARRANT,
            ),
            steps=(
                _step(
                    "acquire",
                    outputs=("raw",),
                    legal_action=INVENTORY_ACTION,
                    gate=ProcessKind.SUBPOENA,
                ),
                _step("hash", inputs=("raw",), outputs=("hashes",)),
                _step(
                    "deep",
                    inputs=("hashes",),
                    outputs=("deep.out",),
                    legal_action=CONTENT_ACTION,
                    gate=ProcessKind.SEARCH_WARRANT,
                ),
            ),
        )

    def test_direct_and_transitive_dependencies(self):
        spec = self._spec()
        assert spec.dependencies("deep") == ("hash",)
        assert spec.transitive_dependencies("deep") == ("acquire", "hash")

    def test_to_plan_wires_gated_transitive_uses(self):
        plan = self._spec().to_plan()
        assert [step.note for step in plan.steps] == ["acquire", "deep"]
        # "deep" consumes "acquire" only through the ungated "hash" step,
        # and the evidence edge must survive the hop.
        assert plan.steps[1].uses == (1,)

    def test_spec_digest_changes_with_structure(self):
        spec = self._spec()
        renamed = dataclasses.replace(spec, name="other")
        assert spec.spec_digest() != renamed.spec_digest()
        assert spec.spec_digest() == self._spec().spec_digest()
