"""Unit tests for the append-only journal and its crash model."""

import json

import pytest

from repro.evidence.custody import CustodyEntry
from repro.workflow.artifacts import Artifact
from repro.workflow.journal import (
    Journal,
    JournalError,
    WorkflowCrash,
    artifact_from_record,
    artifact_to_record,
    custody_from_record,
    custody_to_record,
    load_journal,
)


class TestJournal:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.append({"kind": "run-start", "b": 2, "a": 1})
        journal.append({"kind": "step", "step_id": "x"})
        assert load_journal(path) == [
            {"kind": "run-start", "b": 2, "a": 1},
            {"kind": "step", "step_id": "x"},
        ]

    def test_records_are_canonical_json_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        Journal(path).append({"zeta": 1, "alpha": 2})
        assert path.read_text() == '{"alpha":2,"zeta":1}\n'

    def test_crash_fires_after_the_record_lands(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path, crash_after=2)
        journal.append({"n": 1})
        with pytest.raises(WorkflowCrash):
            journal.append({"n": 2})
        # The worst case: the record survived, the process did not.
        assert load_journal(path) == [{"n": 1}, {"n": 2}]

    def test_preexisting_records_count_toward_the_crash_point(self):
        journal = Journal(None, crash_after=3, existing=2)
        with pytest.raises(WorkflowCrash):
            journal.append({"n": 3})

    def test_memory_mode_holds_records(self):
        journal = Journal(None)
        journal.append({"n": 1})
        assert journal.memory_records == ({"n": 1},)

    def test_torn_final_line_is_discarded(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"n":1}\n{"n":2}\n{"truncat')
        assert load_journal(path) == [{"n": 1}, {"n": 2}]

    def test_interior_corruption_is_an_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"n":1}\ngarbage\n{"n":3}\n')
        with pytest.raises(JournalError, match="line 2"):
            load_journal(path)

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read"):
            load_journal(tmp_path / "nope.jsonl")


class TestSerialization:
    def test_artifact_roundtrip(self):
        artifact = Artifact(
            kind="image.raw",
            content=b"\x00\xffbinary",
            meta=(("source", "dev0"),),
            produced_by="acquire",
        )
        record = json.loads(json.dumps(artifact_to_record(artifact)))
        assert artifact_from_record(record) == artifact

    def test_artifact_hash_mismatch_rejected(self):
        record = artifact_to_record(Artifact(kind="k", content=b"good"))
        record["sha256"] = "0" * 64
        with pytest.raises(JournalError, match="hash mismatch"):
            artifact_from_record(record)

    def test_custody_roundtrip(self):
        entry = CustodyEntry(
            timestamp=12.5,
            custodian="workflow-engine",
            event="acquired image",
            content_hash="ab" * 32,
        )
        record = json.loads(json.dumps(custody_to_record(entry)))
        assert custody_from_record(record) == entry
