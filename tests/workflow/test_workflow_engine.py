"""Engine behaviour: gating, retries, degradation, journaling, resume."""

import pytest

from repro.core.enums import ProcessKind
from repro.faults.retry import RetryPolicy
from repro.workflow.context import StepFailure
from repro.workflow.engine import WorkflowEngine, WorkflowLegalityError
from repro.workflow.journal import load_journal
from repro.workflow.packs.mailstore_triage import (
    CONTENT_ACTION,
    INVENTORY_ACTION,
)
from repro.workflow.report import StepStatus
from repro.workflow.spec import OnFailure, StepSpec, WorkflowSpec


def _subject():
    from repro.workflow.context import Subject

    return Subject(
        subject_id="unit-subject",
        description="synthetic evidence for engine tests",
        fingerprint="fingerprint-bytes",
        action=INVENTORY_ACTION,
        payload=None,
    )


def _produce(ctx):
    return (ctx.make("seed.data", f"seeded {ctx.rng.randrange(1000)}"),)


def _spec(*steps, instruments=(ProcessKind.SUBPOENA,)):
    return WorkflowSpec(name="unit", steps=steps, instruments=instruments)


class TestHappyPath:
    def test_linear_run_completes(self, tmp_path):
        def consume(ctx):
            seen = ctx.input("seed.data").content.decode()
            return (ctx.make("derived", f"derived from: {seen}"),)

        spec = _spec(
            StepSpec(
                step_id="a", title="a", run=_produce, outputs=("seed.data",)
            ),
            StepSpec(
                step_id="b",
                title="b",
                run=consume,
                inputs=("seed.data",),
                outputs=("derived",),
            ),
        )
        result = WorkflowEngine(spec).run(
            _subject(), seed=3, journal_path=tmp_path / "j.jsonl"
        )
        assert result.status == "completed"
        assert not result.suppressed
        assert result.artifacts.kinds() == ("derived", "seed.data")
        assert result.outcome("b").status is StepStatus.COMPLETED
        # run-start + 2 steps + run-complete
        assert len(load_journal(tmp_path / "j.jsonl")) == 4

    def test_sim_time_accumulates_per_step_cost(self):
        spec = _spec(
            StepSpec(
                step_id="a",
                title="a",
                run=_produce,
                outputs=("seed.data",),
                sim_cost=25.0,
            ),
        )
        result = WorkflowEngine(spec).run(_subject(), seed=1)
        assert result.finished_at == 25.0

    def test_same_seed_reproduces_report_bytes(self):
        spec = _spec(
            StepSpec(
                step_id="a", title="a", run=_produce, outputs=("seed.data",)
            ),
        )
        one = WorkflowEngine(spec).run(_subject(), seed=9)
        two = WorkflowEngine(spec).run(_subject(), seed=9)
        other = WorkflowEngine(spec).run(_subject(), seed=10)
        assert one.report_text == two.report_text
        assert one.report_text != other.report_text


class TestLegalityGate:
    def test_underprocessed_workflow_rejected_before_running(self, tmp_path):
        ran = []

        def body(ctx):
            ran.append(ctx.step_id)
            return (ctx.make("mail.content", "contents"),)

        # Content demands a warrant; the workflow declares only a
        # subpoena.  The static gate must reject before the body runs.
        spec = _spec(
            StepSpec(
                step_id="grab",
                title="grab",
                run=body,
                outputs=("mail.content",),
                legal_action=CONTENT_ACTION,
                gate=ProcessKind.SUBPOENA,
            ),
        )
        journal = tmp_path / "never.jsonl"
        with pytest.raises(WorkflowLegalityError) as excinfo:
            WorkflowEngine(spec).run(_subject(), journal_path=journal)
        assert not ran
        assert not journal.exists()
        assert not excinfo.value.report.ok


class TestDegradation:
    def test_flaky_step_retries_to_success(self):
        def flaky(ctx):
            if ctx.attempt < 3:
                raise StepFailure(f"transient on attempt {ctx.attempt}")
            return (ctx.make("seed.data", "finally"),)

        spec = _spec(
            StepSpec(
                step_id="a",
                title="a",
                run=flaky,
                outputs=("seed.data",),
                retry=RetryPolicy(max_attempts=3, base_delay=10.0),
                sim_cost=5.0,
            ),
        )
        result = WorkflowEngine(spec).run(_subject(), seed=2)
        outcome = result.outcome("a")
        assert outcome.status is StepStatus.COMPLETED
        assert outcome.attempts == 3
        # 3 attempts x 5s cost + 10s + 20s backoff.
        assert result.finished_at == 45.0

    def test_skip_policy_degrades_and_cascades(self):
        def broken(ctx):
            raise StepFailure("always down")

        def downstream(ctx):
            return (ctx.make("derived", ctx.input("seed.data").sha256),)

        spec = _spec(
            StepSpec(
                step_id="a",
                title="a",
                run=broken,
                outputs=("seed.data",),
                retry=RetryPolicy(max_attempts=2, base_delay=1.0),
                on_failure=OnFailure.SKIP_WITH_PARTIAL_CONFIDENCE,
            ),
            StepSpec(
                step_id="b",
                title="b",
                run=downstream,
                inputs=("seed.data",),
                outputs=("derived",),
            ),
        )
        result = WorkflowEngine(spec).run(_subject(), seed=2)
        assert result.status == "completed"
        assert not result.suppressed
        assert result.outcome("a").status is StepStatus.SKIPPED
        # The consumer cannot run without its input, but the run itself
        # survives at partial confidence.
        assert result.outcome("b").status is StepStatus.SKIPPED
        assert "upstream unavailable" in result.outcome("b").detail

    def test_abort_policy_suppresses_and_halts(self):
        def broken(ctx):
            raise StepFailure("fatal")

        def never(ctx):  # pragma: no cover - must not run
            raise AssertionError("downstream ran after an abort")

        spec = _spec(
            StepSpec(
                step_id="a",
                title="a",
                run=broken,
                outputs=("seed.data",),
                on_failure=OnFailure.ABORT_AND_SUPPRESS,
            ),
            StepSpec(
                step_id="b",
                title="b",
                run=never,
                inputs=("seed.data",),
                outputs=("derived",),
            ),
        )
        result = WorkflowEngine(spec).run(_subject(), seed=2)
        assert result.status == "aborted"
        assert result.suppressed
        assert result.outcome("a").status is StepStatus.FAILED
        assert result.outcome("a").attempts == 1  # no retry under abort
        assert result.outcome("b").status is StepStatus.NOT_RUN

    def test_legal_violation_always_aborts_even_under_skip_policy(self):
        def overreach(ctx):
            ctx.require_process(ProcessKind.WIRETAP_ORDER)
            return (ctx.make("seed.data", "never"),)

        spec = _spec(
            StepSpec(
                step_id="a",
                title="a",
                run=overreach,
                outputs=("seed.data",),
                retry=RetryPolicy(max_attempts=3, base_delay=1.0),
                on_failure=OnFailure.SKIP_WITH_PARTIAL_CONFIDENCE,
            ),
        )
        result = WorkflowEngine(spec).run(_subject(), seed=2)
        assert result.status == "aborted"
        assert result.suppressed
        assert "legal violation" in result.suppression_reason
        assert result.outcome("a").attempts == 1  # never retried

    def test_timeout_counts_as_failure(self):
        spec = _spec(
            StepSpec(
                step_id="a",
                title="a",
                run=_produce,
                outputs=("seed.data",),
                sim_cost=100.0,
                timeout=50.0,
            ),
        )
        result = WorkflowEngine(spec).run(_subject(), seed=2)
        assert result.status == "aborted"
        assert "sim time" in result.suppression_reason


class TestResume:
    def _spec(self):
        def consume(ctx):
            return (ctx.make("derived", ctx.input("seed.data").sha256),)

        return _spec(
            StepSpec(
                step_id="a", title="a", run=_produce, outputs=("seed.data",)
            ),
            StepSpec(
                step_id="b",
                title="b",
                run=consume,
                inputs=("seed.data",),
                outputs=("derived",),
            ),
        )

    def test_resume_rejects_wrong_seed(self, tmp_path):
        from repro.workflow.journal import JournalError, WorkflowCrash

        journal = tmp_path / "j.jsonl"
        spec = self._spec()
        with pytest.raises(WorkflowCrash):
            WorkflowEngine(spec).run(
                _subject(), seed=5, journal_path=journal, crash_after=2
            )
        with pytest.raises(JournalError, match="seed"):
            WorkflowEngine(spec).resume(
                _subject(), seed=6, journal_path=journal
            )

    def test_resume_rejects_different_spec(self, tmp_path):
        from repro.workflow.journal import JournalError, WorkflowCrash

        journal = tmp_path / "j.jsonl"
        with pytest.raises(WorkflowCrash):
            WorkflowEngine(self._spec()).run(
                _subject(), seed=5, journal_path=journal, crash_after=2
            )
        other = _spec(
            StepSpec(
                step_id="only", title="o", run=_produce, outputs=("seed.data",)
            ),
        )
        with pytest.raises(JournalError, match="different workflow spec"):
            WorkflowEngine(other).resume(
                _subject(), seed=5, journal_path=journal
            )

    def test_resume_rejects_changed_evidence(self, tmp_path):
        import dataclasses

        from repro.workflow.journal import JournalError, WorkflowCrash

        journal = tmp_path / "j.jsonl"
        spec = self._spec()
        with pytest.raises(WorkflowCrash):
            WorkflowEngine(spec).run(
                _subject(), seed=5, journal_path=journal, crash_after=2
            )
        tampered = dataclasses.replace(
            _subject(), fingerprint="tampered-bytes"
        )
        with pytest.raises(JournalError, match="fingerprint"):
            WorkflowEngine(spec).resume(
                tampered, seed=5, journal_path=journal
            )

    def test_resume_skips_completed_steps(self, tmp_path):
        from repro.workflow.journal import WorkflowCrash

        runs = []

        def counting(ctx):
            runs.append(ctx.step_id)
            return (ctx.make("seed.data", "once"),)

        def consume(ctx):
            runs.append(ctx.step_id)
            return (ctx.make("derived", ctx.input("seed.data").sha256),)

        spec = _spec(
            StepSpec(
                step_id="a", title="a", run=counting, outputs=("seed.data",)
            ),
            StepSpec(
                step_id="b",
                title="b",
                run=consume,
                inputs=("seed.data",),
                outputs=("derived",),
            ),
        )
        journal = tmp_path / "j.jsonl"
        engine = WorkflowEngine(spec)
        # Crash after run-start + step a.
        with pytest.raises(WorkflowCrash):
            engine.run(_subject(), seed=5, journal_path=journal, crash_after=2)
        assert runs == ["a"]
        result = engine.resume(_subject(), seed=5, journal_path=journal)
        assert runs == ["a", "b"]  # a restored, not re-executed
        assert result.resumed
        assert result.outcome("a").restored
        assert not result.outcome("b").restored
        assert result.status == "completed"

    def test_resume_of_completed_run_is_a_pure_replay(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        spec = self._spec()
        engine = WorkflowEngine(spec)
        original = engine.run(_subject(), seed=5, journal_path=journal)
        size_after_run = len(load_journal(journal))
        replayed = engine.resume(_subject(), seed=5, journal_path=journal)
        assert replayed.report_text == original.report_text
        assert len(load_journal(journal)) == size_after_run  # no new records
