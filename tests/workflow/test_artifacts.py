"""Unit tests for workflow artifacts and the artifact store."""

import pytest

from repro.workflow.artifacts import Artifact, ArtifactStore


class TestArtifact:
    def test_content_hash_is_stable(self):
        one = Artifact(kind="image.raw", content=b"abc")
        two = Artifact(kind="image.raw", content=b"abc")
        assert one.sha256 == two.sha256
        assert len(one.sha256) == 64

    def test_meta_is_canonically_sorted(self):
        scrambled = Artifact(
            kind="k", content=b"x", meta=(("zulu", "1"), ("alpha", "2"))
        )
        sorted_meta = Artifact(
            kind="k", content=b"x", meta=(("alpha", "2"), ("zulu", "1"))
        )
        assert scrambled == sorted_meta
        assert scrambled.meta_value("alpha") == "2"

    def test_missing_meta_key_returns_default(self):
        artifact = Artifact(kind="k", content=b"x")
        assert artifact.meta_value("nope") == ""
        assert artifact.meta_value("nope", "fallback") == "fallback"

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Artifact(kind="", content=b"x")

    def test_describe_mentions_kind_and_hash(self):
        artifact = Artifact(kind="mail.hashes", content=b"x")
        text = artifact.describe()
        assert "mail.hashes" in text
        assert artifact.sha256[:12] in text


class TestArtifactStore:
    def test_duplicate_kind_rejected(self):
        store = ArtifactStore()
        store.add(Artifact(kind="k", content=b"1"))
        with pytest.raises(ValueError, match="duplicate"):
            store.add(Artifact(kind="k", content=b"2"))

    def test_hash_set_is_sorted_by_kind(self):
        store = ArtifactStore()
        store.add(Artifact(kind="zeta", content=b"z"))
        store.add(Artifact(kind="alpha", content=b"a"))
        lines = store.hash_set()
        assert [line.split(":", 1)[0] for line in lines] == ["alpha", "zeta"]

    def test_digest_depends_on_content(self):
        one = ArtifactStore()
        one.add(Artifact(kind="k", content=b"1"))
        two = ArtifactStore()
        two.add(Artifact(kind="k", content=b"2"))
        assert one.digest() != two.digest()

    def test_get_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            ArtifactStore().get("nothing")
