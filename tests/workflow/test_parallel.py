"""Batch fan-out: the process pool is an optimization, never a semantic."""

from repro.workflow.faultplan import WorkflowFaultPlan
from repro.workflow.parallel import resolve_workers, run_batch


class TestResolveWorkers:
    def test_explicit_workers_clamped_to_at_least_one(self):
        assert resolve_workers(0, 8) == 1
        assert resolve_workers(-3, 8) == 1
        assert resolve_workers(4, 8) == 4

    def test_default_caps_at_item_count(self):
        assert resolve_workers(None, 1) == 1


class TestBatch:
    def test_pool_matches_serial_byte_for_byte(self, tmp_path):
        serial = run_batch(
            "mailstore-triage",
            n_items=3,
            seed=50,
            journal_dir=tmp_path / "serial",
            max_workers=1,
        )
        pooled = run_batch(
            "mailstore-triage",
            n_items=3,
            seed=50,
            journal_dir=tmp_path / "pool",
            max_workers=2,
        )
        assert [s.report_sha256 for s in serial.summaries] == [
            s.report_sha256 for s in pooled.summaries
        ]
        assert [s.artifact_digest for s in serial.summaries] == [
            s.artifact_digest for s in pooled.summaries
        ]

    def test_items_journal_independently(self, tmp_path):
        batch = run_batch(
            "photo-recovery",
            n_items=2,
            seed=20,
            journal_dir=tmp_path,
            max_workers=1,
        )
        journals = sorted(p.name for p in tmp_path.glob("*.jsonl"))
        assert journals == [
            "photo-recovery-seed20.jsonl",
            "photo-recovery-seed21.jsonl",
        ]
        assert [s.seed for s in batch.summaries] == [20, 21]
        assert all(s.status == "completed" for s in batch.summaries)

    def test_fault_plan_reaches_every_item(self, tmp_path):
        plan = WorkflowFaultPlan(
            storage_read_probability=0.05, fault_seed=3
        )
        with_faults = run_batch(
            "mailstore-triage",
            n_items=2,
            seed=50,
            journal_dir=tmp_path / "faulty",
            max_workers=1,
            fault_plan=plan,
        )
        clean = run_batch(
            "mailstore-triage",
            n_items=2,
            seed=50,
            journal_dir=tmp_path / "clean",
            max_workers=1,
        )
        # The fault plan changes the substrate's behaviour, never the
        # evidence identity: subjects match, and every item still
        # reaches a terminal status.
        assert [s.subject_id for s in with_faults.summaries] == [
            s.subject_id for s in clean.summaries
        ]
        assert all(
            s.status in ("completed", "aborted")
            for s in with_faults.summaries
        )

    def test_render_is_stable(self, tmp_path):
        batch = run_batch(
            "mailstore-triage",
            n_items=1,
            seed=50,
            journal_dir=tmp_path,
            max_workers=1,
        )
        text = batch.render()
        assert "pack=mailstore-triage" in text
        assert "seed=50" in text
