"""The resilient pipeline under court faults (satellite b + retries)."""

import pytest

from repro.core import ProcessKind
from repro.core.scenarios import build_table1
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy
from repro.investigation.pipeline import (
    InvestigationPipeline,
    suppression_split,
)


def make_injector(*specs, seed=7):
    return FaultInjector(FaultPlan(seed=seed, specs=tuple(specs)))


def needs_process_scene():
    return next(
        s for s in build_table1() if s.paper_needs_process
    )


class TestValidityAtAcquisition:
    def test_instrument_expiring_in_the_lag_does_not_authorize(self):
        """Satellite (b): validity is checked when the warrant is
        *executed*, not when it issues."""
        injector = make_injector(
            FaultSpec(
                kind=FaultKind.INSTRUMENT_EXPIRY, probability=1.0, param=30.0
            )
        )
        pipeline = InvestigationPipeline(
            injector=injector, acquisition_lag=600.0
        )
        outcome = pipeline.run_scene(
            needs_process_scene(), obtain_process=True
        )
        assert outcome.process_obtained is ProcessKind.NONE
        assert outcome.suppressed
        assert any(
            "no longer valid at acquisition time" in note
            for note in outcome.interruptions
        )
        # The re-issued instrument expired too, and that is recorded.
        assert any(
            "also expired" in note for note in outcome.interruptions
        )

    def test_instrument_surviving_the_lag_authorizes(self):
        injector = make_injector(
            FaultSpec(
                kind=FaultKind.INSTRUMENT_EXPIRY,
                probability=1.0,
                param=3600.0,
            )
        )
        pipeline = InvestigationPipeline(
            injector=injector, acquisition_lag=600.0
        )
        outcome = pipeline.run_scene(
            needs_process_scene(), obtain_process=True
        )
        assert outcome.process_obtained is not ProcessKind.NONE
        assert not outcome.suppressed
        assert outcome.interruptions == ()

    def test_custody_log_carries_every_interruption(self):
        injector = make_injector(
            FaultSpec(
                kind=FaultKind.INSTRUMENT_EXPIRY, probability=1.0, param=1.0
            )
        )
        pipeline = InvestigationPipeline(
            injector=injector, acquisition_lag=600.0
        )
        outcome = pipeline.run_scene(
            needs_process_scene(), obtain_process=True
        )
        assert outcome.interruptions
        events = [entry.event for entry in outcome.custody.entries]
        for interruption in outcome.interruptions:
            assert any(interruption in event for event in events)


class TestRetryAfterDenial:
    def test_persistent_denial_exhausts_the_policy(self):
        injector = make_injector(
            FaultSpec(kind=FaultKind.COURT_DENIAL, probability=1.0)
        )
        pipeline = InvestigationPipeline(
            injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=60.0),
        )
        outcome = pipeline.run_scene(
            needs_process_scene(), obtain_process=True
        )
        assert outcome.process_obtained is ProcessKind.NONE
        assert outcome.application_attempts == 3
        assert outcome.suppressed
        assert any(
            "denied after 3 attempt(s)" in note
            for note in outcome.interruptions
        )

    def test_transient_denial_succeeds_on_reapplication(self):
        """A denial scheduled once: the first application dies, the
        re-application under backoff is granted."""
        injector = make_injector(
            FaultSpec(kind=FaultKind.COURT_DENIAL, at_times=(0.0,))
        )
        pipeline = InvestigationPipeline(
            injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=900.0),
        )
        outcome = pipeline.run_scene(
            needs_process_scene(), obtain_process=True
        )
        assert outcome.process_obtained is not ProcessKind.NONE
        assert outcome.application_attempts == 2
        assert not outcome.suppressed


class TestDefaultPathUnchanged:
    def test_no_injector_means_no_interruptions(self):
        pipeline = InvestigationPipeline()
        scenarios = build_table1()
        comply = pipeline.run_all(scenarios, obtain_process=True)
        assert all(o.interruptions == () for o in comply)
        assert all(not o.suppressed for o in comply)
        non_comply = pipeline.run_all(scenarios, obtain_process=False)
        assert suppression_split(non_comply) == (1.0, 0.0)

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError, match="acquisition_lag"):
            InvestigationPipeline(acquisition_lag=-1.0)
