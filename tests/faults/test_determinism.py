"""Satellite (c): same seed + same plan => byte-identical runs.

Runs the same faulted experiment twice in the same process and asserts
the injection logs match byte for byte and the pipeline outcomes are
identical — the property that makes any chaos failure reproducible from
its seed alone.
"""

from repro.core.engine import ComplianceEngine
from repro.core.scenarios import build_table1
from repro.faults.chaos import run_plan
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.investigation.pipeline import InvestigationPipeline

SEED = 1234


def _run_once():
    plan = FaultPlan.randomized(SEED, intensity=0.3)
    injector = FaultInjector(plan)
    pipeline = InvestigationPipeline(
        injector=injector, acquisition_lag=600.0
    )
    outcomes = pipeline.run_all(build_table1(), obtain_process=True)
    summaries = tuple(
        (
            outcome.scenario.number,
            outcome.process_obtained,
            outcome.admissibility,
            outcome.application_attempts,
            outcome.interruptions,
        )
        for outcome in outcomes
    )
    return injector.render_log(), summaries


class TestFaultDeterminism:
    def test_identical_logs_and_outcomes_across_runs(self):
        log_one, outcomes_one = _run_once()
        log_two, outcomes_two = _run_once()
        assert log_one == log_two
        assert outcomes_one == outcomes_two

    def test_randomized_plan_is_seed_pure(self):
        assert (
            FaultPlan.randomized(SEED).describe()
            == FaultPlan.randomized(SEED).describe()
        )

    def test_chaos_plan_digest_is_reproducible(self):
        scenarios = build_table1()
        engine = ComplianceEngine()
        first = run_plan(SEED, scenarios, engine=engine)
        second = run_plan(SEED, scenarios, engine=engine)
        assert first.log_digest == second.log_digest
        assert first == second
