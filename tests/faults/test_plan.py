"""Unit tests for fault plans and specs."""

import pytest

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_defaults_are_inert(self):
        spec = FaultSpec(kind=FaultKind.LINK_DROP)
        assert spec.probability == 0.0
        assert spec.at_times == ()
        assert spec.target == "*"

    @pytest.mark.parametrize("probability", [-0.1, 1.1])
    def test_probability_out_of_range(self, probability):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind=FaultKind.LINK_DROP, probability=probability)

    def test_negative_scheduled_time(self):
        with pytest.raises(ValueError, match="scheduled"):
            FaultSpec(kind=FaultKind.TAP_DROPOUT, at_times=(-1.0,))

    def test_negative_param(self):
        with pytest.raises(ValueError, match="param"):
            FaultSpec(kind=FaultKind.COURT_LATENCY, param=-5.0)

    def test_empty_target(self):
        with pytest.raises(ValueError, match="target"):
            FaultSpec(kind=FaultKind.LINK_DROP, target="")

    def test_target_matching(self):
        spec = FaultSpec(kind=FaultKind.LINK_DROP, target="link:a-b")
        assert spec.matches_target("link:a-b")
        assert spec.matches_target("link:a-b (upstream)")
        assert not spec.matches_target("link:b-c")
        assert FaultSpec(kind=FaultKind.LINK_DROP).matches_target("anything")

    def test_describe_is_stable(self):
        spec = FaultSpec(
            kind=FaultKind.COURT_LATENCY,
            probability=0.25,
            at_times=(3.0,),
            target="application:officer",
            param=120.0,
        )
        assert spec.describe() == (
            "court-latency p=0.250000 at=[3.000000] "
            "target=application:officer param=120.000000"
        )


class TestFaultPlan:
    def test_for_kind_preserves_order(self):
        first = FaultSpec(kind=FaultKind.LINK_DROP, probability=0.1)
        second = FaultSpec(kind=FaultKind.LINK_DROP, probability=0.2)
        other = FaultSpec(kind=FaultKind.TAP_DROPOUT, probability=0.3)
        plan = FaultPlan(seed=1, specs=(first, other, second))
        assert plan.for_kind(FaultKind.LINK_DROP) == (first, second)
        assert plan.for_kind(FaultKind.COURT_DENIAL) == ()

    def test_kinds_in_taxonomy_order(self):
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(kind=FaultKind.COURT_DENIAL, probability=0.1),
                FaultSpec(kind=FaultKind.LINK_DROP, probability=0.1),
            ),
        )
        assert plan.kinds() == (FaultKind.LINK_DROP, FaultKind.COURT_DENIAL)


class TestRandomizedPlan:
    def test_same_seed_same_plan(self):
        assert FaultPlan.randomized(42) == FaultPlan.randomized(42)

    def test_different_seeds_eventually_differ(self):
        plans = {FaultPlan.randomized(seed).describe() for seed in range(10)}
        assert len(plans) > 1

    def test_probabilities_bounded_by_intensity(self):
        for seed in range(30):
            plan = FaultPlan.randomized(seed, intensity=0.05)
            assert all(
                0.0 < spec.probability <= 0.05 for spec in plan.specs
            )

    def test_duration_kinds_get_params(self):
        for seed in range(50):
            plan = FaultPlan.randomized(seed)
            for spec in plan.for_kind(FaultKind.INSTRUMENT_EXPIRY):
                assert 1.0 <= spec.param <= 300.0
            for spec in plan.for_kind(FaultKind.COURT_LATENCY):
                assert spec.param >= 600.0

    @pytest.mark.parametrize("intensity", [0.0, 1.5, -0.2])
    def test_bad_intensity(self, intensity):
        with pytest.raises(ValueError, match="intensity"):
            FaultPlan.randomized(1, intensity=intensity)

    def test_kind_pool_respected(self):
        pool = (FaultKind.LINK_DROP, FaultKind.TAP_DROPOUT)
        for seed in range(30):
            plan = FaultPlan.randomized(seed, kinds=pool)
            assert set(plan.kinds()) <= set(pool)
