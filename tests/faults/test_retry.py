"""Unit tests for the retry policy and its driver."""

import pytest

from repro.faults.errors import CourtFault, FaultError
from repro.faults.retry import RetryPolicy, run_with_retries


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=10.0, multiplier=3.0
        )
        assert policy.schedule() == (10.0, 30.0, 90.0)
        assert policy.total_backoff() == 130.0

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=100.0, multiplier=10.0, max_delay=500.0
        )
        assert policy.schedule() == (100.0, 500.0, 500.0, 500.0)

    def test_single_attempt_has_empty_schedule(self):
        assert RetryPolicy(max_attempts=1).schedule() == ()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"base_delay": 100.0, "max_delay": 50.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_negative_retry_index(self):
        with pytest.raises(ValueError, match="retry index"):
            RetryPolicy().delay(-1)


class TestRunWithRetries:
    def test_first_attempt_success(self):
        result, attempts, elapsed = run_with_retries(
            lambda now: "done", RetryPolicy(), start=5.0
        )
        assert (result, attempts, elapsed) == ("done", 1, 0.0)

    def test_retries_advance_simulated_time(self):
        seen_times = []

        def flaky(now):
            seen_times.append(now)
            if len(seen_times) < 3:
                raise CourtFault("denied")
            return "granted"

        policy = RetryPolicy(max_attempts=3, base_delay=60.0, multiplier=2.0)
        result, attempts, elapsed = run_with_retries(flaky, policy)
        assert result == "granted"
        assert attempts == 3
        assert seen_times == [0.0, 60.0, 180.0]
        assert elapsed == 180.0

    def test_exhaustion_raises_last_error(self):
        def always_failing(now):
            raise CourtFault("denied")

        with pytest.raises(CourtFault):
            run_with_retries(
                always_failing, RetryPolicy(max_attempts=2, base_delay=1.0)
            )

    def test_unlisted_exceptions_propagate_immediately(self):
        calls = []

        def broken(now):
            calls.append(now)
            raise KeyError("not a fault")

        with pytest.raises(KeyError):
            run_with_retries(broken, RetryPolicy(max_attempts=5))
        assert len(calls) == 1

    def test_on_retry_callback_sees_backoff_times(self):
        observed = []

        def failing(now):
            raise FaultError("nope")

        with pytest.raises(FaultError):
            run_with_retries(
                failing,
                RetryPolicy(max_attempts=3, base_delay=10.0),
                on_retry=lambda index, exc, at: observed.append((index, at)),
            )
        assert observed == [(0, 10.0), (1, 30.0)]
