"""Unit tests for the retry policy and its driver."""

import pytest

from repro.faults.errors import CourtFault, FaultError
from repro.faults.retry import RetryPolicy, run_with_retries


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=10.0, multiplier=3.0
        )
        assert policy.schedule() == (10.0, 30.0, 90.0)
        assert policy.total_backoff() == 130.0

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=100.0, multiplier=10.0, max_delay=500.0
        )
        assert policy.schedule() == (100.0, 500.0, 500.0, 500.0)

    def test_single_attempt_has_empty_schedule(self):
        assert RetryPolicy(max_attempts=1).schedule() == ()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"base_delay": 100.0, "max_delay": 50.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_negative_retry_index(self):
        with pytest.raises(ValueError, match="retry index"):
            RetryPolicy().delay(-1)


class TestRunWithRetries:
    def test_first_attempt_success(self):
        result, attempts, elapsed = run_with_retries(
            lambda now: "done", RetryPolicy(), start=5.0
        )
        assert (result, attempts, elapsed) == ("done", 1, 0.0)

    def test_retries_advance_simulated_time(self):
        seen_times = []

        def flaky(now):
            seen_times.append(now)
            if len(seen_times) < 3:
                raise CourtFault("denied")
            return "granted"

        policy = RetryPolicy(max_attempts=3, base_delay=60.0, multiplier=2.0)
        result, attempts, elapsed = run_with_retries(flaky, policy)
        assert result == "granted"
        assert attempts == 3
        assert seen_times == [0.0, 60.0, 180.0]
        assert elapsed == 180.0

    def test_exhaustion_raises_last_error(self):
        def always_failing(now):
            raise CourtFault("denied")

        with pytest.raises(CourtFault):
            run_with_retries(
                always_failing, RetryPolicy(max_attempts=2, base_delay=1.0)
            )

    def test_unlisted_exceptions_propagate_immediately(self):
        calls = []

        def broken(now):
            calls.append(now)
            raise KeyError("not a fault")

        with pytest.raises(KeyError):
            run_with_retries(broken, RetryPolicy(max_attempts=5))
        assert len(calls) == 1

    def test_on_retry_callback_sees_backoff_times(self):
        observed = []

        def failing(now):
            raise FaultError("nope")

        with pytest.raises(FaultError):
            run_with_retries(
                failing,
                RetryPolicy(max_attempts=3, base_delay=10.0),
                on_retry=lambda index, exc, at: observed.append((index, at)),
            )
        assert observed == [(0, 10.0), (1, 30.0)]


class TestJitter:
    def test_zero_jitter_is_byte_identical_to_the_old_schedule(self):
        plain = RetryPolicy(max_attempts=4, base_delay=10.0, multiplier=3.0)
        explicit = RetryPolicy(
            max_attempts=4,
            base_delay=10.0,
            multiplier=3.0,
            jitter=0.0,
            jitter_seed=999,
        )
        assert plain.schedule() == explicit.schedule() == (10.0, 30.0, 90.0)

    def test_jittered_schedule_is_deterministic(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=10.0, jitter=0.25, jitter_seed=42
        )
        again = RetryPolicy(
            max_attempts=5, base_delay=10.0, jitter=0.25, jitter_seed=42
        )
        assert policy.schedule() == again.schedule()

    def test_jitter_stays_within_the_declared_fraction(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay=10.0,
            multiplier=2.0,
            jitter=0.25,
            jitter_seed=7,
        )
        for index, interval in enumerate(policy.schedule()):
            nominal = min(10.0 * 2.0**index, policy.max_delay)
            assert nominal * 0.75 <= interval <= nominal * 1.25

    def test_different_seeds_give_different_schedules(self):
        kwargs = dict(max_attempts=6, base_delay=10.0, jitter=0.5)
        one = RetryPolicy(jitter_seed=1, **kwargs)
        two = RetryPolicy(jitter_seed=2, **kwargs)
        assert one.schedule() != two.schedule()

    def test_jitter_is_per_index_not_call_order(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=10.0, jitter=0.3, jitter_seed=9
        )
        # Asking for index 3 first must not shift index 0's draw.
        late_first = (policy.delay(3), policy.delay(0))
        early_first = (policy.delay(0), policy.delay(3))
        assert late_first == (early_first[1], early_first[0])

    @pytest.mark.parametrize("jitter", [-0.1, 1.0, 1.5])
    def test_jitter_bounds_validated(self, jitter):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=jitter)


class TestMaxTotalBackoff:
    def test_total_is_clipped_not_truncated(self):
        policy = RetryPolicy(
            max_attempts=4,
            base_delay=10.0,
            multiplier=3.0,
            max_total_backoff=25.0,
        )
        # Unclipped: 10, 30, 90.  The budget admits 10, then 15 of the
        # 30, then nothing — but the retries themselves survive.
        assert policy.schedule() == (10.0, 15.0, 0.0)
        assert policy.total_backoff() == 25.0

    def test_generous_budget_changes_nothing(self):
        policy = RetryPolicy(
            max_attempts=4,
            base_delay=10.0,
            multiplier=3.0,
            max_total_backoff=1000.0,
        )
        assert policy.schedule() == (10.0, 30.0, 90.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_total_backoff"):
            RetryPolicy(max_total_backoff=-1.0)

    def test_run_with_retries_honours_the_cap(self):
        seen_times = []

        def flaky(now):
            seen_times.append(now)
            if len(seen_times) < 4:
                raise CourtFault("denied")
            return "granted"

        policy = RetryPolicy(
            max_attempts=4,
            base_delay=10.0,
            multiplier=3.0,
            max_total_backoff=25.0,
        )
        result, attempts, elapsed = run_with_retries(flaky, policy)
        assert result == "granted"
        assert attempts == 4
        assert seen_times == [0.0, 10.0, 25.0, 25.0]
        assert elapsed == 25.0
