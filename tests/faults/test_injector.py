"""Unit tests for the deterministic fault injector."""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec


def injector(*specs, seed=7):
    return FaultInjector(FaultPlan(seed=seed, specs=tuple(specs)))


class TestScheduledFaults:
    def test_fires_once_at_or_after_scheduled_time(self):
        inj = injector(
            FaultSpec(kind=FaultKind.TAP_DROPOUT, at_times=(5.0,))
        )
        assert not inj.fires(FaultKind.TAP_DROPOUT, time=4.9)
        assert inj.fires(FaultKind.TAP_DROPOUT, time=5.1)
        assert not inj.fires(FaultKind.TAP_DROPOUT, time=6.0)
        assert inj.fired(FaultKind.TAP_DROPOUT) == 1

    def test_each_scheduled_time_fires_independently(self):
        inj = injector(
            FaultSpec(kind=FaultKind.LINK_DROP, at_times=(1.0, 2.0))
        )
        assert inj.fires(FaultKind.LINK_DROP, time=1.0)
        assert inj.fires(FaultKind.LINK_DROP, time=2.5)
        assert not inj.fires(FaultKind.LINK_DROP, time=3.0)

    def test_scheduled_respects_target_filter(self):
        inj = injector(
            FaultSpec(
                kind=FaultKind.LINK_DROP, at_times=(1.0,), target="link:a-b"
            )
        )
        assert not inj.fires(FaultKind.LINK_DROP, target="link:c-d", time=2.0)
        assert inj.fires(FaultKind.LINK_DROP, target="link:a-b", time=2.0)


class TestProbabilisticFaults:
    def test_zero_probability_never_fires(self):
        inj = injector(FaultSpec(kind=FaultKind.LINK_DROP, probability=0.0))
        assert not any(
            inj.fires(FaultKind.LINK_DROP, time=t) for t in range(100)
        )

    def test_certain_probability_always_fires(self):
        inj = injector(FaultSpec(kind=FaultKind.LINK_DROP, probability=1.0))
        assert all(
            inj.fires(FaultKind.LINK_DROP, time=t) for t in range(20)
        )

    def test_decision_sequence_is_seed_deterministic(self):
        spec = FaultSpec(kind=FaultKind.RELAY_CHURN, probability=0.3)
        first = [
            injector(spec, seed=11).fires(FaultKind.RELAY_CHURN)
            for _ in range(1)
        ]
        one = injector(spec, seed=11)
        two = injector(spec, seed=11)
        decisions_one = [one.fires(FaultKind.RELAY_CHURN) for _ in range(200)]
        decisions_two = [two.fires(FaultKind.RELAY_CHURN) for _ in range(200)]
        assert decisions_one == decisions_two
        assert first[0] == decisions_one[0]

    def test_kind_streams_are_independent(self):
        """Adding a storage spec must not perturb link decisions."""
        link_only = injector(
            FaultSpec(kind=FaultKind.LINK_DROP, probability=0.3), seed=5
        )
        both = injector(
            FaultSpec(kind=FaultKind.LINK_DROP, probability=0.3),
            FaultSpec(kind=FaultKind.STORAGE_READ_ERROR, probability=0.5),
            seed=5,
        )
        sequence_a = []
        sequence_b = []
        for _ in range(100):
            sequence_a.append(link_only.fires(FaultKind.LINK_DROP))
            both.fires(FaultKind.STORAGE_READ_ERROR)
            sequence_b.append(both.fires(FaultKind.LINK_DROP))
        assert sequence_a == sequence_b


class TestMagnitude:
    def test_largest_matching_param_wins(self):
        inj = injector(
            FaultSpec(kind=FaultKind.COURT_LATENCY, param=60.0),
            FaultSpec(kind=FaultKind.COURT_LATENCY, param=600.0),
        )
        assert inj.magnitude(FaultKind.COURT_LATENCY) == 600.0

    def test_no_matching_spec_means_zero(self):
        inj = injector()
        assert inj.magnitude(FaultKind.COURT_LATENCY) == 0.0

    def test_target_filter_applies(self):
        inj = injector(
            FaultSpec(
                kind=FaultKind.LINK_REORDER, param=0.5, target="link:a-b"
            )
        )
        assert inj.magnitude(FaultKind.LINK_REORDER, "link:c-d") == 0.0
        assert inj.magnitude(FaultKind.LINK_REORDER, "link:a-b") == 0.5


class TestInjectionLog:
    def test_log_renders_stably(self):
        inj = injector(
            FaultSpec(kind=FaultKind.TAP_DROPOUT, at_times=(2.0,))
        )
        inj.fires(FaultKind.TAP_DROPOUT, target="tap:pen-1", time=2.0)
        assert inj.render_log() == (
            "t=2.000000 tap-dropout target=tap:pen-1 scheduled@2.000000"
        )

    def test_identical_seeds_identical_digests(self):
        spec = FaultSpec(kind=FaultKind.LINK_DROP, probability=0.4)
        runs = []
        for _ in range(2):
            inj = injector(spec, seed=99)
            for t in range(50):
                inj.fires(FaultKind.LINK_DROP, target="link:x-y", time=t)
            runs.append(inj.log_digest())
        assert runs[0] == runs[1]

    def test_consumer_records_appear_in_log(self):
        inj = injector()
        inj.record(
            FaultKind.COURT_DENIAL, "application:officer", "re-applying", 9.0
        )
        assert inj.fired() == 1
        assert "re-applying" in inj.render_log()
        assert inj.log[0].kind is FaultKind.COURT_DENIAL


class TestJsonlExport:
    def test_to_jsonl_one_object_per_record_in_firing_order(self):
        import json

        inj = injector(
            FaultSpec(kind=FaultKind.TAP_DROPOUT, at_times=(5.0,)),
            FaultSpec(kind=FaultKind.LINK_DROP, at_times=(1.0,)),
        )
        inj.fires(FaultKind.LINK_DROP, time=1.0)
        inj.fires(FaultKind.TAP_DROPOUT, time=5.0)
        lines = inj.to_jsonl().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert [r["kind"] for r in records] == [
            FaultKind.LINK_DROP.value,
            FaultKind.TAP_DROPOUT.value,
        ]
        assert inj.to_jsonl().endswith("\n")

    def test_to_jsonl_empty_when_nothing_fired(self):
        inj = injector(
            FaultSpec(kind=FaultKind.TAP_DROPOUT, at_times=(5.0,))
        )
        assert inj.to_jsonl() == ""

    def test_identical_seeds_render_identical_bytes(self):
        def run():
            inj = injector(
                FaultSpec(kind=FaultKind.COURT_DENIAL, probability=0.5),
                seed=13,
            )
            for t in range(10):
                inj.fires(FaultKind.COURT_DENIAL, time=float(t))
            return inj.to_jsonl()

        assert run() == run()

    def test_record_events_reach_the_trace_when_enabled(self):
        from repro import obs

        obs.reset()
        collector = obs.enable()
        inj = injector(
            FaultSpec(kind=FaultKind.TAP_DROPOUT, at_times=(5.0,))
        )
        inj.fires(FaultKind.TAP_DROPOUT, time=5.0)
        obs.disable()
        events = [r for r in collector.spans if r.name == "fault.injection"]
        assert len(events) == 1
        assert events[0].attrs["kind"] == FaultKind.TAP_DROPOUT.value
        assert events[0].sim_time == 5.0


class TestStreamBookmarks:
    def test_draw_and_consultation_counts_track_usage(self):
        inj = injector(
            FaultSpec(kind=FaultKind.LINK_DROP, probability=0.5), seed=3
        )
        for _ in range(5):
            inj.fires(FaultKind.LINK_DROP)
        inj.fires(FaultKind.STORAGE_READ_ERROR)  # no spec: consult, no draw
        assert inj.draw_counts() == {"link-drop": 5}
        assert inj.consultation_counts() == {
            "link-drop": 5,
            "storage-read-error": 1,
        }

    def test_fast_forward_resumes_the_decision_stream(self):
        spec = FaultSpec(kind=FaultKind.LINK_DROP, probability=0.4)
        original = injector(spec, seed=9)
        decisions = [original.fires(FaultKind.LINK_DROP) for _ in range(40)]

        interrupted = injector(spec, seed=9)
        for _ in range(25):
            interrupted.fires(FaultKind.LINK_DROP)
        resumed = injector(spec, seed=9)
        resumed.fast_forward(
            interrupted.draw_counts(), interrupted.consultation_counts()
        )
        tail = [resumed.fires(FaultKind.LINK_DROP) for _ in range(15)]
        assert tail == decisions[25:]

    def test_fast_forward_refuses_to_rewind(self):
        import pytest

        spec = FaultSpec(kind=FaultKind.LINK_DROP, probability=0.4)
        inj = injector(spec, seed=9)
        for _ in range(10):
            inj.fires(FaultKind.LINK_DROP)
        with pytest.raises(ValueError):
            inj.fast_forward({"link-drop": 3})

    def test_adopt_log_carries_prior_firings(self):
        spec = FaultSpec(kind=FaultKind.LINK_DROP, probability=1.0)
        original = injector(spec, seed=9)
        original.fires(FaultKind.LINK_DROP, time=1.0)
        original.fires(FaultKind.LINK_DROP, time=2.0)

        fresh = injector(spec, seed=9)
        fresh.adopt_log([record.to_dict() for record in original.log])
        assert [r.render() for r in fresh.log] == [
            r.render() for r in original.log
        ]

    def test_adopted_scheduled_firings_do_not_refire(self):
        spec = FaultSpec(kind=FaultKind.TAP_DROPOUT, at_times=(5.0,))
        original = injector(spec, seed=9)
        assert original.fires(FaultKind.TAP_DROPOUT, time=6.0)

        fresh = injector(spec, seed=9)
        fresh.adopt_log(list(original.log))
        assert not fresh.fires(FaultKind.TAP_DROPOUT, time=7.0)

    def test_seq_is_invisible_in_serialized_form(self):
        spec = FaultSpec(kind=FaultKind.LINK_DROP, probability=1.0)
        inj = injector(spec, seed=9)
        inj.fires(FaultKind.LINK_DROP, time=1.0)
        record = inj.log[0]
        assert record.seq >= 0
        assert "seq" not in record.to_dict()
        assert "seq" not in record.render()


class TestReplay:
    def test_replay_reproduces_the_log_without_randomness(self):
        spec = FaultSpec(kind=FaultKind.LINK_DROP, probability=0.5)
        original = injector(spec, seed=21)
        decisions = [
            original.fires(FaultKind.LINK_DROP, time=float(t))
            for t in range(30)
        ]
        assert any(decisions) and not all(decisions)

        replay = FaultInjector.replaying(original.plan, original.log)
        replayed = [
            replay.fires(FaultKind.LINK_DROP, time=float(t))
            for t in range(30)
        ]
        assert replayed == decisions
        assert replay.to_jsonl() == original.to_jsonl()

    def test_replay_covers_scheduled_and_probabilistic_kinds(self):
        specs = (
            FaultSpec(kind=FaultKind.LINK_DROP, probability=0.5),
            FaultSpec(kind=FaultKind.TAP_DROPOUT, at_times=(3.0, 8.0)),
        )
        original = injector(*specs, seed=4)
        for t in range(12):
            original.fires(FaultKind.LINK_DROP, time=float(t))
            original.fires(FaultKind.TAP_DROPOUT, time=float(t))

        replay = FaultInjector.replaying(original.plan, original.log)
        for t in range(12):
            replay.fires(FaultKind.LINK_DROP, time=float(t))
            replay.fires(FaultKind.TAP_DROPOUT, time=float(t))
        assert replay.to_jsonl() == original.to_jsonl()

    def test_quiet_consultations_stay_quiet_under_replay(self):
        spec = FaultSpec(kind=FaultKind.LINK_DROP, probability=0.0)
        original = injector(spec, seed=4)
        for t in range(5):
            assert not original.fires(FaultKind.LINK_DROP, time=float(t))
        replay = FaultInjector.replaying(original.plan, original.log)
        assert not any(
            replay.fires(FaultKind.LINK_DROP, time=float(t))
            for t in range(5)
        )
