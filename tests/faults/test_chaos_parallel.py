"""The chaos sweep through the process pool must be a pure speedup.

Plans are seed-isolated, so fanning them out across worker processes may
change wall time but never results: the pooled sweep must equal the
serial sweep plan for plan, and the determinism replay must keep holding.
"""

from repro.faults.chaos import _plan_worker, resolve_workers, run_chaos

SCENES = "4,6,18"  # a fast subset; the full table is covered elsewhere


class TestResolveWorkers:
    def test_auto_caps_at_plan_count(self):
        assert resolve_workers(None, 1) == 1
        assert resolve_workers(None, 10_000) >= 1

    def test_explicit_count_respected(self):
        assert resolve_workers(3, 25) == 3

    def test_floor_is_one(self):
        assert resolve_workers(0, 25) == 1
        assert resolve_workers(-4, 25) == 1


class TestPooledSweep:
    def test_pool_matches_serial_plan_for_plan(self):
        serial = run_chaos(
            seed=321, n_plans=4, scenes=SCENES, max_workers=1
        )
        pooled = run_chaos(
            seed=321, n_plans=4, scenes=SCENES, max_workers=2
        )
        assert pooled.results == serial.results
        assert pooled.deterministic
        assert pooled.ok == serial.ok

    def test_worker_entry_point_runs_one_plan(self):
        result = _plan_worker((321, SCENES, 0.15))
        serial = run_chaos(
            seed=321, n_plans=1, scenes=SCENES, max_workers=1
        )
        assert result == serial.results[0]

    def test_pool_preserves_seed_order(self):
        pooled = run_chaos(
            seed=50, n_plans=3, scenes=SCENES, max_workers=2
        )
        assert [r.seed for r in pooled.results] == [50, 51, 52]
