"""Each substrate's fault surface, exercised one fault at a time."""

import pytest

from repro.core import ProcessKind, Standard
from repro.court.application import Fact, ProcessApplication
from repro.court.docket import DEFAULT_VALIDITY
from repro.court.magistrate import Magistrate
from repro.faults.errors import StorageFault, TransientReadError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.netsim.address import IpAddress, MacAddress
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.netsim.sniffer import FullInterceptTap, PenRegisterTap
from repro.storage.blockdev import BlockDevice, image_device


def make_injector(*specs, seed=7):
    return FaultInjector(FaultPlan(seed=seed, specs=tuple(specs)))


def certain(kind, **kwargs):
    return FaultSpec(kind=kind, probability=1.0, **kwargs)


def wired_pair(injector=None):
    sim = Simulator()
    alice = Host("alice", sim, MacAddress(1), IpAddress(1))
    bob = Host("bob", sim, MacAddress(2), IpAddress(2))
    link = Link(sim, alice, bob, latency=0.01, injector=injector)
    return sim, alice, bob, link


def packet_to(dst_ip, payload="hello"):
    return Packet(
        src_mac=MacAddress(1),
        dst_mac=MacAddress(2),
        src_ip=IpAddress(1),
        dst_ip=dst_ip,
        src_port=1000,
        dst_port=80,
        payload=payload,
    )


class TestLinkFaults:
    def test_drop_loses_packet_after_tap_vantage(self):
        injector = make_injector(certain(FaultKind.LINK_DROP))
        sim, alice, bob, link = wired_pair(injector)
        tap = FullInterceptTap("full")
        link.attach_tap(tap)
        link.transmit(packet_to(bob.ip), alice)
        sim.run()
        assert bob.received == []
        assert link.packets_dropped == 1
        # The tap sits before the in-transit loss: it still observes.
        assert len(tap.captures) == 1

    def test_flap_loses_packet_before_tap_vantage(self):
        injector = make_injector(certain(FaultKind.LINK_FLAP))
        sim, alice, bob, link = wired_pair(injector)
        tap = FullInterceptTap("full")
        link.attach_tap(tap)
        link.transmit(packet_to(bob.ip), alice)
        sim.run()
        assert bob.received == []
        assert tap.captures == ()
        assert link.packets_dropped == 1

    def test_duplicate_delivers_twice(self):
        injector = make_injector(certain(FaultKind.LINK_DUPLICATE))
        sim, alice, bob, link = wired_pair(injector)
        link.transmit(packet_to(bob.ip), alice)
        sim.run()
        assert len(bob.received) == 2
        assert link.packets_duplicated == 1

    def test_reorder_lets_later_traffic_overtake(self):
        injector = make_injector(
            FaultSpec(
                kind=FaultKind.LINK_REORDER, at_times=(0.0,), param=0.5
            )
        )
        sim, alice, bob, link = wired_pair(injector)
        link.transmit(packet_to(bob.ip, payload="first"), alice)
        sim.schedule(
            0.1, lambda: link.transmit(packet_to(bob.ip, payload="second"), alice)
        )
        sim.run()
        assert [p.payload for p in bob.received] == ["second", "first"]

    def test_every_injection_is_logged(self):
        injector = make_injector(certain(FaultKind.LINK_DROP))
        sim, alice, bob, link = wired_pair(injector)
        link.transmit(packet_to(bob.ip), alice)
        sim.run()
        assert injector.fired(FaultKind.LINK_DROP) == 1
        assert "link:alice-bob" in injector.render_log()


class TestTapDropout:
    def test_dropout_loses_records_not_capability(self):
        """A pen register that misses packets never sees payload."""
        injector = make_injector(
            FaultSpec(kind=FaultKind.TAP_DROPOUT, at_times=(2.0,))
        )
        tap = PenRegisterTap("pen", injector=injector)
        tap.observe(packet_to(IpAddress(2), payload="secret one"), 1.0)
        tap.observe(packet_to(IpAddress(2), payload="secret two"), 2.0)
        tap.observe(packet_to(IpAddress(2), payload="secret three"), 3.0)
        assert tap.dropped_count == 1
        assert len(tap.records) == 2
        for record in tap.records:
            assert not hasattr(record, "payload")
            assert "secret" not in repr(record)

    def test_dropout_only_affects_matching_traffic(self):
        injector = make_injector(certain(FaultKind.TAP_DROPOUT))
        tap = PenRegisterTap("pen", target_ip=IpAddress(1), injector=injector)
        # Addressed to the target: matched, then dropped by the fault.
        tap.observe(packet_to(IpAddress(2)), 1.0)
        # Not the tap's target at all: no match, no dropout consultation.
        other = Packet(
            src_mac=MacAddress(9),
            dst_mac=MacAddress(8),
            src_ip=IpAddress(9),
            dst_ip=IpAddress(8),
            src_port=1,
            dst_port=2,
            payload="unrelated",
        )
        tap.observe(other, 2.0)
        assert tap.dropped_count == 1
        assert injector.fired(FaultKind.TAP_DROPOUT) == 1


class TestStorageFaults:
    def _filled_device(self, injector):
        device = BlockDevice(n_blocks=8, block_size=16, injector=injector)
        for index in range(8):
            device.write_block(index, bytes([index]) * 16)
        return device

    def test_transient_read_error_raises_then_recovers(self):
        injector = make_injector(
            FaultSpec(kind=FaultKind.STORAGE_READ_ERROR, at_times=(0.0,))
        )
        device = self._filled_device(injector)
        with pytest.raises(TransientReadError):
            device.read_block(0)
        assert device.read_block(0) == bytes([0]) * 16
        assert device.read_errors == 1

    def test_bit_rot_corrupts_the_read_not_the_device(self):
        injector = make_injector(
            FaultSpec(kind=FaultKind.STORAGE_BIT_ROT, at_times=(0.0,))
        )
        device = self._filled_device(injector)
        corrupted = device.read_block(3)
        assert corrupted != bytes([3]) * 16
        assert device.read_block(3) == bytes([3]) * 16
        assert device.corrupted_reads == 1

    def test_imaging_retries_through_transient_errors(self):
        injector = make_injector(
            FaultSpec(
                kind=FaultKind.STORAGE_READ_ERROR, at_times=(0.0,)
            )
        )
        device = self._filled_device(injector)
        image = image_device(device, max_attempts=3)
        assert image.sha256() == device.sha256()

    def test_imaging_detects_and_rereads_silent_corruption(self):
        injector = make_injector(
            FaultSpec(kind=FaultKind.STORAGE_BIT_ROT, at_times=(0.0,))
        )
        device = self._filled_device(injector)
        image = image_device(device, max_attempts=3)
        assert image.sha256() == device.sha256()

    def test_imaging_fails_loudly_under_persistent_corruption(self):
        injector = make_injector(certain(FaultKind.STORAGE_BIT_ROT))
        device = self._filled_device(injector)
        with pytest.raises(StorageFault):
            image_device(device, max_attempts=2)


def sufficient_application(applied_at=0.0):
    return ProcessApplication(
        kind=ProcessKind.SEARCH_WARRANT,
        applicant="officer",
        facts=(
            Fact(
                description="probable cause on file",
                supports=Standard.PROBABLE_CAUSE,
            ),
        ),
        applied_at=applied_at,
        target_place="the suspect's server",
        target_items=("records",),
    )


class TestCourtFaults:
    def test_injected_denial_overrides_sufficient_showing(self):
        magistrate = Magistrate(
            injector=make_injector(certain(FaultKind.COURT_DENIAL))
        )
        decision = magistrate.review(sufficient_application())
        assert not decision.granted
        assert "injected court fault" in decision.reason
        assert magistrate.docket.applications_denied == 1

    def test_latency_delays_issuance(self):
        injector = make_injector(
            certain(FaultKind.COURT_LATENCY, param=3600.0)
        )
        magistrate = Magistrate(injector=injector)
        decision = magistrate.review(sufficient_application(applied_at=10.0))
        assert decision.granted
        assert decision.delay == 3600.0
        assert decision.instrument.issued_at == 3610.0

    def test_injected_expiry_shortens_validity(self):
        injector = make_injector(
            certain(FaultKind.INSTRUMENT_EXPIRY, param=30.0)
        )
        magistrate = Magistrate(injector=injector)
        decision = magistrate.review(sufficient_application())
        instrument = decision.instrument
        assert instrument.expires_at - instrument.issued_at == 30.0
        assert not instrument.is_valid(31.0)

    def test_expiry_never_lengthens_validity(self):
        default = DEFAULT_VALIDITY[ProcessKind.SEARCH_WARRANT]
        injector = make_injector(
            certain(FaultKind.INSTRUMENT_EXPIRY, param=default * 100)
        )
        magistrate = Magistrate(injector=injector)
        decision = magistrate.review(sufficient_application())
        instrument = decision.instrument
        assert instrument.expires_at - instrument.issued_at == default

    def test_faultless_magistrate_unchanged(self):
        decision = Magistrate().review(sufficient_application())
        assert decision.granted
        assert decision.delay == 0.0


class TestOnionChurn:
    def test_churn_loses_cells_beyond_uniform_loss(self):
        from repro.anonymity.onion import OnionNetwork

        injector = make_injector(certain(FaultKind.RELAY_CHURN))
        sim = Simulator()
        onion = OnionNetwork(sim, n_relays=5, seed=3, injector=injector)
        circuit = onion.build_circuit("suspect", "server")
        for _ in range(10):
            circuit.send_downstream()
        sim.run()
        assert circuit.client_arrival_times() == []
        assert circuit.cells_lost == 10
        assert injector.fired(FaultKind.RELAY_CHURN) == 10
