"""Unit tests for session reconstruction from intercepts."""

import pytest

from repro.netsim import (
    FullInterceptTap,
    Network,
    SessionReassembler,
)
from repro.netsim.packet import EncryptedBlob, Packet


@pytest.fixture()
def world():
    net = Network(seed=61)
    alice = net.add_host("alice")
    bob = net.add_host("bob")
    carol = net.add_host("carol")
    link = net.connect(alice, bob, latency=0.002)
    net.connect(alice, carol, latency=0.002)
    net.build_routes()
    tap = FullInterceptTap("tap")
    link.attach_tap(tap)
    return net, alice, bob, carol, tap


def chat(net, a, b, lines, port=5190):
    for index, (sender, text) in enumerate(lines):
        receiver = b if sender is a else a
        net.sim.schedule(
            index * 1.0,
            lambda s=sender, r=receiver, t=text: s.send_to(
                r, t, src_port=port, dst_port=port
            ),
        )
    net.sim.run()


class TestReassembly:
    def test_single_session_transcript(self, world):
        net, alice, bob, __, tap = world
        chat(
            net,
            alice,
            bob,
            [(alice, "hello"), (bob, "hi back"), (alice, "bye")],
        )
        sessions = SessionReassembler().reassemble(tap)
        assert len(sessions) == 1
        session = sessions[0]
        assert session.n_messages == 3
        assert [e.text for e in session.events] == [
            "hello",
            "hi back",
            "bye",
        ]
        transcript = session.transcript()
        assert "hello" in transcript
        assert str(alice.ip) in transcript

    def test_sessions_split_by_port_pair(self, world):
        net, alice, bob, __, tap = world
        alice.send_to(bob, "chat msg", src_port=5190, dst_port=5190)
        alice.send_to(bob, "web req", src_port=40000, dst_port=80)
        net.sim.run()
        sessions = SessionReassembler().reassemble(tap)
        assert len(sessions) == 2

    def test_both_directions_in_one_session(self, world):
        net, alice, bob, __, tap = world
        chat(net, alice, bob, [(alice, "ping"), (bob, "pong")])
        sessions = SessionReassembler().reassemble(tap)
        assert len(sessions) == 1
        senders = {e.sender for e in sessions[0].events}
        assert len(senders) == 2

    def test_session_for_ip_filters(self, world):
        net, alice, bob, carol, tap = world
        # Also tap the alice-carol link so the tap carries two flows.
        alice.links[1].attach_tap(tap)
        alice.send_to(bob, "to bob", src_port=1000, dst_port=1000)
        alice.send_to(carol, "to carol", src_port=1001, dst_port=1001)
        net.sim.run()
        reassembler = SessionReassembler()
        bob_sessions = reassembler.session_for(tap, bob.ip)
        assert len(bob_sessions) == 1
        assert bob_sessions[0].events[0].text == "to bob"

    def test_empty_tap(self):
        tap = FullInterceptTap("empty")
        assert SessionReassembler().reassemble(tap) == []


class TestEncryption:
    def test_encrypted_messages_opaque_without_key(self, world):
        net, alice, bob, __, tap = world
        alice.send_to(
            bob,
            EncryptedBlob(plaintext="secret plan", key_id="k9"),
            src_port=5190,
            dst_port=5190,
        )
        net.sim.run()
        session = SessionReassembler().reassemble(tap)[0]
        event = session.events[0]
        assert not event.readable
        assert event.text == ""
        assert "<encrypted" in session.transcript()
        assert session.readable_fraction == 0.0

    def test_key_unlocks_content(self, world):
        net, alice, bob, __, tap = world
        alice.send_to(
            bob,
            EncryptedBlob(plaintext="secret plan", key_id="k9"),
            src_port=5190,
            dst_port=5190,
        )
        net.sim.run()
        session = SessionReassembler(key_id="k9").reassemble(tap)[0]
        assert session.events[0].readable
        assert session.events[0].text == "secret plan"
        assert session.readable_fraction == 1.0


class TestSessionKey:
    def test_direction_free(self, world):
        net, alice, bob, __, tap = world
        chat(net, alice, bob, [(alice, "a"), (bob, "b")])
        sessions = SessionReassembler().reassemble(tap)
        key = sessions[0].key
        # Canonical ordering: endpoints sorted.
        assert key.endpoint_a <= key.endpoint_b
        assert "tcp" in str(key)
