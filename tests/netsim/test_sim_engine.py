"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.netsim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for label in "abcd":
            sim.schedule(1.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == ["a", "b", "c", "d"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="past"):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]


class TestClock:
    def test_clock_advances_with_events(self):
        sim = Simulator()
        sim.schedule(4.5, lambda: None)
        sim.run()
        assert sim.now == 4.5

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_clock_never_goes_backwards(self):
        sim = Simulator()
        observed = []
        sim.schedule(2.0, lambda: observed.append(sim.now))
        sim.schedule(1.0, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled


class TestStep:
    def test_step_executes_exactly_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step()
        assert fired == [1]

    def test_step_on_empty_queue_returns_false(self):
        assert not Simulator().step()

    def test_step_skips_cancelled(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1)).cancel()
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step()
        assert fired == [2]


class TestCounters:
    def test_events_processed(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_pending(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0
