"""Unit tests for capability-typed taps."""

import pytest

from repro.core import Actor, DataKind, EnvironmentContext, Place
from repro.netsim.address import IpAddress, MacAddress
from repro.netsim.packet import EncryptedBlob, Packet
from repro.netsim.sniffer import (
    FullInterceptTap,
    PenRegisterTap,
    TrapTraceTap,
)

SRC = IpAddress(100)
DST = IpAddress(200)


def make_packet(src=SRC, dst=DST, payload="data"):
    return Packet(
        src_mac=MacAddress(1),
        dst_mac=MacAddress(2),
        src_ip=src,
        dst_ip=dst,
        src_port=1,
        dst_port=2,
        payload=payload,
    )


class TestPenRegister:
    def test_records_outgoing_only(self):
        tap = PenRegisterTap("pen", target_ip=SRC)
        tap.observe(make_packet(src=SRC, dst=DST), 1.0)  # outgoing
        tap.observe(make_packet(src=DST, dst=SRC), 2.0)  # incoming
        assert len(tap.records) == 1
        assert tap.records[0].src_ip == SRC

    def test_untargeted_records_everything(self):
        tap = PenRegisterTap("pen")
        tap.observe(make_packet(), 1.0)
        tap.observe(make_packet(src=DST, dst=SRC), 2.0)
        assert len(tap.records) == 2

    def test_cannot_retain_payload(self):
        tap = PenRegisterTap("pen")
        tap.observe(make_packet(payload="super secret"), 1.0)
        record = tap.records[0]
        assert "super secret" not in repr(record)
        assert not hasattr(record, "payload")

    def test_timestamps(self):
        tap = PenRegisterTap("pen")
        tap.observe(make_packet(), 1.0)
        tap.observe(make_packet(), 2.5)
        assert tap.timestamps() == [1.0, 2.5]

    def test_data_kind_is_non_content(self):
        assert PenRegisterTap("pen").data_kind is DataKind.NON_CONTENT


class TestTrapTrace:
    def test_records_incoming_only(self):
        tap = TrapTraceTap("trap", target_ip=SRC)
        tap.observe(make_packet(src=SRC, dst=DST), 1.0)  # outgoing
        tap.observe(make_packet(src=DST, dst=SRC), 2.0)  # incoming
        assert len(tap.records) == 1
        assert tap.records[0].dst_ip == SRC

    def test_data_kind_is_non_content(self):
        assert TrapTraceTap("trap").data_kind is DataKind.NON_CONTENT


class TestFullIntercept:
    def test_retains_whole_packets(self):
        tap = FullInterceptTap("full")
        tap.observe(make_packet(payload="the body"), 1.0)
        assert tap.payloads() == ["the body"]

    def test_target_filter_matches_either_direction(self):
        tap = FullInterceptTap("full", target_ip=SRC)
        tap.observe(make_packet(src=SRC, dst=DST), 1.0)
        tap.observe(make_packet(src=DST, dst=SRC), 2.0)
        tap.observe(
            make_packet(src=IpAddress(7), dst=IpAddress(8)), 3.0
        )
        assert tap.observed_count == 2

    def test_encrypted_payloads_skipped_without_key(self):
        tap = FullInterceptTap("full")
        tap.observe(
            make_packet(payload=EncryptedBlob("hidden", "k1")), 1.0
        )
        tap.observe(make_packet(payload="clear"), 2.0)
        assert tap.payloads() == ["clear"]
        assert tap.payloads("k1") == ["hidden", "clear"]

    def test_data_kind_is_content(self):
        assert FullInterceptTap("full").data_kind is DataKind.CONTENT


class TestDescribeAction:
    def test_pen_register_action_is_non_content(self):
        tap = PenRegisterTap("pen")
        action = tap.describe_action(
            Actor.GOVERNMENT,
            EnvironmentContext(place=Place.TRANSMISSION_PATH),
        )
        assert action.data_kind is DataKind.NON_CONTENT
        assert action.real_time()

    def test_full_intercept_action_is_content(self):
        tap = FullInterceptTap("full")
        action = tap.describe_action(
            Actor.GOVERNMENT,
            EnvironmentContext(place=Place.TRANSMISSION_PATH),
        )
        assert action.data_kind is DataKind.CONTENT

    def test_engine_rules_on_tap_actions(self, engine):
        from repro.core import ProcessKind

        context = EnvironmentContext(place=Place.TRANSMISSION_PATH)
        pen_ruling = engine.evaluate(
            PenRegisterTap("pen").describe_action(Actor.GOVERNMENT, context)
        )
        full_ruling = engine.evaluate(
            FullInterceptTap("full").describe_action(
                Actor.GOVERNMENT, context
            )
        )
        assert pen_ruling.required_process is ProcessKind.COURT_ORDER
        assert full_ruling.required_process is ProcessKind.WIRETAP_ORDER
