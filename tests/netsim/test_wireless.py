"""Unit tests for the wireless broadcast medium (Table 1 rows 3-6 substrate)."""

import pytest

from repro.netsim import (
    FullInterceptTap,
    Network,
    PenRegisterTap,
    WirelessMedium,
)
from repro.netsim.packet import Packet


@pytest.fixture()
def world():
    net = Network(seed=9)
    alice = net.add_host("alice")
    bob = net.add_host("bob")
    return net, alice, bob


def frame(alice, bob, payload="hello bob"):
    return Packet(
        src_mac=alice.mac,
        dst_mac=bob.mac,
        src_ip=alice.ip,
        dst_ip=bob.ip,
        src_port=5000,
        dst_port=5001,
        payload=payload,
    )


class TestOpenNetwork:
    def test_sniffer_reads_everything(self, world):
        net, alice, bob = world
        medium = WirelessMedium(net.sim, "open-wlan", network_key=None)
        medium.join(alice)
        medium.join(bob)
        sniffer = FullInterceptTap("wardriver")
        medium.add_sniffer(sniffer)
        medium.broadcast(frame(alice, bob), alice)
        net.sim.run()
        assert sniffer.payloads() == ["hello bob"]
        assert not medium.encrypted

    def test_station_receives_addressed_frames(self, world):
        net, alice, bob = world
        medium = WirelessMedium(net.sim, "open-wlan")
        medium.join(alice)
        medium.join(bob)
        medium.broadcast(frame(alice, bob), alice)
        net.sim.run()
        assert [p.payload for p in bob.received] == ["hello bob"]

    def test_station_drops_frames_for_others(self, world):
        net, alice, bob = world
        carol = net.add_host("carol")
        medium = WirelessMedium(net.sim, "open-wlan")
        for host in (alice, bob, carol):
            medium.join(host)
        medium.broadcast(frame(alice, bob), alice)
        net.sim.run()
        assert carol.received == []


class TestProtectedNetwork:
    def test_payload_encrypted_on_air(self, world):
        net, alice, bob = world
        medium = WirelessMedium(net.sim, "home", network_key="wpa-key")
        medium.join(alice)
        medium.join(bob)
        sniffer = FullInterceptTap("wardriver")
        medium.add_sniffer(sniffer)
        medium.broadcast(frame(alice, bob, "family photos"), alice)
        net.sim.run()
        assert medium.encrypted
        assert sniffer.payloads() == []  # no key, no content
        assert sniffer.payloads("wpa-key") == ["family photos"]

    def test_headers_remain_visible(self, world):
        net, alice, bob = world
        medium = WirelessMedium(net.sim, "home", network_key="wpa-key")
        medium.join(alice)
        medium.join(bob)
        pen = PenRegisterTap("header-logger")
        medium.add_sniffer(pen)
        medium.broadcast(frame(alice, bob), alice)
        net.sim.run()
        assert len(pen.records) == 1
        assert pen.records[0].src_ip == alice.ip
        assert pen.records[0].dst_ip == bob.ip

    def test_joined_stations_hold_the_key(self, world):
        net, alice, __ = world
        medium = WirelessMedium(net.sim, "home", network_key="wpa-key")
        medium.join(alice)
        assert "wpa-key" in alice.keys


class TestSnifferManagement:
    def test_removed_sniffer_hears_nothing(self, world):
        net, alice, bob = world
        medium = WirelessMedium(net.sim, "open-wlan")
        medium.join(alice)
        medium.join(bob)
        sniffer = FullInterceptTap("wardriver")
        medium.add_sniffer(sniffer)
        medium.remove_sniffer(sniffer)
        medium.broadcast(frame(alice, bob), alice)
        net.sim.run()
        assert sniffer.observed_count == 0

    def test_frames_sent_counter(self, world):
        net, alice, bob = world
        medium = WirelessMedium(net.sim, "open-wlan")
        medium.join(alice)
        medium.join(bob)
        for __ in range(3):
            medium.broadcast(frame(alice, bob), alice)
        assert medium.frames_sent == 3
