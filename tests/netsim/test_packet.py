"""Unit tests for the packet model and its legal views."""

import dataclasses

import pytest

from repro.netsim.address import IpAddress, MacAddress
from repro.netsim.packet import EncryptedBlob, Packet


def make_packet(**kwargs):
    defaults = dict(
        src_mac=MacAddress(1),
        dst_mac=MacAddress(2),
        src_ip=IpAddress(10),
        dst_ip=IpAddress(20),
        src_port=1234,
        dst_port=80,
        payload="hello",
    )
    defaults.update(kwargs)
    return Packet(**defaults)


class TestValidation:
    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            make_packet(src_port=70000)
        with pytest.raises(ValueError):
            make_packet(dst_port=-1)

    def test_bad_protocol_rejected(self):
        with pytest.raises(ValueError):
            make_packet(protocol="icmp")

    def test_packet_ids_unique(self):
        assert make_packet().packet_id != make_packet().packet_id


class TestContentView:
    def test_plaintext_readable(self):
        assert make_packet().payload_text() == "hello"

    def test_encrypted_payload_unreadable_without_key(self):
        packet = make_packet(
            payload=EncryptedBlob(plaintext="secret", key_id="k1")
        )
        with pytest.raises(PermissionError):
            packet.payload_text()

    def test_encrypted_payload_readable_with_key(self):
        packet = make_packet(
            payload=EncryptedBlob(plaintext="secret", key_id="k1")
        )
        assert packet.payload_text("k1") == "secret"

    def test_wrong_key_rejected(self):
        packet = make_packet(
            payload=EncryptedBlob(plaintext="secret", key_id="k1")
        )
        with pytest.raises(PermissionError):
            packet.payload_text("k2")

    def test_blob_repr_hides_plaintext(self):
        blob = EncryptedBlob(plaintext="topsecret", key_id="k")
        assert "topsecret" not in repr(blob)

    def test_payload_encrypted_flag(self):
        assert not make_packet().payload_encrypted
        assert make_packet(
            payload=EncryptedBlob(plaintext="x", key_id="k")
        ).payload_encrypted


class TestNonContentView:
    def test_header_record_carries_addressing_and_size(self):
        packet = make_packet()
        record = packet.header_record(timestamp=3.5)
        assert record.timestamp == 3.5
        assert record.src_ip == packet.src_ip
        assert record.dst_port == 80
        assert record.size == packet.size
        assert record.packet_id == packet.packet_id

    def test_header_record_has_no_payload_field(self):
        record = make_packet().header_record(0.0)
        field_names = {f.name for f in dataclasses.fields(record)}
        assert "payload" not in field_names
        assert "hello" not in repr(record)

    def test_size_includes_header_overhead(self):
        assert make_packet(payload="").size == 54
        assert make_packet(payload="abcd").size == 58

    def test_encrypted_size_matches_plaintext_length(self):
        packet = make_packet(
            payload=EncryptedBlob(plaintext="abcd", key_id="k")
        )
        assert packet.size == 58


class TestReplyTemplate:
    def test_reply_swaps_endpoints(self):
        packet = make_packet()
        reply = packet.reply_template("pong")
        assert reply.src_ip == packet.dst_ip
        assert reply.dst_ip == packet.src_ip
        assert reply.src_port == packet.dst_port
        assert reply.dst_port == packet.src_port
        assert reply.payload_text() == "pong"

    def test_reply_keeps_flow_id(self):
        packet = make_packet(flow_id="flow-7")
        assert packet.reply_template().flow_id == "flow-7"
