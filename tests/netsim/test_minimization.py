"""Unit tests for Title III minimization."""

import pytest

from repro.core import DataKind
from repro.netsim import (
    MinimizingInterceptTap,
    Network,
    keyword_pertinence,
)
from repro.netsim.packet import EncryptedBlob


@pytest.fixture()
def world():
    net = Network(seed=71)
    suspect = net.add_host("suspect")
    peer = net.add_host("peer")
    link = net.connect(suspect, peer, latency=0.002)
    net.build_routes()
    tap = MinimizingInterceptTap(
        "t3", pertinence=keyword_pertinence(["shipment", "meth"])
    )
    link.attach_tap(tap)
    return net, suspect, peer, tap


class TestMinimization:
    def test_pertinent_content_retained(self, world):
        net, suspect, peer, tap = world
        suspect.send_to(peer, "the shipment lands friday")
        suspect.send_to(peer, "mom's birthday dinner sunday?")
        net.sim.run()
        stats = tap.stats()
        assert stats.total_observed == 2
        assert stats.content_retained == 1
        assert stats.header_only == 1
        assert stats.minimization_rate == 0.5
        retained = [c.packet.payload for c in tap.captures]
        assert retained == ["the shipment lands friday"]

    def test_minimized_traffic_keeps_headers_only(self, world):
        net, suspect, peer, tap = world
        suspect.send_to(peer, "completely personal message")
        net.sim.run()
        assert len(tap.minimized_headers) == 1
        record = tap.minimized_headers[0]
        assert record.src_ip == suspect.ip
        assert not hasattr(record, "payload")

    def test_encrypted_traffic_minimized(self, world):
        net, suspect, peer, tap = world
        suspect.send_to(
            peer, EncryptedBlob(plaintext="meth shipment", key_id="k")
        )
        net.sim.run()
        stats = tap.stats()
        # Unintelligible traffic cannot be spot-checked: minimize it.
        assert stats.content_retained == 0
        assert stats.header_only == 1

    def test_case_insensitive_matching(self, world):
        net, suspect, peer, tap = world
        suspect.send_to(peer, "The SHIPMENT is here")
        net.sim.run()
        assert tap.stats().content_retained == 1

    def test_empty_stats(self):
        tap = MinimizingInterceptTap(
            "idle", pertinence=keyword_pertinence(["x"])
        )
        stats = tap.stats()
        assert stats.total_observed == 0
        assert stats.minimization_rate == 0.0

    def test_data_kind_is_content(self, world):
        __, __, __, tap = world
        assert tap.data_kind is DataKind.CONTENT

    def test_keyword_filter_validation(self):
        with pytest.raises(ValueError):
            keyword_pertinence([])
