"""Property-based tests for the network simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import FullInterceptTap, Network, PenRegisterTap


def build_random_tree(n_hosts: int, n_routers: int, seed: int) -> Network:
    """A random router tree with hosts attached as leaves.

    Hosts never forward transit traffic (by design), so they must be
    leaves for universal reachability.
    """
    import random

    net = Network(seed=seed)
    rng = random.Random(seed)
    routers = [net.add_router(f"r{index}") for index in range(n_routers)]
    for index in range(1, len(routers)):
        parent = routers[rng.randrange(index)]
        net.connect(
            parent, routers[index], latency=rng.uniform(0.001, 0.02)
        )
    for index in range(n_hosts):
        host = net.add_host(f"h{index}")
        net.connect(
            rng.choice(routers), host, latency=rng.uniform(0.001, 0.02)
        )
    net.build_routes()
    return net


@given(
    n_hosts=st.integers(min_value=2, max_value=8),
    n_routers=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_all_host_pairs_can_communicate(n_hosts, n_routers, seed):
    """On any connected router tree, every host pair exchanges packets."""
    net = build_random_tree(n_hosts, n_routers, seed)
    hosts = [n for n in net.nodes.values() if hasattr(n, "send_to")]
    sender = hosts[0]
    for receiver in hosts[1:]:
        sender.send_to(receiver, f"to {receiver.name}")
    net.sim.run()
    for receiver in hosts[1:]:
        assert any(
            p.payload == f"to {receiver.name}" for p in receiver.received
        )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_taps_are_passive(seed):
    """Attaching taps never changes what gets delivered."""
    def run(with_taps: bool):
        net = build_random_tree(3, 2, seed)
        hosts = [n for n in net.nodes.values() if hasattr(n, "send_to")]
        if with_taps:
            for node in net.nodes.values():
                for link in node.links:
                    link.attach_tap(PenRegisterTap(f"p-{id(link)}"))
                    link.attach_tap(FullInterceptTap(f"f-{id(link)}"))
                break
        hosts[0].send_to(hosts[1], "payload")
        hosts[1].send_to(hosts[2], "payload2")
        net.sim.run()
        return [
            sorted(p.payload for p in h.received) for h in hosts
        ]

    assert run(False) == run(True)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_pen_register_counts_match_traffic(seed):
    """An untargeted pen register on the only link sees every packet once."""
    net = Network(seed=seed)
    a = net.add_host("a")
    b = net.add_host("b")
    link = net.connect(a, b, latency=0.001)
    net.build_routes()
    tap = PenRegisterTap("pen")
    link.attach_tap(tap)
    import random

    n = random.Random(seed).randrange(1, 20)
    for index in range(n):
        a.send_to(b, f"m{index}")
    net.sim.run()
    assert tap.observed_count == n
    assert len(b.received) == n
