"""Unit tests for addresses and allocators."""

import pytest

from repro.netsim.address import (
    IpAddress,
    IpAllocator,
    MacAddress,
    MacAllocator,
)


class TestMacAddress:
    def test_renders_colon_separated(self):
        assert str(MacAddress(0x02000000002A)) == "02:00:00:00:00:2a"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(2**48)
        with pytest.raises(ValueError):
            MacAddress(-1)

    def test_allocator_yields_unique(self):
        allocator = MacAllocator()
        macs = {allocator.allocate() for _ in range(100)}
        assert len(macs) == 100


class TestIpAddress:
    def test_renders_dotted_quad(self):
        assert str(IpAddress((10 << 24) | 1)) == "10.0.0.1"
        assert str(IpAddress(0xFFFFFFFF)) == "255.255.255.255"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            IpAddress(2**32)

    def test_in_subnet(self):
        net = IpAddress(192 << 24 | 168 << 16)
        assert IpAddress(192 << 24 | 168 << 16 | 5).in_subnet(net, 24)
        assert not IpAddress(10 << 24 | 5).in_subnet(net, 24)

    def test_prefix_zero_matches_everything(self):
        assert IpAddress(1).in_subnet(IpAddress(0xFFFFFF00), 0)

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            IpAddress(1).in_subnet(IpAddress(0), 33)

    def test_ordering(self):
        assert IpAddress(1) < IpAddress(2)


class TestIpAllocator:
    def test_allocates_from_subnet(self):
        allocator = IpAllocator(IpAddress(10 << 24), prefix_len=24)
        ip = allocator.allocate("alice", time=0.0)
        assert ip.in_subnet(IpAddress(10 << 24), 24)

    def test_lease_history(self):
        allocator = IpAllocator(IpAddress(10 << 24), prefix_len=24)
        ip = allocator.allocate("alice", time=1.0)
        assert allocator.subscriber_for(ip, 5.0) == "alice"
        allocator.release(ip, time=10.0)
        assert allocator.subscriber_for(ip, 5.0) == "alice"
        assert allocator.subscriber_for(ip, 10.0) is None

    def test_subscriber_before_lease_is_unknown(self):
        allocator = IpAllocator(IpAddress(10 << 24), prefix_len=24)
        ip = allocator.allocate("alice", time=5.0)
        assert allocator.subscriber_for(ip, 1.0) is None

    def test_release_unknown_raises(self):
        allocator = IpAllocator(IpAddress(10 << 24), prefix_len=24)
        with pytest.raises(KeyError):
            allocator.release(IpAddress(10 << 24 | 9), time=0.0)

    def test_exhaustion(self):
        allocator = IpAllocator(IpAddress(10 << 24), prefix_len=30)
        allocator.allocate("a", 0.0)
        allocator.allocate("b", 0.0)
        with pytest.raises(RuntimeError, match="exhausted"):
            allocator.allocate("c", 0.0)

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            IpAllocator(IpAddress(0), prefix_len=31)

    def test_leases_view_is_immutable_copy(self):
        allocator = IpAllocator(IpAddress(10 << 24), prefix_len=24)
        allocator.allocate("alice", 0.0)
        leases = allocator.leases
        assert len(leases) == 1
        assert leases[0].subscriber_id == "alice"
        assert leases[0].active_at(100.0)
