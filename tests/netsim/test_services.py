"""Unit tests for application services (web, chat, files)."""

import pytest

from repro.netsim import ChatRoom, FileServer, Network, WebServer


@pytest.fixture()
def world():
    net = Network(seed=21)
    client = net.add_host("client")
    server = net.add_host("server")
    net.connect(client, server, latency=0.001)
    net.build_routes()
    return net, client, server


def last_reply(net, client):
    net.sim.run()
    assert client.received, "no reply arrived"
    return client.received[-1].payload_text()


class TestWebServer:
    def test_public_page_served(self, world):
        net, client, server = world
        web = WebServer(server, public=True)
        web.publish("/index", "welcome")
        client.send_to(server, "GET /index", dst_port=WebServer.PORT)
        assert last_reply(net, client) == "200 welcome"

    def test_missing_page_404(self, world):
        net, client, server = world
        WebServer(server, public=True)
        client.send_to(server, "GET /nope", dst_port=WebServer.PORT)
        assert last_reply(net, client) == "404 not found"

    def test_members_only_rejects_anonymous(self, world):
        net, client, server = world
        web = WebServer(server, public=False)
        web.publish("/secret", "hidden")
        client.send_to(server, "GET /secret", dst_port=WebServer.PORT)
        assert last_reply(net, client) == "403 members only"

    def test_member_access(self, world):
        net, client, server = world
        web = WebServer(server, public=False)
        web.publish("/secret", "hidden")
        web.add_member("insider")
        client.send_to(
            server, "GET /secret AUTH insider", dst_port=WebServer.PORT
        )
        assert last_reply(net, client) == "200 hidden"

    def test_malformed_request(self, world):
        net, client, server = world
        WebServer(server)
        client.send_to(server, "FROB", dst_port=WebServer.PORT)
        assert last_reply(net, client) == "400 bad request"

    def test_access_log_records_requests(self, world):
        net, client, server = world
        web = WebServer(server)
        web.publish("/a", "x")
        client.send_to(server, "GET /a", dst_port=WebServer.PORT)
        net.sim.run()
        assert len(web.access_log) == 1
        __, src_ip, path = web.access_log[0]
        assert src_ip == str(client.ip)
        assert path == "/a"


class TestChatRoom:
    def test_join_post_read(self, world):
        net, client, server = world
        room = ChatRoom(server)
        client.send_to(server, "JOIN carol", dst_port=ChatRoom.PORT)
        client.send_to(server, "POST carol hello all", dst_port=ChatRoom.PORT)
        client.send_to(server, "READ", dst_port=ChatRoom.PORT)
        net.sim.run()
        replies = [p.payload_text() for p in client.received]
        assert "joined #public" in replies
        assert "ok" in replies
        assert "carol: hello all" in replies
        assert "carol" in room.participants

    def test_messages_have_timestamps(self, world):
        net, client, server = world
        room = ChatRoom(server)
        client.send_to(server, "POST dave hi", dst_port=ChatRoom.PORT)
        net.sim.run()
        assert room.messages[0].timestamp > 0
        assert room.messages[0].sender == "dave"

    def test_unknown_command(self, world):
        net, client, server = world
        ChatRoom(server)
        client.send_to(server, "DANCE", dst_port=ChatRoom.PORT)
        assert last_reply(net, client) == "unknown command"


class TestFileServer:
    def test_fetch(self, world):
        net, client, server = world
        files = FileServer(server)
        files.put("report.txt", "quarterly numbers")
        client.send_to(
            server, "FETCH report.txt", dst_port=FileServer.PORT
        )
        assert last_reply(net, client) == "200 quarterly numbers"
        assert files.fetch_count == 1

    def test_fetch_missing(self, world):
        net, client, server = world
        FileServer(server)
        client.send_to(server, "FETCH nothing", dst_port=FileServer.PORT)
        assert last_reply(net, client) == "404 not found"

    def test_bad_request(self, world):
        net, client, server = world
        FileServer(server)
        client.send_to(server, "STEAL f", dst_port=FileServer.PORT)
        assert last_reply(net, client) == "400 bad request"
