"""Unit tests for the ISP node's SCA-gated disclosure machinery."""

import pytest

from repro.core import DataKind, ProcessKind
from repro.core.errors import InsufficientProcess, LegalViolation
from repro.netsim import (
    FullInterceptTap,
    Network,
    PenRegisterTap,
)
from repro.netsim.isp import IspNode


@pytest.fixture()
def world():
    net = Network(seed=11)
    isp = IspNode("isp", net.sim, serves_public=True)
    net.add_node(isp)
    alice = net.add_host("alice")
    bob = net.add_host("bob")
    link_a = net.connect(alice, isp, latency=0.005)
    net.connect(isp, bob, latency=0.005)
    net.build_routes()
    isp.register_subscriber("alice", "Alice A.", "1 First St")
    return net, isp, alice, bob, link_a


class TestSubscriberManagement:
    def test_register_and_lease(self, world):
        __, isp, *_ = world
        ip = isp.lease_ip("alice")
        assert isp.subscriber_for_ip(
            ip, time=0.0, process_held=ProcessKind.SUBPOENA
        ).name == "Alice A."

    def test_duplicate_subscriber_rejected(self, world):
        __, isp, *_ = world
        with pytest.raises(ValueError):
            isp.register_subscriber("alice", "x", "y")

    def test_lease_for_unknown_subscriber_rejected(self, world):
        __, isp, *_ = world
        with pytest.raises(KeyError):
            isp.lease_ip("mallory")

    def test_subscriber_lookup_needs_at_least_subpoena(self, world):
        __, isp, *_ = world
        ip = isp.lease_ip("alice")
        with pytest.raises(InsufficientProcess) as excinfo:
            isp.subscriber_for_ip(ip, 0.0, ProcessKind.NONE)
        assert excinfo.value.required is ProcessKind.SUBPOENA


class TestCompelledDisclosure:
    """The 2703 tier table, enforced."""

    @pytest.mark.parametrize(
        "data_kind,minimum",
        [
            (DataKind.SUBSCRIBER_INFO, ProcessKind.SUBPOENA),
            (DataKind.TRANSACTIONAL_RECORD, ProcessKind.COURT_ORDER),
            (DataKind.CONTENT, ProcessKind.SEARCH_WARRANT),
        ],
    )
    def test_tier_enforced(self, world, data_kind, minimum):
        __, isp, *_ = world
        weaker = ProcessKind(minimum - 1)
        with pytest.raises(InsufficientProcess):
            isp.compelled_disclosure(data_kind, weaker)
        isp.compelled_disclosure(data_kind, minimum)  # no raise

    def test_stronger_process_always_works(self, world):
        __, isp, *_ = world
        records = isp.compelled_disclosure(
            DataKind.SUBSCRIBER_INFO, ProcessKind.SEARCH_WARRANT
        )
        assert records and records[0].name == "Alice A."

    def test_content_disclosure_returns_stored_items(self, world):
        __, isp, *_ = world
        isp.store_content("alice", "saved draft")
        items = isp.compelled_disclosure(
            DataKind.CONTENT, ProcessKind.SEARCH_WARRANT
        )
        assert [item.content for item in items] == ["saved draft"]

    def test_physical_data_kind_rejected(self, world):
        __, isp, *_ = world
        with pytest.raises(LegalViolation):
            isp.compelled_disclosure(
                DataKind.PHYSICAL, ProcessKind.SEARCH_WARRANT
            )


class TestVoluntaryDisclosure:
    """The 2702 rules, enforced."""

    def test_public_provider_refuses_government(self, world):
        __, isp, *_ = world
        with pytest.raises(LegalViolation, match="2702"):
            isp.voluntary_disclosure(
                DataKind.SUBSCRIBER_INFO, to_government=True
            )

    def test_emergency_exception(self, world):
        __, isp, *_ = world
        records = isp.voluntary_disclosure(
            DataKind.CONTENT, to_government=True, emergency=True
        )
        assert isinstance(records, list)

    def test_non_content_to_private_party_allowed(self, world):
        __, isp, *_ = world
        isp.voluntary_disclosure(
            DataKind.TRANSACTIONAL_RECORD, to_government=False
        )

    def test_nonpublic_provider_discloses_freely(self):
        net = Network(seed=1)
        private_isp = IspNode("corp-net", net.sim, serves_public=False)
        private_isp.register_subscriber("emp1", "Employee", "HQ")
        records = private_isp.voluntary_disclosure(
            DataKind.CONTENT, to_government=True
        )
        assert isinstance(records, list)


class TestRealTimeTaps:
    def test_pen_tap_needs_court_order(self, world):
        __, isp, __, __, link = world
        with pytest.raises(InsufficientProcess):
            isp.attach_tap(
                link, PenRegisterTap("pen"), ProcessKind.SUBPOENA
            )
        isp.attach_tap(link, PenRegisterTap("pen"), ProcessKind.COURT_ORDER)

    def test_full_tap_needs_wiretap_order(self, world):
        __, isp, __, __, link = world
        with pytest.raises(InsufficientProcess):
            isp.attach_tap(
                link, FullInterceptTap("full"), ProcessKind.SEARCH_WARRANT
            )
        isp.attach_tap(
            link, FullInterceptTap("full"), ProcessKind.WIRETAP_ORDER
        )

    def test_provider_own_monitoring_needs_nothing(self, world):
        __, isp, __, __, link = world
        isp.attach_tap(
            link,
            FullInterceptTap("ops"),
            ProcessKind.NONE,
            provider_own_monitoring=True,
        )
        assert link.taps

    def test_foreign_link_rejected(self, world):
        net, isp, alice, bob, __ = world
        foreign = net.connect(alice, bob, latency=0.5)
        with pytest.raises(ValueError, match="does not touch"):
            isp.attach_tap(
                foreign, PenRegisterTap("pen"), ProcessKind.COURT_ORDER
            )


class TestTrafficLogging:
    def test_transit_traffic_logged(self, world):
        net, isp, alice, bob, __ = world
        alice.send_to(bob, "through the isp")
        net.sim.run()
        assert isp.transaction_log_size == 1
        assert bob.received

    def test_authenticated_retrieval(self, world):
        __, isp, *_ = world
        isp.store_content("alice", "mail one")
        isp.store_content("alice", "mail two")
        items = isp.authenticated_retrieval("alice")
        assert [i.content for i in items] == ["mail one", "mail two"]

    def test_authenticated_retrieval_unknown_account(self, world):
        __, isp, *_ = world
        with pytest.raises(KeyError):
            isp.authenticated_retrieval("mallory")
