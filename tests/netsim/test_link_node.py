"""Unit tests for links, nodes, routing, and the Network builder."""

import pytest

from repro.netsim import (
    FullInterceptTap,
    Network,
    PenRegisterTap,
)
from repro.netsim.link import Link
from repro.netsim.node import Host, Router


@pytest.fixture()
def small_net():
    net = Network(seed=1)
    alice = net.add_host("alice")
    router = net.add_router("r1")
    bob = net.add_host("bob")
    net.connect(alice, router, latency=0.005)
    net.connect(router, bob, latency=0.010)
    net.build_routes()
    return net, alice, router, bob


class TestLink:
    def test_latency_delays_delivery(self, small_net):
        net, alice, router, bob = small_net
        alice.send_to(bob, "ping")
        net.sim.run()
        assert bob.received
        # one-way: 5ms + 10ms
        assert net.sim.now == pytest.approx(0.015)

    def test_negative_latency_rejected(self, small_net):
        net, alice, router, __ = small_net
        with pytest.raises(ValueError):
            Link(net.sim, alice, router, latency=-1.0)

    def test_other_end(self, small_net):
        net, alice, router, bob = small_net
        link = alice.links[0]
        assert link.other_end(alice) is router
        assert link.other_end(router) is alice
        with pytest.raises(ValueError):
            link.other_end(bob)

    def test_bandwidth_serializes(self):
        net = Network(seed=1)
        a = net.add_host("a")
        b = net.add_host("b")
        net.connect(a, b, latency=0.0, bandwidth=1000.0)  # 1000 B/s
        net.build_routes()
        for __ in range(3):
            a.send_to(b, "x" * 46)  # 100-byte packets -> 0.1 s each
        net.sim.run()
        assert len(b.received) == 3
        assert net.sim.now == pytest.approx(0.3)

    def test_jitter_bounded(self):
        net = Network(seed=5)
        a = net.add_host("a")
        b = net.add_host("b")
        net.connect(a, b, latency=0.01, jitter=0.5)
        net.build_routes()
        a.send_to(b, "ping")
        net.sim.run()
        assert 0.01 <= net.sim.now <= 0.015 + 1e-9

    def test_taps_observe_at_transmission(self, small_net):
        net, alice, router, bob = small_net
        tap = FullInterceptTap("tap")
        alice.links[0].attach_tap(tap)
        alice.send_to(bob, "evidence")
        net.sim.run()
        assert tap.observed_count == 1
        assert tap.captures[0].timestamp == 0.0

    def test_detach_tap(self, small_net):
        net, alice, __, bob = small_net
        tap = PenRegisterTap("pen")
        link = alice.links[0]
        link.attach_tap(tap)
        link.detach_tap(tap)
        alice.send_to(bob, "quiet")
        net.sim.run()
        assert tap.observed_count == 0


class TestRouting:
    def test_multi_hop_delivery(self):
        net = Network(seed=2)
        hosts = [net.add_host(f"h{i}") for i in range(2)]
        routers = [net.add_router(f"r{i}") for i in range(3)]
        net.connect(hosts[0], routers[0])
        net.connect(routers[0], routers[1])
        net.connect(routers[1], routers[2])
        net.connect(routers[2], hosts[1])
        net.build_routes()
        hosts[0].send_to(hosts[1], "far away")
        net.sim.run()
        assert hosts[1].received
        assert all(r.forwarded_count == 1 for r in routers)

    def test_shortest_path_preferred(self):
        net = Network(seed=3)
        a = net.add_host("a")
        b = net.add_host("b")
        fast = net.add_router("fast")
        slow = net.add_router("slow")
        net.connect(a, fast, latency=0.001)
        net.connect(fast, b, latency=0.001)
        net.connect(a, slow, latency=0.1)
        net.connect(slow, b, latency=0.1)
        net.build_routes()
        a.send_to(b, "ping")
        net.sim.run()
        assert fast.forwarded_count == 1
        assert slow.forwarded_count == 0

    def test_no_route_raises(self):
        net = Network(seed=4)
        a = net.add_host("a")
        b = net.add_host("b")  # never connected
        net.build_routes()
        with pytest.raises(RuntimeError, match="no route"):
            a.send_to(b, "lost")

    def test_host_ignores_foreign_packets(self, small_net):
        net, alice, router, bob = small_net
        packet = alice.send_to(bob, "for bob")
        # Re-deliver the same packet to alice: wrong destination.
        alice.receive(packet, alice.links[0])
        net.sim.run()
        assert packet not in alice.received


class TestHostServices:
    def test_service_reply_roundtrip(self, small_net):
        net, alice, __, bob = small_net
        bob.register_service(80, lambda host, pkt: "pong")
        alice.send_to(bob, "ping", dst_port=80)
        net.sim.run()
        assert [p.payload for p in alice.received] == ["pong"]

    def test_no_service_no_reply(self, small_net):
        net, alice, __, bob = small_net
        alice.send_to(bob, "ping", dst_port=9999)
        net.sim.run()
        assert alice.received == []

    def test_handler_returning_none_sends_nothing(self, small_net):
        net, alice, __, bob = small_net
        bob.register_service(80, lambda host, pkt: None)
        alice.send_to(bob, "ping", dst_port=80)
        net.sim.run()
        assert alice.received == []


class TestNetworkBuilder:
    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_host("x")
        with pytest.raises(ValueError, match="duplicate"):
            net.add_host("x")
        with pytest.raises(ValueError, match="duplicate"):
            net.add_router("x")

    def test_hosts_get_unique_addresses(self):
        net = Network()
        hosts = [net.add_host(f"h{i}") for i in range(10)]
        assert len({h.ip for h in hosts}) == 10
        assert len({h.mac for h in hosts}) == 10

    def test_lease_history_records_hosts(self):
        net = Network()
        host = net.add_host("alice")
        allocator = net.ip_allocator()
        assert allocator.subscriber_for(host.ip, 0.0) == "alice"
