"""Unit and property tests for PN spreading codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.techniques.watermark import PnCode


class TestMsequence:
    @pytest.mark.parametrize("register_length", range(3, 13))
    def test_length_is_2n_minus_1(self, register_length):
        code = PnCode.msequence(register_length)
        assert len(code) == 2**register_length - 1

    @pytest.mark.parametrize("register_length", range(3, 11))
    def test_balance_property(self, register_length):
        # m-sequences have exactly one more +1 than -1.
        assert PnCode.msequence(register_length).balance == 1

    @pytest.mark.parametrize("register_length", [5, 7, 9])
    def test_two_valued_autocorrelation(self, register_length):
        code = PnCode.msequence(register_length)
        assert code.autocorrelation(0) == len(code)
        offpeak = {
            code.autocorrelation(shift) for shift in range(1, len(code))
        }
        assert offpeak == {-1.0}

    def test_unsupported_register_length(self):
        with pytest.raises(ValueError, match="unsupported"):
            PnCode.msequence(2)
        with pytest.raises(ValueError, match="unsupported"):
            PnCode.msequence(13)

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError, match="non-zero"):
            PnCode.msequence(7, seed_state=0)

    def test_seed_rotates_phase(self):
        a = PnCode.msequence(7, seed_state=1)
        b = PnCode.msequence(7, seed_state=2)
        assert not np.array_equal(a.chips, b.chips)
        # Same sequence, different phase: some circular shift matches.
        matches = any(
            np.array_equal(np.roll(a.chips, k), b.chips)
            for k in range(len(a))
        )
        assert matches


class TestRandomCode:
    def test_length(self):
        assert len(PnCode.random_code(100, seed=1)) == 100

    def test_reproducible(self):
        a = PnCode.random_code(64, seed=9)
        b = PnCode.random_code(64, seed=9)
        assert np.array_equal(a.chips, b.chips)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            PnCode.random_code(0)


class TestValidation:
    def test_non_pm1_chips_rejected(self):
        with pytest.raises(ValueError):
            PnCode(np.array([1.0, 0.0, -1.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PnCode(np.array([]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            PnCode(np.ones((2, 2)))


@given(st.integers(min_value=3, max_value=10), st.integers(min_value=1))
@settings(max_examples=40, deadline=None)
def test_msequence_chips_always_pm1(register_length, seed_state):
    mask = (1 << register_length) - 1
    seed = (seed_state & mask) or 1
    code = PnCode.msequence(register_length, seed_state=seed)
    assert set(np.unique(code.chips)) <= {-1.0, 1.0}


@given(st.integers(min_value=3, max_value=9))
@settings(max_examples=20, deadline=None)
def test_msequence_autocorrelation_peak_dominates(register_length):
    code = PnCode.msequence(register_length)
    peak = code.autocorrelation(0)
    for shift in range(1, len(code)):
        assert abs(code.autocorrelation(shift)) < peak
