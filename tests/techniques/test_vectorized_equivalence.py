"""Differential suite: vectorized detectors vs. their scalar references.

Every rewritten hot path keeps its scalar original as a module-level
``_reference_*`` function; hypothesis drives both over randomized arrival
series and offset grids and requires agreement — statistics within 1e-9,
identical verdicts and best offsets.  Arrival times are built from scaled
integers so a series never sits within one float ulp of a bin edge, which
would make "equivalence" depend on tie-breaking noise rather than on the
kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymity.p2p import ResponseRecord
from repro.techniques import flow_correlation as flow_correlation_module
from repro.techniques import timing_attack as timing_attack_module
from repro.techniques import visibility as visibility_module
from repro.techniques.flow_correlation import (
    PacketCountingCorrelator,
    _reference_correlate,
)
from repro.techniques.interval_watermark import (
    SquareWaveConfig,
    SquareWaveDetector,
)
from repro.techniques.interval_watermark import (
    _reference_detect as _reference_square_detect,
)
from repro.techniques.timing_attack import _reference_neighbor_medians
from repro.techniques.visibility import (
    AutocorrelationVisibilityTest,
    _reference_test,
)
from repro.techniques.watermark import (
    PnCode,
    WatermarkConfig,
    WatermarkDetector,
    _reference_detect,
)

TOLERANCE = 1e-9

#: Arrival times as 1 ms-granularity integers over [0, 80 s) — boundary-
#: safe (no timestamp within an ulp of a chip/window edge) yet dense
#: enough to occupy every bin a detector cares about.
arrival_series = st.lists(
    st.integers(min_value=0, max_value=80_000),
    min_size=0,
    max_size=400,
).map(lambda ms: sorted(t / 1000.0 for t in ms))

offset_steps = st.sampled_from([0.03, 0.05, 0.1, 0.17])
max_offsets = st.sampled_from([0.0, 0.25, 1.0])


def _assert_equivalent_argmax(vectorized, reference, statistic_at):
    """Both paths must pick a maximizer of the *same* objective.

    Strict equality of the winning offset/lag is too strong: when two
    trial points tie within float summation noise (matmul and 1-D dot
    accumulate in different orders), argmax and the scalar strict-``>``
    sweep may break the tie differently.  What matters is that the
    vectorized winner scores within tolerance of the scalar best.
    """
    if vectorized == reference:
        return
    assert statistic_at(vectorized) == pytest.approx(
        statistic_at(reference), abs=TOLERANCE
    )


class TestDsssEquivalence:
    @given(arrival_series, max_offsets, offset_steps, st.sampled_from([4, 6]))
    @settings(max_examples=60, deadline=None)
    def test_detect_matches_reference(self, times, max_offset, step, order):
        detector = WatermarkDetector(
            PnCode.msequence(order), WatermarkConfig(chip_duration=0.5)
        )
        vectorized = detector.detect(
            times, 0.0, max_offset=max_offset, offset_step=step
        )
        reference = _reference_detect(
            detector, times, 0.0, max_offset=max_offset, offset_step=step
        )
        assert vectorized.correlation == pytest.approx(
            reference.correlation, abs=TOLERANCE
        )
        assert vectorized.detected == reference.detected
        _assert_equivalent_argmax(
            vectorized.best_offset,
            reference.best_offset,
            lambda offset: detector.correlate(times, 0.0, offset),
        )
        assert vectorized.n_packets == reference.n_packets


class TestSquareWaveEquivalence:
    @given(arrival_series, max_offsets, offset_steps)
    @settings(max_examples=60, deadline=None)
    def test_detect_matches_reference(self, times, max_offset, step):
        detector = SquareWaveDetector(SquareWaveConfig(period=4.0, n_periods=8))
        vectorized = detector.detect(
            times, 0.0, max_offset=max_offset, offset_step=step
        )
        reference = _reference_square_detect(
            detector, times, 0.0, max_offset=max_offset, offset_step=step
        )
        assert vectorized.statistic == pytest.approx(
            reference.statistic, abs=TOLERANCE
        )
        assert vectorized.detected == reference.detected


class TestFlowCorrelationEquivalence:
    @given(arrival_series, arrival_series, offset_steps)
    @settings(max_examples=60, deadline=None)
    def test_correlate_matches_reference(self, reference_times, candidate, step):
        correlator = PacketCountingCorrelator(
            window=0.5, max_offset=1.0, offset_step=step
        )
        vectorized = correlator.correlate(
            reference_times, candidate, 0.0, 30.0
        )
        reference = _reference_correlate(
            correlator, reference_times, candidate, 0.0, 30.0
        )
        assert vectorized.correlation == pytest.approx(
            reference.correlation, abs=TOLERANCE
        )

        def _pearson_at(offset):
            binned_reference = flow_correlation_module.binned_counts(
                reference_times, 0.0, 30.0, correlator.window
            )
            binned_candidate = flow_correlation_module.binned_counts(
                candidate, offset, 30.0, correlator.window
            )
            return flow_correlation_module.pearson(
                binned_reference, binned_candidate
            )

        _assert_equivalent_argmax(
            vectorized.best_offset, reference.best_offset, _pearson_at
        )
        assert vectorized.confidence == reference.confidence


class TestVisibilityEquivalence:
    @given(arrival_series, st.sampled_from([8, 32, 64]))
    @settings(max_examples=60, deadline=None)
    def test_scan_matches_reference(self, times, max_lag):
        tester = AutocorrelationVisibilityTest(window=0.5, max_lag=max_lag)
        vectorized = tester.test(times, 0.0, 40.0)
        reference = _reference_test(tester, times, 0.0, 40.0)
        assert vectorized.statistic == pytest.approx(
            reference.statistic, abs=TOLERANCE
        )
        assert vectorized.watermark_suspected == reference.watermark_suspected

        def _statistic_at(lag):
            if lag == 0:
                return 0.0
            series = tester.rate_series(times, 0.0, 40.0)
            centered = series - series.mean()
            denominator = float(np.dot(centered, centered))
            if denominator == 0:
                return 0.0
            autocorrelation = (
                float(np.dot(centered[:-lag], centered[lag:])) / denominator
            )
            return abs(autocorrelation) * np.sqrt(centered.size)

        _assert_equivalent_argmax(
            vectorized.peak_lag, reference.peak_lag, _statistic_at
        )


class TestGroupedMedianEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=1, max_value=500_000),
            ),
            min_size=1,
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_assessment_grouping_matches_reference(self, draws):
        records = [
            ResponseRecord(
                neighbor=f"peer-{which}",
                file_id="f",
                query_sent_at=float(index),
                arrived_at=float(index) + rt_us / 1e6,
                trial=index,
            )
            for index, (which, rt_us) in enumerate(draws)
        ]
        reference = _reference_neighbor_medians(records)
        neighbors = np.array([record.neighbor for record in records])
        response_times = np.array(
            [record.arrived_at for record in records], dtype=float
        ) - np.array(
            [record.query_sent_at for record in records], dtype=float
        )
        unique, medians, counts = timing_attack_module.grouped_median(
            neighbors, response_times
        )
        assert [str(name) for name in unique] == list(reference)
        for name, median, count in zip(unique, medians, counts):
            expected_median, expected_count = reference[str(name)]
            assert float(median) == pytest.approx(
                expected_median, abs=TOLERANCE
            )
            assert int(count) == expected_count


class TestSweepValidation:
    """Satellite regression: bad sweep parameters raise instead of hanging."""

    def test_watermark_detector_rejects_bad_sweep(self):
        detector = WatermarkDetector(PnCode.msequence(4), WatermarkConfig())
        with pytest.raises(ValueError, match="offset_step"):
            detector.detect([1.0], 0.0, offset_step=0.0)
        with pytest.raises(ValueError, match="offset_step"):
            detector.detect([1.0], 0.0, offset_step=-0.05)
        with pytest.raises(ValueError, match="max_offset"):
            detector.detect([1.0], 0.0, max_offset=-1.0)

    def test_square_wave_detector_rejects_bad_sweep(self):
        detector = SquareWaveDetector(SquareWaveConfig())
        with pytest.raises(ValueError, match="offset_step"):
            detector.detect([1.0], 0.0, offset_step=0.0)
        with pytest.raises(ValueError, match="max_offset"):
            detector.detect([1.0], 0.0, max_offset=-0.5)

    def test_flow_correlator_rejects_bad_sweep(self):
        with pytest.raises(ValueError, match="offset_step"):
            PacketCountingCorrelator(offset_step=0.0)
        with pytest.raises(ValueError, match="offset_step"):
            PacketCountingCorrelator(offset_step=-0.1)
        with pytest.raises(ValueError, match="max_offset"):
            PacketCountingCorrelator(max_offset=-1.0)

    def test_empty_series_still_validates_sweep(self):
        # Validation precedes the empty-series early return.
        detector = WatermarkDetector(PnCode.msequence(4), WatermarkConfig())
        with pytest.raises(ValueError):
            detector.detect([], 0.0, offset_step=0.0)


def test_reference_twins_stay_importable():
    """The scalar twins are API the differential layer depends on."""
    assert callable(_reference_detect)
    assert callable(_reference_square_detect)
    assert callable(_reference_correlate)
    assert callable(visibility_module._reference_test)
    assert callable(timing_attack_module._reference_neighbor_medians)
