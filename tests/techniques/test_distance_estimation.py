"""Tests for hop-distance estimation in the timing attack.

The paper's IV.A description: identify whether neighbours "are sources or
trusted nodes of the sources" — i.e. distinguish distance 0 from distance
1 (and beyond).
"""

import pytest

from repro.anonymity.p2p import P2POverlay, TimingParameters
from repro.techniques.timing_attack import OneSwarmTimingAttack


def chain_overlay(source_distance: int, seed: int = 8) -> P2POverlay:
    """le -- n0 -- n1 -- ... with a source at the given distance from n0."""
    overlay = P2POverlay(seed=seed)
    overlay.add_peer("le")
    previous = "le"
    for index in range(source_distance):
        name = f"n{index}"
        overlay.add_peer(name)
        overlay.befriend(previous, name, latency=0.02)
        previous = name
    overlay.add_peer("src", files={"f"})
    overlay.befriend(previous, "src", latency=0.02)
    return overlay


class TestGroundTruthDistance:
    def test_source_is_distance_zero(self):
        overlay = chain_overlay(1)
        assert overlay.distance_to_source("src", "f") == 0

    def test_chain_distances(self):
        overlay = chain_overlay(3)
        assert overlay.distance_to_source("n0", "f") == 3
        assert overlay.distance_to_source("n2", "f") == 1
        assert overlay.distance_to_source("le", "f") == 4

    def test_unreachable_is_none(self):
        overlay = P2POverlay(seed=1)
        overlay.add_peer("lonely")
        assert overlay.distance_to_source("lonely", "nothing") is None


class TestEstimation:
    @pytest.mark.parametrize("true_distance", [0, 1, 2, 3])
    def test_chain_distance_estimated_correctly(self, true_distance):
        # Neighbour n0's distance to the source equals true_distance; for
        # distance 0 the investigator befriends the source directly.
        overlay = chain_overlay(true_distance, seed=40 + true_distance)
        result = OneSwarmTimingAttack().investigate(
            overlay, "le", "f", trials=15, ttl=true_distance + 2
        )
        neighbour = result.assessments[0]
        assert neighbour.estimated_distance == true_distance

    def test_trusted_node_distinguished_from_source(self):
        """Distance-1 neighbours (trusted nodes) are not sources."""
        overlay = P2POverlay(seed=9)
        overlay.add_peer("le")
        overlay.add_peer("direct-source", files={"f"})
        overlay.add_peer("trusted-node")
        overlay.add_peer("behind", files={"f"})
        overlay.befriend("le", "direct-source", latency=0.02)
        overlay.befriend("le", "trusted-node", latency=0.02)
        overlay.befriend("trusted-node", "behind", latency=0.02)
        result = OneSwarmTimingAttack().investigate(
            overlay, "le", "f", trials=15
        )
        by_name = {a.name: a for a in result.assessments}
        assert by_name["direct-source"].estimated_distance == 0
        assert by_name["direct-source"].classified_source
        assert by_name["trusted-node"].estimated_distance == 1
        assert not by_name["trusted-node"].classified_source

    def test_estimate_never_negative(self):
        timing = TimingParameters()
        attack = OneSwarmTimingAttack()
        for excess in (0.0, 0.001, 0.05, 0.2, 1.0, 5.0):
            assert attack.estimate_distance(excess, timing) >= 0
