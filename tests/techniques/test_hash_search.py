"""Unit tests for the hash-search technique (Table 1 scene 18)."""

from repro.core import ProcessKind
from repro.storage import BlockDevice, KnownFileSet, SimpleFilesystem
from repro.techniques.hash_search import HashSearchTechnique


def build_drive():
    fs = SimpleFilesystem(BlockDevice(n_blocks=128, block_size=64))
    fs.write_file("innocent.txt", "grocery list")
    fs.write_file("bad1.jpg", "contraband-one")
    fs.write_file("bad2.jpg", "contraband-two")
    fs.delete_file("bad2.jpg")
    known = KnownFileSet.from_contents(["contraband-one", "contraband-two"])
    return fs, known


class TestSearch:
    def test_finds_live_and_deleted_hits(self):
        fs, known = build_drive()
        report = HashSearchTechnique(known).run(fs)
        names = {hit.file_name for hit in report.hits}
        assert names == {"bad1.jpg", "(deleted) bad2.jpg"}
        assert report.hit_count == 2
        deleted_hits = [h for h in report.hits if h.recovered_deleted]
        assert len(deleted_hits) == 1

    def test_can_exclude_deleted(self):
        fs, known = build_drive()
        report = HashSearchTechnique(known).run(fs, include_deleted=False)
        assert {hit.file_name for hit in report.hits} == {"bad1.jpg"}

    def test_no_hits_on_clean_drive(self):
        fs = SimpleFilesystem(BlockDevice(n_blocks=64, block_size=64))
        fs.write_file("a.txt", "nothing to see")
        report = HashSearchTechnique(KnownFileSet()).run(fs)
        assert report.hit_count == 0
        assert report.files_examined == 1

    def test_hit_digests_verify(self):
        from repro.storage import sha256_hex

        fs, known = build_drive()
        report = HashSearchTechnique(known).run(fs)
        live_hit = next(h for h in report.hits if h.file_name == "bad1.jpg")
        assert live_hit.digest == sha256_hex("contraband-one")


class TestLegalProfile:
    def test_requires_warrant_despite_custody(self):
        __, known = build_drive()
        technique = HashSearchTechnique(known)
        assert technique.required_process() is ProcessKind.SEARCH_WARRANT

    def test_action_carries_crist_flag(self):
        __, known = build_drive()
        action = HashSearchTechnique(known).required_actions()[0]
        assert action.doctrine.hash_search_of_lawful_media
