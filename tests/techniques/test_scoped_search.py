"""Unit tests for the warrant-scoped search technique."""

import pytest

from repro.core import ProcessKind
from repro.core.scope import ExaminedRecord, WarrantScope
from repro.storage import BlockDevice, SimpleFilesystem
from repro.techniques.scoped_search import ScopedSearchTechnique


@pytest.fixture()
def scope():
    return WarrantScope(
        place="suspect-pc",
        crime="wire fraud",
        categories=frozenset({"financial-records"}),
    )


RECORDS = [
    ExaminedRecord("ledger.xlsx", "financial-records", "suspect-pc"),
    ExaminedRecord("wires.csv", "financial-records", "suspect-pc"),
    ExaminedRecord(
        "cp.jpg", "photos", "suspect-pc", incriminating_apparent=True
    ),
    ExaminedRecord("diary.txt", "personal-notes", "suspect-pc"),
    ExaminedRecord("backup.xlsx", "financial-records", "cloud-host"),
]


class TestRun:
    def test_partition(self, scope):
        report = ScopedSearchTechnique(scope).run(RECORDS)
        assert {r.name for r in report.seized_in_scope} == {
            "ledger.xlsx",
            "wires.csv",
        }
        assert {r.name for r in report.seized_plain_view} == {"cp.jpg"}
        assert {r.name for r in report.left_untouched} == {
            "diary.txt",
            "backup.xlsx",
        }
        assert report.total_examined == 5
        assert report.over_seizure_count == 2

    def test_multi_location_warning(self, scope):
        report = ScopedSearchTechnique(scope).run(RECORDS)
        assert report.locations_needing_warrants == frozenset(
            {"cloud-host"}
        )

    def test_empty_records(self, scope):
        report = ScopedSearchTechnique(scope).run([])
        assert report.total_examined == 0
        assert report.locations_needing_warrants == frozenset()


class TestFilesystemRun:
    def test_categorizer_driven(self, scope):
        fs = SimpleFilesystem(BlockDevice(n_blocks=64, block_size=32))
        fs.write_file("q3-ledger.xlsx", "numbers")
        fs.write_file("notes.txt", "musings")
        fs.write_file("cp.jpg", "JPEG[bad]GEPJ")
        fs.delete_file("cp.jpg")

        def categorize(name, data):
            if "ledger" in name:
                category = "financial-records"
            elif name.endswith(".jpg") or "jpg" in name:
                category = "photos"
            else:
                category = "personal-notes"
            return ExaminedRecord(
                name=name,
                category=category,
                location="suspect-pc",
                incriminating_apparent=b"JPEG[bad" in data,
            )

        report = ScopedSearchTechnique(scope).run_on_filesystem(
            fs, categorize
        )
        assert {r.name for r in report.seized_in_scope} == {
            "q3-ledger.xlsx"
        }
        # The deleted contraband is recoverable and facially incriminating.
        assert {r.name for r in report.seized_plain_view} == {
            "(deleted) cp.jpg"
        }
        assert {r.name for r in report.left_untouched} == {"notes.txt"}

    def test_location_override(self, scope):
        fs = SimpleFilesystem(BlockDevice(n_blocks=32, block_size=32))
        fs.write_file("ledger.xlsx", "numbers")

        def categorize(name, data):
            return ExaminedRecord(name, "financial-records", "elsewhere")

        report = ScopedSearchTechnique(scope).run_on_filesystem(
            fs, categorize, location="suspect-pc"
        )
        assert len(report.seized_in_scope) == 1


class TestLegalProfile:
    def test_scoped_search_runs_under_its_warrant(self, scope):
        technique = ScopedSearchTechnique(scope)
        assert technique.required_process() is ProcessKind.SEARCH_WARRANT
        action = technique.required_actions()[0]
        assert "wire fraud" in action.description
        assert "financial-records" in action.description
