"""Unit tests for the passive flow-correlation baseline."""

import numpy as np
import pytest

from repro.core import ProcessKind
from repro.techniques.flow_correlation import (
    PacketCountingCorrelator,
    binned_counts,
    pearson,
)


class TestBinnedCounts:
    def test_counts(self):
        counts = binned_counts(
            [0.1, 0.2, 1.5, 2.9], start=0.0, duration=3.0, window=1.0
        )
        assert list(counts) == [2, 1, 1]

    def test_out_of_range_ignored(self):
        counts = binned_counts([5.0], start=0.0, duration=3.0, window=1.0)
        assert counts.sum() == 0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            binned_counts([1.0], 0.0, 3.0, window=0)


class TestPearson:
    def test_perfect_correlation(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert pearson(a, a * 2 + 1) == pytest.approx(1.0)

    def test_anticorrelation(self):
        a = np.array([1.0, 2.0, 3.0])
        assert pearson(a, -a) == pytest.approx(-1.0)

    def test_constant_series_scores_zero(self):
        a = np.array([1.0, 1.0, 1.0])
        b = np.array([1.0, 2.0, 3.0])
        assert pearson(a, b) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson(np.ones(3), np.ones(4))


class TestCorrelator:
    def test_self_correlation_with_delay(self):
        import random

        rng = random.Random(4)
        reference = []
        t = 0.0
        while t < 30.0:
            t += rng.expovariate(20.0)
            reference.append(t)
        shifted = [x + 0.25 for x in reference]
        correlator = PacketCountingCorrelator(
            window=0.5, max_offset=1.0, offset_step=0.05
        )
        result = correlator.correlate(
            reference, shifted, start=0.0, duration=30.0
        )
        assert result.correlation > 0.9
        assert result.best_offset == pytest.approx(0.25, abs=0.1)
        assert correlator.matches(result)

    def test_unrelated_flows_do_not_match(self):
        import random

        def poisson_train(seed):
            rng = random.Random(seed)
            out, t = [], 0.0
            while t < 30.0:
                t += rng.expovariate(20.0)
                out.append(t)
            return out

        correlator = PacketCountingCorrelator(window=0.5, threshold=0.5)
        result = correlator.correlate(
            poisson_train(1), poisson_train(2), start=0.0, duration=30.0
        )
        assert not correlator.matches(result)

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketCountingCorrelator(window=0)
        with pytest.raises(ValueError):
            PacketCountingCorrelator(offset_step=0)

    def test_legal_profile_needs_court_order(self):
        assessment = PacketCountingCorrelator().assess()
        assert assessment.required_process is ProcessKind.COURT_ORDER

    def test_result_counts(self):
        correlator = PacketCountingCorrelator(window=1.0, max_offset=0.0)
        result = correlator.correlate(
            [0.5, 1.5], [0.6], start=0.0, duration=2.0
        )
        assert result.n_reference == 2
        assert result.n_candidate == 1
