"""Unit tests for watermark embedding and detection."""

import pytest

from repro.core import Feasibility, ProcessKind
from repro.netsim.engine import Simulator
from repro.techniques.watermark import (
    DsssWatermarkTechnique,
    FlowWatermarker,
    PnCode,
    WatermarkConfig,
    WatermarkDetector,
)


class DirectChannel:
    """A channel with zero network between the two ends."""

    def __init__(self, sim: Simulator, delay: float = 0.0) -> None:
        self.sim = sim
        self.delay = delay
        self.arrivals: list[float] = []

    def send_downstream(self, size: int = 512) -> None:
        self.sim.schedule(
            self.delay, lambda: self.arrivals.append(self.sim.now)
        )


class TestConfigValidation:
    def test_bad_chip_duration(self):
        with pytest.raises(ValueError):
            WatermarkConfig(chip_duration=0)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            WatermarkConfig(base_rate=-1)

    @pytest.mark.parametrize("amplitude", [0.0, 1.0, 1.5])
    def test_bad_amplitude(self, amplitude):
        with pytest.raises(ValueError):
            WatermarkConfig(amplitude=amplitude)

    def test_threshold_scales_with_code_length(self):
        config = WatermarkConfig(threshold_sigmas=4.0)
        assert config.threshold(127) > config.threshold(1023)


class TestEmbedding:
    def test_packet_count_near_expectation(self):
        sim = Simulator()
        channel = DirectChannel(sim)
        code = PnCode.msequence(7)
        config = WatermarkConfig(
            chip_duration=0.5, base_rate=20.0, amplitude=0.3
        )
        watermarker = FlowWatermarker(code, config, seed=1)
        count = watermarker.embed(channel, start=0.0)
        expected = config.base_rate * watermarker.duration
        assert 0.8 * expected < count < 1.2 * expected

    def test_duration(self):
        code = PnCode.msequence(6)  # 63 chips
        config = WatermarkConfig(chip_duration=0.5)
        watermarker = FlowWatermarker(code, config)
        assert watermarker.duration == pytest.approx(31.5)

    def test_rate_modulation_visible_per_chip(self):
        sim = Simulator()
        channel = DirectChannel(sim)
        code = PnCode.msequence(5)  # short, 31 chips
        config = WatermarkConfig(
            chip_duration=2.0, base_rate=50.0, amplitude=0.5
        )
        FlowWatermarker(code, config, seed=2).embed(channel, start=0.0)
        sim.run()
        # Count packets in +1 chips vs -1 chips.
        high = low = 0
        for t in channel.arrivals:
            chip = code.chips[int(t / config.chip_duration)]
            if chip > 0:
                high += 1
            else:
                low += 1
        n_high_chips = int((code.chips > 0).sum())
        n_low_chips = len(code) - n_high_chips
        assert high / n_high_chips > 1.5 * (low / n_low_chips)


class TestDetection:
    def make_clean_run(self, delay=0.0, seed=3):
        sim = Simulator()
        channel = DirectChannel(sim, delay=delay)
        code = PnCode.msequence(7)
        config = WatermarkConfig(
            chip_duration=0.5, base_rate=20.0, amplitude=0.3
        )
        FlowWatermarker(code, config, seed=seed).embed(channel, start=1.0)
        sim.run()
        return channel, code, config

    def test_detects_on_clean_channel(self):
        channel, code, config = self.make_clean_run()
        detector = WatermarkDetector(code, config)
        result = detector.detect(channel.arrivals, start=1.0)
        assert result.detected
        assert result.correlation > 0.5
        assert result.n_packets == len(channel.arrivals)

    def test_offset_search_recovers_delay(self):
        channel, code, config = self.make_clean_run(delay=0.3)
        detector = WatermarkDetector(code, config)
        result = detector.detect(
            channel.arrivals, start=1.0, max_offset=1.0, offset_step=0.05
        )
        assert result.detected
        assert result.best_offset == pytest.approx(0.3, abs=0.1)

    def test_no_false_positive_on_poisson_traffic(self):
        import random

        rng = random.Random(8)
        code = PnCode.msequence(7)
        config = WatermarkConfig(
            chip_duration=0.5, base_rate=20.0, amplitude=0.3
        )
        duration = len(code) * config.chip_duration
        arrivals = []
        t = 0.0
        while t < duration:
            t += rng.expovariate(config.base_rate)
            arrivals.append(t)
        detector = WatermarkDetector(code, config)
        result = detector.detect(arrivals, start=0.0)
        assert not result.detected

    def test_empty_arrivals_scores_zero(self):
        code = PnCode.msequence(7)
        config = WatermarkConfig()
        detector = WatermarkDetector(code, config)
        result = detector.detect([], start=0.0)
        assert result.correlation == 0.0
        assert not result.detected

    def test_wrong_code_does_not_detect(self):
        channel, code, config = self.make_clean_run()
        other = PnCode.msequence(7, seed_state=5)  # different phase
        detector = WatermarkDetector(other, config)
        result = detector.detect(
            channel.arrivals, start=1.0, max_offset=0.2
        )
        assert result.correlation < 0.3


class TestTechniqueLegalProfile:
    def test_requires_court_order(self):
        assessment = DsssWatermarkTechnique().assess()
        assert assessment.required_process is ProcessKind.COURT_ORDER
        assert assessment.feasibility is Feasibility.WORKABLE_WITH_PROCESS

    def test_private_search_variant_viable(self):
        # Section IV.B situation two: campus gateways.
        assert DsssWatermarkTechnique().assess().private_search_viable

    def test_default_construction(self):
        technique = DsssWatermarkTechnique()
        assert len(technique.code) == 127
        assert technique.detector().code is technique.code
        assert technique.watermarker().config is technique.config
