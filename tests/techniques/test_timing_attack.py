"""Unit tests for the OneSwarm-style timing attack."""

import pytest

from repro.anonymity.p2p import P2POverlay
from repro.core import Feasibility, ProcessKind
from repro.techniques.timing_attack import (
    AttackMetrics,
    OneSwarmTimingAttack,
)


def build_overlay():
    overlay = P2POverlay(seed=13)
    overlay.add_peer("le")
    overlay.add_peer("direct-source", files={"f"})
    overlay.add_peer("forwarder")
    overlay.add_peer("hidden-source", files={"f"})
    overlay.befriend("le", "direct-source", latency=0.02)
    overlay.befriend("le", "forwarder", latency=0.02)
    overlay.befriend("forwarder", "hidden-source", latency=0.02)
    return overlay


class TestClassification:
    def test_identifies_direct_source(self):
        overlay = build_overlay()
        attack = OneSwarmTimingAttack()
        result = attack.investigate(overlay, "le", "f", trials=10)
        assert result.identified_sources() == ["direct-source"]

    def test_forwarder_not_misclassified(self):
        overlay = build_overlay()
        attack = OneSwarmTimingAttack()
        result = attack.investigate(overlay, "le", "f", trials=10)
        forwarder = next(
            a for a in result.assessments if a.name == "forwarder"
        )
        assert not forwarder.classified_source
        assert forwarder.excess_delay > attack.excess_threshold

    def test_assessments_carry_measurements(self):
        overlay = build_overlay()
        result = OneSwarmTimingAttack().investigate(
            overlay, "le", "f", trials=5
        )
        for assessment in result.assessments:
            assert assessment.n_responses > 0
            assert assessment.median_response_time > 0
            assert assessment.ping_rtt > 0

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            OneSwarmTimingAttack(excess_threshold=0)

    def test_unknown_investigator_rejected(self):
        overlay = build_overlay()
        with pytest.raises(KeyError):
            OneSwarmTimingAttack().investigate(overlay, "ghost", "f")


class TestScoring:
    def test_perfect_run_scores_one(self):
        overlay = build_overlay()
        attack = OneSwarmTimingAttack()
        result = attack.investigate(overlay, "le", "f", trials=10)
        metrics = attack.score(result, overlay)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0

    def test_metrics_math(self):
        metrics = AttackMetrics(
            true_positives=3,
            false_positives=1,
            false_negatives=1,
            true_negatives=5,
        )
        assert metrics.precision == pytest.approx(0.75)
        assert metrics.recall == pytest.approx(0.75)
        assert metrics.f1 == pytest.approx(0.75)

    def test_empty_metrics_degenerate(self):
        metrics = AttackMetrics(0, 0, 0, 0)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0


class TestLegalProfile:
    def test_workable_without_process(self):
        assessment = OneSwarmTimingAttack().assess()
        assert assessment.feasibility is Feasibility.WORKABLE_WITHOUT_PROCESS
        assert assessment.required_process is ProcessKind.NONE

    def test_recommendation_mentions_traceback(self):
        assessment = OneSwarmTimingAttack().assess()
        assert "traceback" in assessment.recommendation
