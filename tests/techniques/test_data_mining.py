"""Unit tests for the data-mining technique (Table 1 scene 19)."""

import pytest

from repro.core import ProcessKind
from repro.techniques.data_mining import DataMiningTechnique

RECORDS = [
    {"ip": "10.0.0.1", "port": 80, "user": "a"},
    {"ip": "10.0.0.1", "port": 443, "user": "a"},
    {"ip": "10.0.0.2", "port": 80, "user": "b"},
    {"ip": "10.0.0.1", "port": 80, "user": "c"},
    {"port": 22},  # partial record
]


class TestMining:
    def test_frequencies(self):
        report = DataMiningTechnique(fields=["ip", "port"]).run(RECORDS)
        assert report.frequencies["ip"]["10.0.0.1"] == 3
        assert report.frequencies["port"][80] == 3
        assert report.n_records == 5

    def test_cooccurrence(self):
        report = DataMiningTechnique(fields=["ip", "port"]).run(RECORDS)
        top = report.top_cooccurrences[0]
        assert (top.value_a, top.value_b) == ("10.0.0.1", 80)
        assert top.count == 2

    def test_flagging(self):
        technique = DataMiningTechnique(
            fields=["ip"],
            flag_predicate=lambda r: r.get("port") == 22,
        )
        report = technique.run(RECORDS)
        assert report.flagged == (4,)

    def test_no_predicate_no_flags(self):
        report = DataMiningTechnique(fields=["ip"]).run(RECORDS)
        assert report.flagged == ()

    def test_partial_records_tolerated(self):
        report = DataMiningTechnique(fields=["user"]).run(RECORDS)
        assert sum(report.frequencies["user"].values()) == 4

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            DataMiningTechnique(fields=[])

    def test_top_k_limits_output(self):
        technique = DataMiningTechnique(fields=["ip", "port", "user"], top_k=2)
        report = technique.run(RECORDS)
        assert len(report.top_cooccurrences) == 2


class TestLegalProfile:
    def test_sloane_means_no_process(self):
        technique = DataMiningTechnique(fields=["ip"])
        assert technique.required_process() is ProcessKind.NONE

    def test_action_carries_mining_flag(self):
        action = DataMiningTechnique(fields=["ip"]).required_actions()[0]
        assert action.doctrine.mining_of_lawful_data
