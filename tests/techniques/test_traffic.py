"""Unit tests for the background traffic generators."""

import pytest

from repro.netsim.engine import Simulator
from repro.techniques.traffic import OnOffFlow, PoissonFlow


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def send_downstream(self, size=512):
        self.arrivals.append(self.sim.now)


class TestPoissonFlow:
    def test_rate_statistics(self):
        sim = Simulator()
        sink = Sink(sim)
        count = PoissonFlow(rate=50.0, seed=1).schedule(
            sink, start=0.0, duration=100.0
        )
        sim.run()
        assert len(sink.arrivals) == count
        # mean 5000, std ~71: a wide tolerance keeps this robust.
        assert 4500 < count < 5500

    def test_all_arrivals_in_window(self):
        sim = Simulator()
        sink = Sink(sim)
        PoissonFlow(rate=30.0, seed=2).schedule(
            sink, start=5.0, duration=10.0
        )
        sim.run()
        assert all(5.0 <= t <= 15.0 for t in sink.arrivals)

    def test_reproducible(self):
        def run(seed):
            sim = Simulator()
            sink = Sink(sim)
            PoissonFlow(rate=20.0, seed=seed).schedule(sink, 0.0, 10.0)
            sim.run()
            return sink.arrivals

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonFlow(rate=0)


class TestOnOffFlow:
    def test_produces_bursts(self):
        sim = Simulator()
        sink = Sink(sim)
        OnOffFlow(rate=100.0, mean_on=1.0, mean_off=1.0, seed=3).schedule(
            sink, start=0.0, duration=60.0
        )
        sim.run()
        # Roughly half the time is ON: expect ~3000 +/- wide margin.
        assert 1000 < len(sink.arrivals) < 5000

    def test_off_periods_exist(self):
        sim = Simulator()
        sink = Sink(sim)
        OnOffFlow(rate=200.0, mean_on=0.5, mean_off=2.0, seed=4).schedule(
            sink, start=0.0, duration=60.0
        )
        sim.run()
        gaps = [
            b - a for a, b in zip(sink.arrivals, sink.arrivals[1:])
        ]
        # During OFF periods the inter-arrival gap far exceeds 1/rate.
        assert max(gaps) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffFlow(rate=0)
        with pytest.raises(ValueError):
            OnOffFlow(rate=1.0, mean_on=0)
        with pytest.raises(ValueError):
            OnOffFlow(rate=1.0, mean_off=-1)
