"""Regression tests for the Technique base-class contract."""

from repro.core import ComplianceEngine
from repro.core.enums import ProcessKind
from repro.techniques.base import Technique


class _NoActionTechnique(Technique):
    """A technique that (legitimately) declares no acquisitions."""

    name = "pure-computation technique"

    def required_actions(self):
        return []


class TestRequiredProcessEmpty:
    def test_zero_action_technique_needs_no_process(self):
        # Regression: max() over an empty generator used to raise
        # ValueError here.
        technique = _NoActionTechnique()
        assert technique.required_process() is ProcessKind.NONE

    def test_explicit_engine_accepted(self):
        technique = _NoActionTechnique()
        assert (
            technique.required_process(ComplianceEngine())
            is ProcessKind.NONE
        )
