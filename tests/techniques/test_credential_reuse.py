"""Unit tests for post-arrest credentialed access (Table 1 scene 20)."""

import pytest

from repro.core import ProcessKind
from repro.netsim import Network
from repro.netsim.isp import IspNode
from repro.techniques.credential_reuse import (
    Credential,
    CredentialedAccessTechnique,
)


@pytest.fixture()
def provider():
    net = Network(seed=2)
    isp = IspNode("cloud", net.sim, serves_public=True)
    isp.register_subscriber("mallory", "M. Mallory", "9 Oak Ave")
    isp.store_content("mallory", "incriminating ledger")
    isp.store_content("mallory", "co-conspirator emails")
    isp.register_subscriber("other", "Other User", "1 Pine Rd")
    isp.store_content("other", "unrelated data")
    return isp


class TestRetrieval:
    def test_retrieves_only_defendants_items(self, provider):
        technique = CredentialedAccessTechnique(
            Credential("mallory", "hunter2")
        )
        report = technique.run(provider, "mallory")
        assert report.items_retrieved == (
            "incriminating ledger",
            "co-conspirator emails",
        )

    def test_wrong_account_rejected(self, provider):
        technique = CredentialedAccessTechnique(
            Credential("mallory", "hunter2")
        )
        with pytest.raises(PermissionError):
            technique.run(provider, "other")


class TestLegalProfile:
    def test_lawful_credentials_need_no_process(self):
        technique = CredentialedAccessTechnique(
            Credential("d", "pw", lawfully_obtained=True)
        )
        assert technique.required_process() is ProcessKind.NONE

    def test_unlawful_credentials_need_a_warrant(self):
        # Without the lawful-acquisition doctrine flag, the SCA/Fourth
        # Amendment analysis reasserts itself.
        technique = CredentialedAccessTechnique(
            Credential("d", "pw", lawfully_obtained=False)
        )
        assert technique.required_process() is ProcessKind.SEARCH_WARRANT
