"""Unit tests for the square-wave watermark and the adversary's test."""

import pytest

from repro.core import ProcessKind
from repro.netsim.engine import Simulator
from repro.techniques.interval_watermark import (
    SquareWaveConfig,
    SquareWaveTechnique,
)
from repro.techniques.traffic import PoissonFlow
from repro.techniques.visibility import AutocorrelationVisibilityTest
from repro.techniques.watermark import (
    FlowWatermarker,
    PnCode,
    WatermarkConfig,
)


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def send_downstream(self, size=512):
        self.arrivals.append(self.sim.now)


def embed_square(seed=1, **config_kwargs):
    defaults = dict(period=4.0, n_periods=16, base_rate=20.0, amplitude=0.3)
    defaults.update(config_kwargs)
    config = SquareWaveConfig(**defaults)
    technique = SquareWaveTechnique(config)
    sim = Simulator()
    sink = Sink(sim)
    technique.watermarker(seed=seed).embed(sink, start=0.0)
    sim.run()
    return technique, sink.arrivals


def embed_pn(seed=2):
    code = PnCode.msequence(7)
    config = WatermarkConfig(chip_duration=0.5, base_rate=20.0, amplitude=0.3)
    sim = Simulator()
    sink = Sink(sim)
    FlowWatermarker(code, config, seed=seed).embed(sink, start=0.0)
    sim.run()
    return code, config, sink.arrivals


def plain_poisson(duration=64.0, seed=3):
    sim = Simulator()
    sink = Sink(sim)
    PoissonFlow(rate=20.0, seed=seed).schedule(sink, 0.0, duration)
    sim.run()
    return sink.arrivals


class TestSquareWaveConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SquareWaveConfig(period=0)
        with pytest.raises(ValueError):
            SquareWaveConfig(n_periods=0)
        with pytest.raises(ValueError):
            SquareWaveConfig(amplitude=1.0)
        with pytest.raises(ValueError):
            SquareWaveConfig(base_rate=0)

    def test_duration(self):
        assert SquareWaveConfig(period=4.0, n_periods=8).duration == 32.0


class TestSquareWaveDetection:
    def test_owner_detects_watermark(self):
        technique, arrivals = embed_square()
        result = technique.detector().detect(arrivals, start=0.0)
        assert result.detected
        assert result.statistic > result.threshold

    def test_no_false_positive_on_plain_traffic(self):
        technique = SquareWaveTechnique()
        result = technique.detector().detect(plain_poisson(), start=0.0)
        assert not result.detected

    def test_empty_arrivals(self):
        technique = SquareWaveTechnique()
        result = technique.detector().detect([], start=0.0)
        assert not result.detected
        assert result.statistic == 0.0

    def test_legal_profile_matches_dsss(self):
        assert (
            SquareWaveTechnique().required_process()
            is ProcessKind.COURT_ORDER
        )


class TestAdversaryVisibility:
    """The reason the paper's cited attack uses a *long PN code*."""

    def test_square_wave_is_visible(self):
        technique, arrivals = embed_square()
        adversary = AutocorrelationVisibilityTest(window=0.5, max_lag=64)
        result = adversary.test(
            arrivals, start=0.0, duration=technique.config.duration
        )
        assert result.watermark_suspected
        assert result.statistic > result.threshold

    def test_pn_watermark_stays_hidden(self):
        code, config, arrivals = embed_pn()
        adversary = AutocorrelationVisibilityTest(window=0.5, max_lag=64)
        result = adversary.test(
            arrivals, start=0.0, duration=len(code) * config.chip_duration
        )
        assert not result.watermark_suspected

    def test_plain_traffic_not_flagged(self):
        adversary = AutocorrelationVisibilityTest(window=0.5, max_lag=64)
        result = adversary.test(plain_poisson(), start=0.0, duration=64.0)
        assert not result.watermark_suspected

    def test_degenerate_inputs(self):
        adversary = AutocorrelationVisibilityTest(window=0.5)
        result = adversary.test([], start=0.0, duration=10.0)
        assert not result.watermark_suspected
        assert result.statistic == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AutocorrelationVisibilityTest(window=0)
        with pytest.raises(ValueError):
            AutocorrelationVisibilityTest(max_lag=0)

    def test_rate_series_shape(self):
        adversary = AutocorrelationVisibilityTest(window=1.0)
        series = adversary.rate_series([0.5, 1.5, 1.7], 0.0, 3.0)
        assert list(series) == [1.0, 2.0, 0.0]
