"""Doctrinal-stability regression snapshot.

The engine's rulings over a fixed 500-action corpus are pinned by hash.
If a refactor changes ANY label, this test fails and forces a conscious
decision: either the change was an intended doctrinal correction (update
the digest and say why in the commit) or it is a regression.
"""

import hashlib

from repro.workloads import labeled_corpus

#: SHA-256 over the required-process labels of ``labeled_corpus(500,
#: seed=20120707)``.  History:
#: - initial pin after the third-party-doctrine fix for transactional
#:   records and the 2701(c) provider self-access exemption.
SNAPSHOT_DIGEST = (
    "01884aa71e41dde11567153fff6823befff4197551f73d70228d3fd250feaeb5"
)


def test_label_snapshot_unchanged():
    corpus = labeled_corpus(500, seed=20120707)
    payload = ";".join(
        str(item.required_process.value) for item in corpus
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()
    assert digest == SNAPSHOT_DIGEST, (
        "engine labels changed on the pinned corpus — if this is an "
        "intended doctrinal change, update SNAPSHOT_DIGEST and document "
        "the reason"
    )
