"""The extended prose-scene catalogue: every scene individually verified."""

import pytest

from repro.core.extended_scenarios import (
    ExtendedScene,
    build_extended_catalogue,
)


@pytest.fixture(scope="module")
def catalogue():
    return {scene.scene_id: scene for scene in build_extended_catalogue()}


def test_catalogue_has_sixteen_scenes(catalogue):
    assert len(catalogue) == 16
    assert set(catalogue) == {f"E{i}" for i in range(1, 17)}


@pytest.mark.parametrize(
    "scene_id", [f"E{i}" for i in range(1, 17)]
)
def test_engine_matches_expected_process(engine, catalogue, scene_id):
    scene = catalogue[scene_id]
    ruling = engine.evaluate(scene.action)
    assert ruling.required_process is scene.expected_process, (
        f"{scene.scene_id} ({scene.basis}): expected "
        f"{scene.expected_process.display_name}, engine says "
        f"{ruling.required_process.display_name}"
    )


def test_needs_process_property(catalogue):
    assert catalogue["E3"].needs_process
    assert not catalogue["E2"].needs_process


def test_every_scene_has_a_basis(catalogue):
    for scene in catalogue.values():
        assert scene.basis
        assert scene.action.description


def test_kyllo_and_katz_scenes_cite_their_cases(engine, catalogue):
    kyllo_ruling = engine.evaluate(catalogue["E3"].action)
    cited = {key for step in kyllo_ruling.steps for key in step.authorities}
    assert "kyllo" in cited

    katz_ruling = engine.evaluate(catalogue["E1"].action)
    cited = {key for step in katz_ruling.steps for key in step.authorities}
    assert "katz" in cited
