"""Unit tests for the research advisor (paper section IV)."""

import pytest

from repro.core import (
    Actor,
    DataKind,
    EnvironmentContext,
    Feasibility,
    InvestigativeAction,
    Place,
    ProcessKind,
    ResearchAdvisor,
    Timing,
)


@pytest.fixture()
def advisor():
    return ResearchAdvisor()


def public_observation():
    return InvestigativeAction(
        description="observe public protocol traffic",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.REAL_TIME,
        context=EnvironmentContext(place=Place.PUBLIC, knowingly_exposed=True),
    )


def isp_header_tap():
    return InvestigativeAction(
        description="pen register at the suspect's ISP",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.NON_CONTENT,
        timing=Timing.REAL_TIME,
        context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
    )


def full_isp_intercept():
    return InvestigativeAction(
        description="full intercept at the suspect's ISP",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.REAL_TIME,
        context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
    )


class TestClassification:
    def test_public_only_technique_is_process_free(self, advisor):
        assessment = advisor.assess("iv.a-like", [public_observation()])
        assert assessment.feasibility is Feasibility.WORKABLE_WITHOUT_PROCESS
        assert assessment.required_process is ProcessKind.NONE

    def test_header_tap_needs_court_order(self, advisor):
        assessment = advisor.assess("iv.b-like", [isp_header_tap()])
        assert assessment.feasibility is Feasibility.WORKABLE_WITH_PROCESS
        assert assessment.required_process is ProcessKind.COURT_ORDER

    def test_full_intercept_is_wiretap_class(self, advisor):
        assessment = advisor.assess("heavy", [full_isp_intercept()])
        assert (
            assessment.feasibility
            is Feasibility.WORKABLE_WITH_WIRETAP_ORDER
        )

    def test_mixed_actions_take_the_max(self, advisor):
        assessment = advisor.assess(
            "mixed", [public_observation(), isp_header_tap()]
        )
        assert assessment.required_process is ProcessKind.COURT_ORDER

    def test_empty_technique_rejected(self, advisor):
        with pytest.raises(ValueError):
            advisor.assess("empty", [])


class TestPrivateSearchReframing:
    def test_header_tap_is_private_search_viable(self, advisor):
        # Section IV.B situation two: campus admins on their own gateways.
        assessment = advisor.assess("iv.b-like", [isp_header_tap()])
        assert assessment.private_search_viable

    def test_recommendation_mentions_private_search_when_viable(self, advisor):
        assessment = advisor.assess("iv.b-like", [isp_header_tap()])
        assert "private search" in assessment.recommendation

    def test_wiretap_class_recommends_redesign(self, advisor):
        assessment = advisor.assess("heavy", [full_isp_intercept()])
        assert "non-content" in assessment.recommendation


class TestRulings:
    def test_per_action_rulings_returned_in_order(self, advisor):
        actions = [public_observation(), isp_header_tap()]
        assessment = advisor.assess("mixed", actions)
        assert len(assessment.rulings) == 2
        assert assessment.rulings[0].required_process is ProcessKind.NONE
        assert (
            assessment.rulings[1].required_process is ProcessKind.COURT_ORDER
        )
