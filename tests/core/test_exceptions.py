"""Unit tests for the cross-cutting exception module."""

import pytest

from repro.core import (
    Actor,
    ConsentFacts,
    ConsentScope,
    DataKind,
    DoctrineFacts,
    EnvironmentContext,
    ExceptionKind,
    InvestigativeAction,
    LegalSource,
    Place,
    Timing,
)
from repro.core.exceptions import consent_reaches, gather_exceptions


def make_action(consent=None, doctrine=None, **context_kwargs):
    context_kwargs.setdefault("place", Place.SUSPECT_PREMISES)
    return InvestigativeAction(
        description="probe",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(**context_kwargs),
        consent=consent or ConsentFacts(),
        doctrine=doctrine or DoctrineFacts(),
    )


def kinds_of(exceptions):
    return {exception.kind for exception in exceptions}


class TestConsentException:
    def test_effective_consent_defeats_everything(self):
        exceptions = gather_exceptions(
            make_action(consent=ConsentFacts(scope=ConsentScope.SPOUSE))
        )
        consent = next(
            e for e in exceptions if e.kind is ExceptionKind.CONSENT
        )
        assert consent.eliminates == {
            LegalSource.FOURTH_AMENDMENT,
            LegalSource.WIRETAP_ACT,
            LegalSource.SCA,
            LegalSource.PEN_TRAP,
        }

    def test_revoked_consent_gives_no_exception(self):
        exceptions = gather_exceptions(
            make_action(
                consent=ConsentFacts(scope=ConsentScope.SPOUSE, revoked=True)
            )
        )
        assert ExceptionKind.CONSENT not in kinds_of(exceptions)


class TestDoctrineExceptions:
    @pytest.mark.parametrize(
        "flag,kind",
        [
            ("exigent_circumstances", ExceptionKind.EXIGENT_CIRCUMSTANCES),
            ("plain_view", ExceptionKind.PLAIN_VIEW),
            ("target_on_probation", ExceptionKind.PROBATION_PAROLE),
        ],
    )
    def test_fourth_amendment_only_exceptions(self, flag, kind):
        exceptions = gather_exceptions(
            make_action(doctrine=DoctrineFacts(**{flag: True}))
        )
        found = next(e for e in exceptions if e.kind is kind)
        assert found.eliminates == {LegalSource.FOURTH_AMENDMENT}

    def test_trespasser_exception_spans_realtime_statutes(self):
        exceptions = gather_exceptions(
            make_action(
                doctrine=DoctrineFacts(victim_invited_monitoring=True)
            )
        )
        found = next(
            e
            for e in exceptions
            if e.kind is ExceptionKind.COMPUTER_TRESPASSER
        )
        assert LegalSource.WIRETAP_ACT in found.eliminates
        assert LegalSource.PEN_TRAP in found.eliminates
        assert LegalSource.SCA not in found.eliminates

    def test_no_flags_no_exceptions(self):
        assert gather_exceptions(make_action()) == []

    def test_credentials_exception_cites_paper(self):
        exceptions = gather_exceptions(
            make_action(
                doctrine=DoctrineFacts(credentials_lawfully_obtained=True)
            )
        )
        assert len(exceptions) == 1
        assert "paper_judgment" in exceptions[0].step.authorities


class TestConsentReach:
    def test_no_consent_reaches_nothing(self):
        assert not consent_reaches(ConsentScope.NONE, private_space=False)

    def test_co_user_reaches_shared_space_only(self):
        assert consent_reaches(
            ConsentScope.CO_USER_SHARED_SPACE, private_space=False
        )
        assert not consent_reaches(
            ConsentScope.CO_USER_SHARED_SPACE, private_space=True
        )

    @pytest.mark.parametrize(
        "scope",
        [
            ConsentScope.SPOUSE,
            ConsentScope.EMPLOYER,
            ConsentScope.NETWORK_OWNER,
            ConsentScope.PARENT_OF_MINOR,
        ],
    )
    def test_broad_authority_scopes(self, scope):
        assert consent_reaches(scope, private_space=True)
