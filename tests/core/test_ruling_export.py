"""Tests for the structured (JSON) ruling export."""

import json

import pytest

from repro.core import ComplianceEngine, build_table1


@pytest.fixture(scope="module")
def rulings(engine):
    return [engine.evaluate(s.action) for s in build_table1()]


class TestToDict:
    def test_round_trips_through_json(self, rulings):
        for ruling in rulings:
            payload = json.dumps(ruling.to_dict())
            restored = json.loads(payload)
            assert restored["required_process"] == (
                ruling.required_process.name
            )

    def test_needs_process_consistency(self, rulings):
        for ruling in rulings:
            exported = ruling.to_dict()
            assert exported["needs_process"] == ruling.needs_process

    def test_reasoning_preserved(self, rulings):
        for ruling in rulings:
            exported = ruling.to_dict()
            assert len(exported["reasoning"]) == len(ruling.steps)
            for step, item in zip(ruling.steps, exported["reasoning"]):
                assert item["text"] == step.text
                assert item["authorities"] == list(step.authorities)

    def test_privacy_block(self, engine):
        ruling = engine.evaluate(build_table1()[0].action)
        exported = ruling.to_dict()
        assert set(exported["privacy"]) == {
            "subjective_expectation",
            "objectively_reasonable",
            "has_rep",
        }

    def test_exceptions_listed(self, engine):
        # Scene 15 has consent + trespasser exceptions.
        scene_15 = build_table1()[14]
        exported = engine.evaluate(scene_15.action).to_dict()
        kinds = {e["kind"] for e in exported["exceptions"]}
        assert "consent" in kinds


class TestCliJson:
    def test_scene_json_output(self, capsys):
        from repro.cli import main

        assert main(["scene", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scene"] == 8
        assert payload["ruling"]["required_process"] == "WIRETAP_ORDER"
        assert payload["paper_answer"] == "Need"
