"""Unit tests for EnvironmentContext, ConsentFacts, and InvestigativeAction."""

import pytest

from repro.core import (
    Actor,
    ConsentFacts,
    ConsentScope,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    Timing,
)


class TestEnvironmentContext:
    def test_public_place_is_exposure(self):
        ctx = EnvironmentContext(place=Place.PUBLIC)
        assert ctx.is_public_exposure()

    def test_knowing_exposure_counts(self):
        ctx = EnvironmentContext(
            place=Place.SUSPECT_PREMISES, knowingly_exposed=True
        )
        assert ctx.is_public_exposure()

    def test_shared_folder_counts(self):
        ctx = EnvironmentContext(
            place=Place.SUSPECT_PREMISES, shared_with_others=True
        )
        assert ctx.is_public_exposure()

    def test_abandonment_counts(self):
        ctx = EnvironmentContext(place=Place.SUSPECT_PREMISES, abandoned=True)
        assert ctx.is_public_exposure()

    def test_private_premises_is_not_exposure(self):
        ctx = EnvironmentContext(place=Place.SUSPECT_PREMISES)
        assert not ctx.is_public_exposure()

    def test_at_provider(self):
        assert EnvironmentContext(
            place=Place.THIRD_PARTY_PROVIDER
        ).at_provider()
        assert not EnvironmentContext(place=Place.PUBLIC).at_provider()

    def test_context_is_immutable(self):
        ctx = EnvironmentContext(place=Place.PUBLIC)
        with pytest.raises(AttributeError):
            ctx.encrypted = True


class TestConsentFacts:
    def test_default_is_no_consent(self):
        assert not ConsentFacts().effective()

    def test_effective_consent(self):
        consent = ConsentFacts(scope=ConsentScope.TARGET)
        assert consent.effective()

    def test_involuntary_consent_is_ineffective(self):
        consent = ConsentFacts(scope=ConsentScope.TARGET, voluntary=False)
        assert not consent.effective()

    def test_exceeding_authority_is_ineffective(self):
        consent = ConsentFacts(
            scope=ConsentScope.CO_USER_SHARED_SPACE, exceeds_authority=True
        )
        assert not consent.effective()

    def test_revoked_consent_is_ineffective(self):
        consent = ConsentFacts(scope=ConsentScope.SPOUSE, revoked=True)
        assert not consent.effective()

    def test_consent_not_covering_target_is_ineffective(self):
        # Table 1 scene 16: the victim's consent does not reach the
        # attacker's machine.
        consent = ConsentFacts(
            scope=ConsentScope.NETWORK_OWNER, covers_target_data=False
        )
        assert not consent.effective()


class TestInvestigativeAction:
    def _action(self, **kwargs):
        defaults = dict(
            description="test",
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.PUBLIC),
        )
        defaults.update(kwargs)
        return InvestigativeAction(**defaults)

    def test_government_actors(self):
        assert self._action(actor=Actor.GOVERNMENT).is_government_action()
        assert self._action(
            actor=Actor.GOVERNMENT_AGENT
        ).is_government_action()

    def test_private_actors_are_not_state_action(self):
        assert not self._action(actor=Actor.PRIVATE).is_government_action()
        assert not self._action(actor=Actor.PROVIDER).is_government_action()

    def test_acquires_content(self):
        assert self._action(data_kind=DataKind.CONTENT).acquires_content()
        assert not self._action(
            data_kind=DataKind.NON_CONTENT
        ).acquires_content()

    def test_real_time(self):
        assert self._action(timing=Timing.REAL_TIME).real_time()
        assert not self._action(timing=Timing.STORED).real_time()

    def test_action_is_immutable(self):
        action = self._action()
        with pytest.raises(AttributeError):
            action.actor = Actor.PRIVATE
