"""Unit tests for the compliance engine's combination machinery."""

import pytest

from repro.core import (
    Actor,
    ComplianceEngine,
    ConsentFacts,
    ConsentScope,
    DataKind,
    DoctrineFacts,
    EnvironmentContext,
    InvestigativeAction,
    LegalSource,
    Place,
    ProcessKind,
    Timing,
    evaluate,
)


def make_action(
    data_kind=DataKind.CONTENT,
    timing=Timing.REAL_TIME,
    actor=Actor.GOVERNMENT,
    consent=None,
    doctrine=None,
    **context_kwargs,
):
    context_kwargs.setdefault("place", Place.TRANSMISSION_PATH)
    return InvestigativeAction(
        description="probe",
        actor=actor,
        data_kind=data_kind,
        timing=timing,
        context=EnvironmentContext(**context_kwargs),
        consent=consent or ConsentFacts(),
        doctrine=doctrine or DoctrineFacts(),
    )


@pytest.fixture()
def local_engine():
    return ComplianceEngine()


class TestCombination:
    def test_required_is_max_of_requirements(self, local_engine):
        # Full-content ISP tap: Fourth (warrant) + Title III (wiretap
        # order); the wiretap order wins.
        ruling = local_engine.evaluate(make_action())
        assert ruling.required_process is ProcessKind.WIRETAP_ORDER
        sources = set(ruling.governing_sources)
        assert LegalSource.WIRETAP_ACT in sources

    def test_no_requirements_means_no_process(self, local_engine):
        ruling = local_engine.evaluate(
            make_action(place=Place.PUBLIC, knowingly_exposed=True)
        )
        assert ruling.required_process is ProcessKind.NONE
        assert not ruling.needs_process

    def test_exception_eliminates_requirement(self, local_engine):
        ruling = local_engine.evaluate(
            make_action(
                consent=ConsentFacts(scope=ConsentScope.NETWORK_OWNER),
                place=Place.CONSENTING_NETWORK,
            )
        )
        assert ruling.required_process is ProcessKind.NONE
        # The pre-exception requirement stays visible in the ruling so a
        # reader can see what the consent defeated.
        assert any(
            r.source is LegalSource.FOURTH_AMENDMENT
            for r in ruling.requirements
        )

    def test_statutory_exceptions_recorded_in_trace(self, local_engine):
        ruling = local_engine.evaluate(make_action(actor=Actor.PROVIDER))
        assert ruling.exceptions
        assert all(e.eliminates == frozenset() for e in ruling.exceptions)

    def test_permits(self, local_engine):
        ruling = local_engine.evaluate(make_action())
        assert not ruling.permits(ProcessKind.SEARCH_WARRANT)
        assert ruling.permits(ProcessKind.WIRETAP_ORDER)


class TestTrace:
    def test_steps_are_deduplicated(self, local_engine):
        ruling = local_engine.evaluate(make_action())
        keys = [(step.source, step.text) for step in ruling.steps]
        assert len(keys) == len(set(keys))

    def test_every_citation_resolves(self, local_engine):
        ruling = local_engine.evaluate(make_action())
        for step in ruling.steps:
            for key in step.authorities:
                assert key in local_engine.registry

    def test_explain_renders(self, local_engine):
        text = local_engine.evaluate(make_action()).explain()
        assert "Required process:" in text
        assert "Reasoning:" in text

    def test_explain_lists_exceptions_when_present(self, local_engine):
        text = local_engine.evaluate(
            make_action(actor=Actor.PROVIDER)
        ).explain()
        assert "Exceptions applied:" in text


class TestConvenienceApi:
    def test_module_level_evaluate(self):
        ruling = evaluate(make_action())
        assert ruling.required_process is ProcessKind.WIRETAP_ORDER

    def test_module_level_evaluate_reuses_engine(self):
        from repro.core import engine as engine_module

        first = engine_module._default_engine()
        second = engine_module._default_engine()
        assert first is second


class TestDeterminism:
    def test_same_action_same_ruling(self, local_engine):
        action = make_action()
        a = local_engine.evaluate(action)
        b = local_engine.evaluate(action)
        assert a.required_process is b.required_process
        assert a.steps == b.steps
        assert a.requirements == b.requirements

    def test_two_engines_agree(self):
        action = make_action()
        assert (
            ComplianceEngine().evaluate(action).required_process
            is ComplianceEngine().evaluate(action).required_process
        )
