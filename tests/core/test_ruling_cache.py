"""Unit tests for the LRU ruling cache and its counters."""

import pytest

from repro.core import ComplianceEngine, RulingCache, action_fingerprint
from repro.core.cache import DEFAULT_CACHE_SIZE
from repro.workloads import action_corpus


def _rulings(n):
    engine = ComplianceEngine()
    actions = action_corpus(n, seed=42)
    return [
        (action_fingerprint(action), engine.evaluate(action))
        for action in actions
    ]


class TestRulingCache:
    def test_miss_then_hit(self):
        cache = RulingCache(maxsize=4)
        (fingerprint, ruling), *_ = _rulings(1)
        assert cache.get(fingerprint) is None
        cache.put(fingerprint, ruling)
        assert cache.get(fingerprint) is ruling
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 0
        assert cache.stats.hit_rate == 0.5

    def test_eviction_is_lru(self):
        entries = _rulings(8)
        unique = list({fp: r for fp, r in entries}.items())[:3]
        assert len(unique) == 3, "need three distinct fingerprints"
        cache = RulingCache(maxsize=2)
        (fp_a, r_a), (fp_b, r_b), (fp_c, r_c) = unique
        cache.put(fp_a, r_a)
        cache.put(fp_b, r_b)
        cache.get(fp_a)  # refresh A; B becomes LRU
        cache.put(fp_c, r_c)  # evicts B
        assert fp_a in cache and fp_c in cache
        assert fp_b not in cache
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_put_existing_refreshes_without_evicting(self):
        entries = list({fp: r for fp, r in _rulings(8)}.items())[:2]
        (fp_a, r_a), (fp_b, r_b) = entries
        cache = RulingCache(maxsize=2)
        cache.put(fp_a, r_a)
        cache.put(fp_b, r_b)
        cache.put(fp_a, r_a)  # refresh, not insert
        assert cache.stats.evictions == 0
        assert len(cache) == 2

    def test_clear_keeps_counters(self):
        cache = RulingCache(maxsize=4)
        (fingerprint, ruling), *_ = _rulings(1)
        cache.put(fingerprint, ruling)
        cache.get(fingerprint)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        cache.stats.reset()
        assert cache.stats.lookups == 0
        assert cache.stats.hit_rate == 0.0

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            RulingCache(maxsize=0)


class TestEngineCacheWiring:
    def test_uncached_engine_reports_no_stats(self):
        engine = ComplianceEngine()
        assert engine.cache is None
        assert engine.cache_stats is None

    def test_int_constructs_private_cache(self):
        engine = ComplianceEngine(cache=16)
        assert engine.cache is not None
        assert engine.cache.maxsize == 16

    def test_default_size_cache(self):
        assert RulingCache().maxsize == DEFAULT_CACHE_SIZE

    def test_shared_cache_across_engines(self):
        shared = RulingCache()
        first = ComplianceEngine(cache=shared)
        second = ComplianceEngine(cache=shared)
        action = action_corpus(1, seed=3)[0]
        first.evaluate(action)
        assert second.evaluate(action) is first.evaluate(action)
        assert shared.stats.hits >= 2

    def test_evaluate_hits_cache_on_repeat(self):
        engine = ComplianceEngine(cache=RulingCache())
        action = action_corpus(1, seed=5)[0]
        first = engine.evaluate(action)
        second = engine.evaluate(action)
        assert first is second
        assert engine.cache_stats.hits == 1
        assert engine.cache_stats.misses == 1

    def test_bounded_cache_evicts_under_pressure(self):
        engine = ComplianceEngine(cache=RulingCache(maxsize=8))
        engine.evaluate_many(action_corpus(200, seed=11))
        assert len(engine.cache) <= 8
        assert engine.cache_stats.evictions > 0
