"""Unit tests for warrant scope (section III.A.2(a))."""

import pytest

from repro.core.scope import (
    ExaminedRecord,
    ScopeDecision,
    WarrantScope,
    classify_record,
    locations_requiring_new_warrants,
)


@pytest.fixture()
def scope():
    return WarrantScope(
        place="Mallory residence",
        crime="wire fraud",
        categories=frozenset({"financial-records", "email"}),
        locations=frozenset({"Mallory residence", "home office"}),
    )


class TestWarrantScope:
    def test_requires_place_and_categories(self):
        with pytest.raises(ValueError):
            WarrantScope(place="", crime="x", categories=frozenset({"a"}))
        with pytest.raises(ValueError):
            WarrantScope(place="home", crime="x", categories=frozenset())

    def test_place_defaults_into_locations(self):
        scope = WarrantScope(
            place="home", crime="x", categories=frozenset({"a"})
        )
        assert scope.covers_location("home")

    def test_category_and_location_cover(self, scope):
        assert scope.covers_category("email")
        assert not scope.covers_category("photos")
        assert scope.covers_location("home office")
        assert not scope.covers_location("offsite server")


class TestClassification:
    def test_in_scope(self, scope):
        record = ExaminedRecord(
            name="ledger.xlsx",
            category="financial-records",
            location="Mallory residence",
        )
        assert classify_record(scope, record) is ScopeDecision.IN_SCOPE

    def test_plain_view(self, scope):
        record = ExaminedRecord(
            name="cp-file.jpg",
            category="photos",
            location="Mallory residence",
            incriminating_apparent=True,
        )
        assert classify_record(scope, record) is ScopeDecision.PLAIN_VIEW

    def test_out_of_scope(self, scope):
        record = ExaminedRecord(
            name="diary.txt",
            category="personal-notes",
            location="Mallory residence",
        )
        assert classify_record(scope, record) is ScopeDecision.OUT_OF_SCOPE

    def test_wrong_location_trumps_category(self, scope):
        record = ExaminedRecord(
            name="ledger-backup.xlsx",
            category="financial-records",
            location="offsite server",
        )
        assert (
            classify_record(scope, record) is ScopeDecision.WRONG_LOCATION
        )


class TestMultiLocationRule:
    def test_foreign_locations_collected(self, scope):
        records = [
            ExaminedRecord("a", "email", "Mallory residence"),
            ExaminedRecord("b", "email", "cloud-provider-east"),
            ExaminedRecord("c", "email", "cloud-provider-west"),
            ExaminedRecord("d", "email", "home office"),
        ]
        needed = locations_requiring_new_warrants(scope, records)
        assert needed == frozenset(
            {"cloud-provider-east", "cloud-provider-west"}
        )

    def test_no_foreign_locations(self, scope):
        records = [ExaminedRecord("a", "email", "Mallory residence")]
        assert locations_requiring_new_warrants(scope, records) == frozenset()
