"""Unit tests for the Katz REP analyzer (paper section II.C)."""

import pytest

from repro.core import (
    Actor,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    Timing,
    analyze_privacy,
)


def make_action(
    data_kind=DataKind.CONTENT,
    timing=Timing.STORED,
    **context_kwargs,
):
    context_kwargs.setdefault("place", Place.SUSPECT_PREMISES)
    return InvestigativeAction(
        description="privacy probe",
        actor=Actor.GOVERNMENT,
        data_kind=data_kind,
        timing=timing,
        context=EnvironmentContext(**context_kwargs),
    )


class TestClosedContainerDefault:
    def test_private_computer_has_rep(self):
        finding = analyze_privacy(make_action())
        assert finding.has_rep
        assert finding.subjective_expectation
        assert finding.objectively_reasonable

    def test_finding_carries_reasoning(self):
        finding = analyze_privacy(make_action())
        assert finding.steps
        assert any("closed container" in step.text for step in finding.steps)


class TestExposureDefeatsPrivacy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"place": Place.PUBLIC},
            {"knowingly_exposed": True},
            {"shared_with_others": True},
            {"abandoned": True},
        ],
    )
    def test_exposure_forms(self, kwargs):
        finding = analyze_privacy(make_action(**kwargs))
        assert not finding.has_rep
        assert not finding.subjective_expectation

    def test_exposure_cites_gorshkov_line(self):
        finding = analyze_privacy(make_action(knowingly_exposed=True))
        cited = {key for step in finding.steps for key in step.authorities}
        assert "gorshkov" in cited


class TestPolicyBanner:
    def test_policy_eliminates_rep(self):
        finding = analyze_privacy(make_action(policy_eliminates_rep=True))
        assert not finding.has_rep
        # Subjective prong may still hold; the objective one fails.
        assert finding.subjective_expectation
        assert not finding.objectively_reasonable


class TestDeliveryRule:
    def test_sender_privacy_terminates_upon_delivery(self):
        finding = analyze_privacy(make_action(delivered_to_recipient=True))
        assert not finding.has_rep
        cited = {key for step in finding.steps for key in step.authorities}
        assert "king_delivery" in cited


class TestThirdPartyDoctrine:
    @pytest.mark.parametrize(
        "place", [Place.THIRD_PARTY_PROVIDER, Place.TRANSMISSION_PATH]
    )
    @pytest.mark.parametrize(
        "data_kind", [DataKind.NON_CONTENT, DataKind.SUBSCRIBER_INFO]
    )
    def test_addressing_data_at_third_parties_has_no_rep(
        self, place, data_kind
    ):
        finding = analyze_privacy(
            make_action(data_kind=data_kind, place=place)
        )
        assert not finding.has_rep
        cited = {key for step in finding.steps for key in step.authorities}
        assert "smith_v_maryland" in cited

    def test_content_at_provider_keeps_rep(self):
        finding = analyze_privacy(
            make_action(
                data_kind=DataKind.CONTENT, place=Place.THIRD_PARTY_PROVIDER
            )
        )
        assert finding.has_rep


class TestWirelessBroadcast:
    """Table 1 rows 3-6: the authors' (*) judgments."""

    def test_broadcast_headers_have_no_rep(self):
        finding = analyze_privacy(
            make_action(
                data_kind=DataKind.NON_CONTENT,
                place=Place.WIRELESS_BROADCAST,
            )
        )
        assert not finding.has_rep

    def test_broadcast_headers_no_rep_even_encrypted(self):
        finding = analyze_privacy(
            make_action(
                data_kind=DataKind.NON_CONTENT,
                place=Place.WIRELESS_BROADCAST,
                encrypted=True,
            )
        )
        assert not finding.has_rep

    def test_broadcast_content_keeps_rep(self):
        finding = analyze_privacy(
            make_action(
                data_kind=DataKind.CONTENT, place=Place.WIRELESS_BROADCAST
            )
        )
        assert finding.has_rep

    def test_broadcast_rulings_cite_the_papers_own_judgment(self):
        finding = analyze_privacy(
            make_action(
                data_kind=DataKind.NON_CONTENT,
                place=Place.WIRELESS_BROADCAST,
            )
        )
        cited = {key for step in finding.steps for key in step.authorities}
        assert "paper_judgment" in cited


class TestKylloFactors:
    def test_home_interior_with_exotic_tech_keeps_rep(self):
        finding = analyze_privacy(
            make_action(
                home_interior=True, technology_in_general_public_use=False
            )
        )
        assert finding.has_rep
        cited = {key for step in finding.steps for key in step.authorities}
        assert "kyllo" in cited


class TestEncryptionAndSubjectivePrivacy:
    def test_encryption_manifests_subjective_expectation(self):
        finding = analyze_privacy(make_action(encrypted=True))
        assert finding.subjective_expectation
        cited = {key for step in finding.steps for key in step.authorities}
        assert "katz" in cited

    def test_rep_requires_both_prongs(self):
        # Exposed + encrypted: subjective fails (exposure dominates).
        finding = analyze_privacy(
            make_action(encrypted=True, knowingly_exposed=True)
        )
        assert not finding.has_rep
