"""Unit tests for the advisor's non-content redesign suggestions."""

import pytest

from repro.core import (
    Actor,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ProcessKind,
    ResearchAdvisor,
    Timing,
)


@pytest.fixture()
def advisor():
    return ResearchAdvisor()


def content_tap():
    return InvestigativeAction(
        description="full intercept at the suspect's ISP",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.REAL_TIME,
        context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
    )


def header_tap():
    return InvestigativeAction(
        description="pen register at the suspect's ISP",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.NON_CONTENT,
        timing=Timing.REAL_TIME,
        context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
    )


def stored_content_seizure():
    return InvestigativeAction(
        description="search seized computer",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
    )


class TestRedesign:
    def test_content_intercept_downgrades_to_pen_trap(self, advisor):
        """The paper's watermark lesson: drop contents, keep rates."""
        suggestion = advisor.suggest_redesign(
            "naive flow tracer", [content_tap()]
        )
        assert suggestion is not None
        assert (
            suggestion.original.required_process
            is ProcessKind.WIRETAP_ORDER
        )
        assert (
            suggestion.redesigned.required_process
            is ProcessKind.COURT_ORDER
        )
        assert suggestion.process_saved == 2
        assert "Pen/Trap" in suggestion.note

    def test_redesigned_actions_are_non_content(self, advisor):
        suggestion = advisor.suggest_redesign("tracer", [content_tap()])
        assert all(
            action.data_kind is DataKind.NON_CONTENT
            for action in suggestion.redesigned_actions
        )
        assert "rates/addressing" in (
            suggestion.redesigned_actions[0].description
        )

    def test_already_non_content_has_no_redesign(self, advisor):
        assert (
            advisor.suggest_redesign("pen tracer", [header_tap()]) is None
        )

    def test_stored_content_is_not_downgradable(self, advisor):
        # A premises search needs the content; the redesign only applies
        # to real-time interception.
        assert (
            advisor.suggest_redesign(
                "drive search", [stored_content_seizure()]
            )
            is None
        )

    def test_mixed_technique_downgrades_only_the_intercepts(self, advisor):
        suggestion = advisor.suggest_redesign(
            "mixed", [content_tap(), header_tap()]
        )
        assert suggestion is not None
        kinds = [a.data_kind for a in suggestion.redesigned_actions]
        assert kinds == [DataKind.NON_CONTENT, DataKind.NON_CONTENT]


class TestQuickReference:
    def test_renders_all_scenes(self):
        from repro.core import build_table1
        from repro.investigation import format_quick_reference

        text = format_quick_reference(build_table1())
        assert text.count("Scene ") == 20
        assert "authorities:" in text
        assert "katz" in text
