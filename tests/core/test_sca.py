"""Unit tests for the Stored Communications Act rule module."""

import pytest

from repro.core import (
    Actor,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ProcessKind,
    ProviderRole,
    Timing,
)
from repro.core.statutes import sca


def make_action(
    data_kind=DataKind.CONTENT,
    timing=Timing.STORED,
    place=Place.THIRD_PARTY_PROVIDER,
    **context_kwargs,
):
    return InvestigativeAction(
        description="probe",
        actor=Actor.GOVERNMENT,
        data_kind=data_kind,
        timing=timing,
        context=EnvironmentContext(place=place, **context_kwargs),
    )


class TestProviderClassification:
    """Section III.A.3: the Alice/Bob taxonomy."""

    def test_unretrieved_message_makes_ecs(self):
        assert (
            sca.classify_provider(serves_public=True, message_retrieved=False)
            is ProviderRole.ECS
        )
        assert (
            sca.classify_provider(
                serves_public=False, message_retrieved=False
            )
            is ProviderRole.ECS
        )

    def test_retrieved_message_at_public_provider_makes_rcs(self):
        assert (
            sca.classify_provider(serves_public=True, message_retrieved=True)
            is ProviderRole.RCS
        )

    def test_retrieved_message_at_nonpublic_provider_drops_out(self):
        assert (
            sca.classify_provider(
                serves_public=False, message_retrieved=True
            )
            is ProviderRole.NEITHER
        )


class TestApplicability:
    def test_stored_at_provider_is_covered(self):
        assert sca.applies(make_action())

    def test_real_time_is_not_sca(self):
        assert not sca.applies(make_action(timing=Timing.REAL_TIME))

    def test_data_elsewhere_is_not_sca(self):
        assert not sca.applies(make_action(place=Place.SUSPECT_PREMISES))


class TestCompelledDisclosureTiers:
    """The 2703 ladder."""

    @pytest.mark.parametrize(
        "data_kind,expected",
        [
            (DataKind.SUBSCRIBER_INFO, ProcessKind.SUBPOENA),
            (DataKind.TRANSACTIONAL_RECORD, ProcessKind.COURT_ORDER),
            (DataKind.NON_CONTENT, ProcessKind.COURT_ORDER),
            (DataKind.CONTENT, ProcessKind.SEARCH_WARRANT),
        ],
    )
    def test_tier_table(self, data_kind, expected):
        requirement = sca.evaluate(make_action(data_kind=data_kind))
        assert requirement is not None
        assert requirement.process is expected

    def test_dropped_out_message_has_no_sca_requirement(self):
        action = make_action(
            provider_serves_public=False, delivered_to_recipient=True
        )
        assert sca.provider_role_for(action) is ProviderRole.NEITHER
        assert sca.evaluate(action) is None

    def test_explicit_role_overrides_derivation(self):
        action = make_action(provider_role=ProviderRole.NEITHER)
        assert sca.evaluate(action) is None


class TestVoluntaryDisclosure:
    """The 2702 rules."""

    def test_nonpublic_providers_may_disclose_freely(self):
        assert sca.may_voluntarily_disclose(
            serves_public=False,
            data_kind=DataKind.CONTENT,
            to_government=True,
        )

    def test_public_provider_may_not_volunteer_to_government(self):
        assert not sca.may_voluntarily_disclose(
            serves_public=True,
            data_kind=DataKind.CONTENT,
            to_government=True,
        )
        assert not sca.may_voluntarily_disclose(
            serves_public=True,
            data_kind=DataKind.SUBSCRIBER_INFO,
            to_government=True,
        )

    def test_public_provider_may_give_non_content_to_private_parties(self):
        assert sca.may_voluntarily_disclose(
            serves_public=True,
            data_kind=DataKind.TRANSACTIONAL_RECORD,
            to_government=False,
        )

    def test_public_provider_may_not_give_content_to_anyone(self):
        assert not sca.may_voluntarily_disclose(
            serves_public=True,
            data_kind=DataKind.CONTENT,
            to_government=False,
        )

    @pytest.mark.parametrize(
        "exception",
        ["emergency", "user_consented", "protects_provider"],
    )
    def test_enumerated_exceptions_permit_disclosure(self, exception):
        assert sca.may_voluntarily_disclose(
            serves_public=True,
            data_kind=DataKind.CONTENT,
            to_government=True,
            **{exception: True},
        )
