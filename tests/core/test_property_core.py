"""Property-based tests (hypothesis) for the core legal engine.

Invariants the doctrine itself implies:

* the engine is a pure function of the action;
* public exposure always defeats REP, whatever else is true;
* granting stronger process never makes a permitted action forbidden;
* adding an effective consent never *raises* the required process;
* rulings only ever cite authorities that exist.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Actor,
    ComplianceEngine,
    ConsentFacts,
    ConsentScope,
    DataKind,
    DoctrineFacts,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ProcessKind,
    Timing,
    analyze_privacy,
)

_ENGINE = ComplianceEngine()

contexts = st.builds(
    EnvironmentContext,
    place=st.sampled_from(list(Place)),
    encrypted=st.booleans(),
    knowingly_exposed=st.booleans(),
    shared_with_others=st.booleans(),
    delivered_to_recipient=st.booleans(),
    provider_serves_public=st.none() | st.booleans(),
    policy_eliminates_rep=st.booleans(),
    home_interior=st.booleans(),
    technology_in_general_public_use=st.booleans(),
    abandoned=st.booleans(),
)

consents = st.builds(
    ConsentFacts,
    scope=st.sampled_from(list(ConsentScope)),
    voluntary=st.booleans(),
    exceeds_authority=st.booleans(),
    revoked=st.booleans(),
    covers_target_data=st.booleans(),
)

doctrines = st.builds(
    DoctrineFacts,
    exigent_circumstances=st.booleans(),
    plain_view=st.booleans(),
    target_on_probation=st.booleans(),
    emergency_pen_trap=st.booleans(),
    hash_search_of_lawful_media=st.booleans(),
    mining_of_lawful_data=st.booleans(),
    credentials_lawfully_obtained=st.booleans(),
    monitoring_own_network=st.booleans(),
    victim_invited_monitoring=st.booleans(),
)

actions = st.builds(
    InvestigativeAction,
    description=st.just("generated action"),
    actor=st.sampled_from(list(Actor)),
    data_kind=st.sampled_from(list(DataKind)),
    timing=st.sampled_from(list(Timing)),
    context=contexts,
    consent=consents,
    doctrine=doctrines,
)


@given(actions)
@settings(max_examples=300)
def test_engine_is_deterministic(action):
    first = _ENGINE.evaluate(action)
    second = _ENGINE.evaluate(action)
    assert first.required_process is second.required_process
    assert first.steps == second.steps


@given(actions)
@settings(max_examples=300)
def test_public_exposure_defeats_rep(action):
    if action.context.is_public_exposure():
        assert not analyze_privacy(action).has_rep


@given(actions)
@settings(max_examples=300)
def test_permits_is_monotone(action):
    ruling = _ENGINE.evaluate(action)
    ladder = sorted(ProcessKind)
    permitted = [ruling.permits(kind) for kind in ladder]
    # Once permitted on the ladder, always permitted above.
    for weaker, stronger in zip(permitted, permitted[1:]):
        assert stronger or not weaker
    assert permitted[-1], "a wiretap order satisfies any requirement"


@given(actions)
@settings(max_examples=200)
def test_effective_consent_never_raises_requirement(action):
    import dataclasses

    consented = dataclasses.replace(
        action,
        consent=ConsentFacts(scope=ConsentScope.TARGET),
    )
    base = _ENGINE.evaluate(action).required_process
    with_consent = _ENGINE.evaluate(consented).required_process
    assert with_consent <= base


@given(actions)
@settings(max_examples=200)
def test_all_citations_resolve(action):
    ruling = _ENGINE.evaluate(action)
    for step in ruling.steps:
        for key in step.authorities:
            assert key in _ENGINE.registry


@given(actions)
@settings(max_examples=200)
def test_private_actor_never_faces_fourth_amendment(action):
    import dataclasses

    from repro.core import LegalSource

    private = dataclasses.replace(action, actor=Actor.PRIVATE)
    ruling = _ENGINE.evaluate(private)
    assert LegalSource.FOURTH_AMENDMENT not in ruling.governing_sources


@given(actions)
@settings(max_examples=200)
def test_stored_acquisition_never_triggers_wiretap_act(action):
    import dataclasses

    from repro.core import LegalSource

    stored = dataclasses.replace(action, timing=Timing.STORED)
    ruling = _ENGINE.evaluate(stored)
    assert LegalSource.WIRETAP_ACT not in ruling.governing_sources
    assert LegalSource.PEN_TRAP not in ruling.governing_sources
