"""Unit tests for the Pen/Trap statute rule module."""

import pytest

from repro.core import (
    Actor,
    ConsentFacts,
    ConsentScope,
    DataKind,
    DoctrineFacts,
    EnvironmentContext,
    ExceptionKind,
    InvestigativeAction,
    Place,
    ProcessKind,
    Timing,
)
from repro.core.statutes import pentrap


def make_action(
    data_kind=DataKind.NON_CONTENT,
    timing=Timing.REAL_TIME,
    actor=Actor.GOVERNMENT,
    consent=None,
    doctrine=None,
    **context_kwargs,
):
    context_kwargs.setdefault("place", Place.TRANSMISSION_PATH)
    return InvestigativeAction(
        description="probe",
        actor=actor,
        data_kind=data_kind,
        timing=timing,
        context=EnvironmentContext(**context_kwargs),
        consent=consent or ConsentFacts(),
        doctrine=doctrine or DoctrineFacts(),
    )


class TestApplicability:
    def test_real_time_non_content_is_covered(self):
        assert pentrap.applies(make_action())

    def test_content_is_title_iii_territory(self):
        assert not pentrap.applies(make_action(data_kind=DataKind.CONTENT))

    def test_stored_records_are_sca_territory(self):
        assert not pentrap.applies(make_action(timing=Timing.STORED))


class TestRequirement:
    def test_pen_register_needs_court_order(self):
        requirement = pentrap.evaluate(make_action())
        assert requirement is not None
        assert requirement.process is ProcessKind.COURT_ORDER

    def test_requirement_cites_forrester(self):
        requirement = pentrap.evaluate(make_action())
        cited = {
            key for step in requirement.steps for key in step.authorities
        }
        assert "forrester" in cited


class TestStatutoryExceptions:
    def test_provider_exception(self):
        found = pentrap.statutory_exception(
            make_action(actor=Actor.PROVIDER)
        )
        assert found is not None
        assert found[0] is ExceptionKind.PROVIDER_SELF_PROTECTION

    def test_emergency_pen_trap(self):
        found = pentrap.statutory_exception(
            make_action(doctrine=DoctrineFacts(emergency_pen_trap=True))
        )
        assert found is not None
        assert found[0] is ExceptionKind.EMERGENCY_PEN_TRAP
        assert "3125" in found[1].text

    def test_victim_consent(self):
        found = pentrap.statutory_exception(
            make_action(
                doctrine=DoctrineFacts(victim_invited_monitoring=True)
            )
        )
        assert found is not None
        assert found[0] is ExceptionKind.COMPUTER_TRESPASSER

    @pytest.mark.parametrize(
        "scope",
        [
            ConsentScope.NETWORK_OWNER,
            ConsentScope.TARGET,
            ConsentScope.ONE_PARTY_TO_COMMUNICATION,
        ],
    )
    def test_user_consent(self, scope):
        found = pentrap.statutory_exception(
            make_action(consent=ConsentFacts(scope=scope))
        )
        assert found is not None
        assert found[0] is ExceptionKind.PARTY_CONSENT

    def test_wireless_broadcast_headers_exempt(self):
        # Table 1 rows 3 and 5: the authors' (*) judgment.
        found = pentrap.statutory_exception(
            make_action(place=Place.WIRELESS_BROADCAST)
        )
        assert found is not None
        assert found[0] is ExceptionKind.NO_REP
        assert "paper_judgment" in found[1].authorities

    def test_public_broadcast_addressing_exempt(self):
        found = pentrap.statutory_exception(
            make_action(place=Place.PUBLIC, knowingly_exposed=True)
        )
        assert found is not None
        assert found[0] is ExceptionKind.ACCESSIBLE_TO_PUBLIC

    def test_plain_isp_tap_has_no_exception(self):
        assert pentrap.statutory_exception(make_action()) is None

    def test_exception_suppresses_requirement(self):
        assert (
            pentrap.evaluate(make_action(actor=Actor.PROVIDER)) is None
        )
