"""Unit tests for the action-building interview."""

import pytest

from repro.core import (
    Actor,
    ComplianceEngine,
    ConsentScope,
    DataKind,
    Place,
    ProcessKind,
    Timing,
)
from repro.core.interview import ActionInterview, run_interview

FULL_ANSWERS = {
    "actor": Actor.GOVERNMENT,
    "data_kind": DataKind.CONTENT,
    "timing": Timing.REAL_TIME,
    "place": Place.TRANSMISSION_PATH,
    "encrypted": False,
    "knowingly_exposed": False,
    "policy_eliminates_rep": False,
    "provider_serves_public": True,
    "delivered_to_recipient": False,
    "consent_scope": ConsentScope.NONE,
    "consent_covers_target": True,
    "monitoring_own_network": False,
    "victim_invited_monitoring": False,
    "exigent_circumstances": False,
}


class TestWizardFlow:
    def test_sequential_answering(self):
        interview = ActionInterview()
        asked = []
        while not interview.finished:
            question = interview.current_question()
            asked.append(question.field)
            interview.answer(FULL_ANSWERS[question.field])
        action = interview.build("wizard action")
        assert action.actor is Actor.GOVERNMENT
        assert asked[0] == "actor"
        # Provider questions skipped: place is not a provider.
        assert "provider_serves_public" not in asked

    def test_stored_acquisition_skips_network_questions(self):
        answers = dict(FULL_ANSWERS)
        answers["timing"] = Timing.STORED
        interview = ActionInterview()
        asked = []
        while not interview.finished:
            question = interview.current_question()
            asked.append(question.field)
            interview.answer(answers[question.field])
        assert "encrypted" not in asked
        assert "monitoring_own_network" not in asked

    def test_provider_questions_asked_at_provider(self):
        answers = dict(FULL_ANSWERS)
        answers["place"] = Place.THIRD_PARTY_PROVIDER
        answers["timing"] = Timing.STORED
        interview = ActionInterview()
        asked = []
        while not interview.finished:
            question = interview.current_question()
            asked.append(question.field)
            interview.answer(answers[question.field])
        assert "provider_serves_public" in asked
        assert "delivered_to_recipient" in asked

    def test_consent_followup_only_with_consent(self):
        answers = dict(FULL_ANSWERS)
        answers["consent_scope"] = ConsentScope.NETWORK_OWNER
        interview = ActionInterview()
        asked = []
        while not interview.finished:
            question = interview.current_question()
            asked.append(question.field)
            interview.answer(answers[question.field])
        assert "consent_covers_target" in asked

    def test_invalid_answer_rejected(self):
        interview = ActionInterview()
        with pytest.raises(ValueError):
            interview.answer("not an actor")

    def test_build_before_finish_rejected(self):
        interview = ActionInterview()
        with pytest.raises(RuntimeError, match="incomplete"):
            interview.build("too early")

    def test_question_after_finish_rejected(self):
        action = run_interview(FULL_ANSWERS, "done")
        assert action is not None
        interview = ActionInterview()
        while not interview.finished:
            interview.answer(
                FULL_ANSWERS[interview.current_question().field]
            )
        with pytest.raises(RuntimeError, match="finished"):
            interview.current_question()


class TestRunInterview:
    def test_one_shot(self):
        action = run_interview(FULL_ANSWERS, "full ISP intercept")
        assert action.data_kind is DataKind.CONTENT
        assert action.context.place is Place.TRANSMISSION_PATH

    def test_missing_answer_raises(self):
        answers = dict(FULL_ANSWERS)
        del answers["place"]
        with pytest.raises(KeyError, match="place"):
            run_interview(answers, "incomplete")

    def test_extra_keys_ignored(self):
        answers = dict(FULL_ANSWERS)
        answers["irrelevant"] = 42
        assert run_interview(answers, "extra") is not None


class TestEngineIntegration:
    def test_interview_output_matches_direct_construction(self):
        engine = ComplianceEngine()
        action = run_interview(FULL_ANSWERS, "ISP full intercept")
        ruling = engine.evaluate(action)
        assert ruling.required_process is ProcessKind.WIRETAP_ORDER

    def test_interview_reproduces_scene_15(self):
        answers = dict(FULL_ANSWERS)
        answers.update(
            {
                "place": Place.CONSENTING_NETWORK,
                "consent_scope": ConsentScope.NETWORK_OWNER,
                "consent_covers_target": True,
                "victim_invited_monitoring": True,
            }
        )
        action = run_interview(answers, "victim-invited monitoring")
        ruling = ComplianceEngine().evaluate(action)
        assert ruling.required_process is ProcessKind.NONE
