"""Property-based engine invariants over the seeded workload generator.

Complements ``test_property_core`` (which builds actions directly with
hypothesis strategies) by driving :func:`repro.workloads.random_action`
with hypothesis-chosen seeds — the exact generator the benchmarks, the
golden corpus, and ``repro bench`` use, so anything those workloads can
produce is fair game here.

Invariants:

* determinism — re-evaluating the same action yields an identical ruling
  payload, cached or not;
* process-ladder monotonicity — granting an effective consent, exigent
  circumstances, or a 3125 emergency never *raises* the required rung;
* instrument monotonicity and ``permits()`` consistency — ``permits(p)``
  holds exactly when ``p`` satisfies ``required_process``, and stronger
  instruments never lose permission a weaker one had;
* memoization transparency — a cached engine's rulings, traces, and
  ``explain()`` output are indistinguishable from a fresh engine's.
"""

import dataclasses
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ComplianceEngine,
    ConsentFacts,
    ConsentScope,
    ProcessKind,
    RulingCache,
)
from repro.workloads import random_action

_FRESH = ComplianceEngine()
_CACHED = ComplianceEngine(cache=RulingCache())

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _action_from_seed(seed: int):
    return random_action(random.Random(seed), index=seed % 1000)


@given(seeds)
@settings(max_examples=200)
def test_reevaluation_is_deterministic(seed):
    action = _action_from_seed(seed)
    assert (
        _FRESH.evaluate(action).to_dict() == _FRESH.evaluate(action).to_dict()
    )


@given(seeds)
@settings(max_examples=200)
def test_effective_consent_never_raises_the_rung(seed):
    action = _action_from_seed(seed)
    consented = dataclasses.replace(
        action, consent=ConsentFacts(scope=ConsentScope.TARGET)
    )
    assert (
        _FRESH.evaluate(consented).required_process
        <= _FRESH.evaluate(action).required_process
    )


@given(seeds)
@settings(max_examples=200)
def test_exigency_never_raises_the_rung(seed):
    action = _action_from_seed(seed)
    exigent = dataclasses.replace(
        action,
        doctrine=dataclasses.replace(
            action.doctrine, exigent_circumstances=True
        ),
    )
    assert (
        _FRESH.evaluate(exigent).required_process
        <= _FRESH.evaluate(action).required_process
    )


@given(seeds)
@settings(max_examples=200)
def test_pen_trap_emergency_never_raises_the_rung(seed):
    action = _action_from_seed(seed)
    emergency = dataclasses.replace(
        action,
        doctrine=dataclasses.replace(
            action.doctrine, emergency_pen_trap=True
        ),
    )
    assert (
        _FRESH.evaluate(emergency).required_process
        <= _FRESH.evaluate(action).required_process
    )


@given(seeds)
@settings(max_examples=200)
def test_permits_is_consistent_with_required_process(seed):
    ruling = _FRESH.evaluate(_action_from_seed(seed))
    for held in ProcessKind:
        assert ruling.permits(held) == (held >= ruling.required_process)
    assert ruling.permits(ruling.required_process)


@given(seeds)
@settings(max_examples=200)
def test_held_instruments_are_monotone(seed):
    ruling = _FRESH.evaluate(_action_from_seed(seed))
    ladder = sorted(ProcessKind)
    for weaker, stronger in zip(ladder, ladder[1:]):
        if ruling.permits(weaker):
            assert ruling.permits(stronger)


@given(seeds)
@settings(max_examples=200)
def test_cache_is_invisible_in_ruling_and_explanation(seed):
    action = _action_from_seed(seed)
    fresh = _FRESH.evaluate(action)
    cached_first = _CACHED.evaluate(action)
    cached_again = _CACHED.evaluate(action)  # served from the LRU
    assert cached_first.to_dict() == fresh.to_dict()
    assert cached_again.explain() == fresh.explain()
    assert cached_again.steps == fresh.steps
