"""Unit tests for the Fourth Amendment rule module."""

from repro.core import (
    Actor,
    DataKind,
    DoctrineFacts,
    EnvironmentContext,
    InvestigativeAction,
    LegalSource,
    Place,
    ProcessKind,
    Timing,
    analyze_privacy,
)
from repro.core.statutes import fourth_amendment


def make_action(actor=Actor.GOVERNMENT, doctrine=None, **context_kwargs):
    context_kwargs.setdefault("place", Place.SUSPECT_PREMISES)
    return InvestigativeAction(
        description="probe",
        actor=actor,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(**context_kwargs),
        doctrine=doctrine or DoctrineFacts(),
    )


def evaluate(action):
    return fourth_amendment.evaluate(action, analyze_privacy(action))


class TestStateActionRequirement:
    def test_private_search_imposes_nothing(self):
        assert evaluate(make_action(actor=Actor.PRIVATE)) is None

    def test_provider_action_imposes_nothing(self):
        assert evaluate(make_action(actor=Actor.PROVIDER)) is None

    def test_government_agent_is_state_action(self):
        requirement = evaluate(make_action(actor=Actor.GOVERNMENT_AGENT))
        assert requirement is not None
        assert requirement.process is ProcessKind.SEARCH_WARRANT


class TestWarrantRequirement:
    def test_search_of_protected_interest_needs_warrant(self):
        requirement = evaluate(make_action())
        assert requirement is not None
        assert requirement.source is LegalSource.FOURTH_AMENDMENT
        assert requirement.process is ProcessKind.SEARCH_WARRANT

    def test_no_rep_means_no_requirement(self):
        assert evaluate(make_action(knowingly_exposed=True)) is None

    def test_requirement_cites_katz(self):
        requirement = evaluate(make_action())
        cited = {
            key for step in requirement.steps for key in step.authorities
        }
        assert "katz" in cited


class TestNarrowDoctrines:
    def test_crist_hash_search_needs_warrant_despite_custody(self):
        action = make_action(
            doctrine=DoctrineFacts(hash_search_of_lawful_media=True),
            place=Place.GOVERNMENT_CUSTODY,
        )
        requirement = evaluate(action)
        assert requirement is not None
        assert requirement.process is ProcessKind.SEARCH_WARRANT
        cited = {
            key for step in requirement.steps for key in step.authorities
        }
        assert "crist" in cited

    def test_sloane_mining_is_not_a_search(self):
        action = make_action(
            doctrine=DoctrineFacts(mining_of_lawful_data=True),
            place=Place.GOVERNMENT_CUSTODY,
        )
        assert evaluate(action) is None

    def test_scene_20_credentials_need_no_further_process(self):
        action = make_action(
            doctrine=DoctrineFacts(credentials_lawfully_obtained=True),
            place=Place.THIRD_PARTY_PROVIDER,
        )
        assert evaluate(action) is None
