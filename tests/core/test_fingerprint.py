"""Tests for the canonical action fingerprint.

The fingerprint's contract: equal fingerprints imply identical rulings.
Each normalization (dropped description, provider facts, the Kyllo
factor, collapsed ineffective consent) is tested both ways — the
normalized variants collide, and the colliding actions really do get the
same ruling.
"""

import dataclasses
import random

from repro.core import (
    Actor,
    ComplianceEngine,
    ConsentFacts,
    ConsentScope,
    DataKind,
    EnvironmentContext,
    InvestigativeAction,
    Place,
    ProviderRole,
    Timing,
    action_fingerprint,
    fingerprint_digest,
)
from repro.core.fingerprint import describe_fingerprint
from repro.workloads import random_action

_ENGINE = ComplianceEngine()


def _base_action(**context_overrides) -> InvestigativeAction:
    return InvestigativeAction(
        description="baseline",
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(
            place=Place.THIRD_PARTY_PROVIDER, **context_overrides
        ),
    )


class TestFingerprintBasics:
    def test_hashable_and_deterministic(self):
        action = _base_action()
        assert hash(action_fingerprint(action)) == hash(
            action_fingerprint(action)
        )
        assert action.fingerprint() == action_fingerprint(action)

    def test_description_is_normalized_out(self):
        a = _base_action()
        b = dataclasses.replace(a, description="a very different label")
        assert action_fingerprint(a) == action_fingerprint(b)
        assert (
            _ENGINE.evaluate(a).explain() == _ENGINE.evaluate(b).explain()
        )

    def test_distinct_rule_inputs_distinguish(self):
        a = _base_action()
        b = dataclasses.replace(a, timing=Timing.REAL_TIME)
        assert action_fingerprint(a) != action_fingerprint(b)

    def test_digest_is_stable_and_hex(self):
        fingerprint = action_fingerprint(_base_action())
        digest = fingerprint_digest(fingerprint)
        assert digest == fingerprint_digest(fingerprint)
        assert len(digest) == 64
        int(digest, 16)  # must be valid hex

    def test_describe_names_every_field(self):
        fingerprint = action_fingerprint(_base_action())
        described = describe_fingerprint(fingerprint)
        assert len(described) == len(fingerprint)
        assert described["place"] is Place.THIRD_PARTY_PROVIDER


class TestNormalizations:
    """Each collapse mirrors a guard in the rule modules; colliding
    actions must also receive identical rulings."""

    def _assert_collides_and_agrees(self, a, b):
        assert action_fingerprint(a) == action_fingerprint(b)
        assert (
            _ENGINE.evaluate(a).to_dict() == _ENGINE.evaluate(b).to_dict()
        )

    def test_unknown_provider_treated_as_public(self):
        # sca.provider_role_for: None means "assume the provider is public".
        a = _base_action(provider_serves_public=None)
        b = _base_action(provider_serves_public=True)
        self._assert_collides_and_agrees(a, b)

    def test_serves_public_dead_when_role_explicit(self):
        # The SCA returns an explicit provider_role before consulting it.
        a = _base_action(
            provider_role=ProviderRole.RCS, provider_serves_public=False
        )
        b = _base_action(
            provider_role=ProviderRole.RCS, provider_serves_public=True
        )
        self._assert_collides_and_agrees(a, b)

    def test_kyllo_factor_dead_outside_home(self):
        # privacy._objective_prong consults the technology factor only
        # when home_interior is set.
        a = _base_action(technology_in_general_public_use=True)
        b = _base_action(technology_in_general_public_use=False)
        self._assert_collides_and_agrees(a, b)

    def test_kyllo_factor_live_inside_home(self):
        a = _base_action(
            home_interior=True, technology_in_general_public_use=True
        )
        b = _base_action(
            home_interior=True, technology_in_general_public_use=False
        )
        assert action_fingerprint(a) != action_fingerprint(b)

    def test_ineffective_consent_variants_collapse(self):
        # Every rule-module consult goes through consent.effective();
        # an involuntary consent and a revoked one are equally void.
        base = _base_action()
        a = dataclasses.replace(
            base,
            consent=ConsentFacts(scope=ConsentScope.TARGET, voluntary=False),
        )
        b = dataclasses.replace(
            base,
            consent=ConsentFacts(scope=ConsentScope.SPOUSE, revoked=True),
        )
        self._assert_collides_and_agrees(a, b)

    def test_effective_consent_scope_distinguishes(self):
        # An effective consent's scope appears in the ruling's trace.
        base = _base_action()
        a = dataclasses.replace(
            base, consent=ConsentFacts(scope=ConsentScope.TARGET)
        )
        b = dataclasses.replace(
            base, consent=ConsentFacts(scope=ConsentScope.SPOUSE)
        )
        assert action_fingerprint(a) != action_fingerprint(b)


class TestFingerprintSoundnessSweep:
    def test_equal_fingerprints_imply_equal_rulings(self):
        """Over a random corpus, every fingerprint collision is harmless."""
        rng = random.Random(123)
        by_fingerprint = {}
        for index in range(2000):
            action = random_action(rng, index)
            fingerprint = action_fingerprint(action)
            payload = _ENGINE.evaluate(action).to_dict()
            seen = by_fingerprint.setdefault(fingerprint, payload)
            assert seen == payload
