"""Cross-doctrine interaction tests for the compliance engine.

Each test pins down how the engine resolves a *combination* of doctrines
— the places where single-rule tests cannot catch inconsistencies.
"""

import pytest

from repro.core import (
    Actor,
    ComplianceEngine,
    ConsentFacts,
    ConsentScope,
    DataKind,
    DoctrineFacts,
    EnvironmentContext,
    InvestigativeAction,
    LegalSource,
    Place,
    ProcessKind,
    Timing,
)


@pytest.fixture(scope="module")
def engine():
    return ComplianceEngine()


def make_action(
    actor=Actor.GOVERNMENT,
    data_kind=DataKind.CONTENT,
    timing=Timing.STORED,
    consent=None,
    doctrine=None,
    **context_kwargs,
):
    context_kwargs.setdefault("place", Place.SUSPECT_PREMISES)
    return InvestigativeAction(
        description="interaction probe",
        actor=actor,
        data_kind=data_kind,
        timing=timing,
        context=EnvironmentContext(**context_kwargs),
        consent=consent or ConsentFacts(),
        doctrine=doctrine or DoctrineFacts(),
    )


class TestProviderSelfAccess:
    def test_provider_reading_its_own_stored_content_needs_nothing(
        self, engine
    ):
        """2701(c)(1): the provider is exempt for its own stored comms."""
        ruling = engine.evaluate(
            make_action(
                actor=Actor.PROVIDER,
                place=Place.THIRD_PARTY_PROVIDER,
            )
        )
        assert ruling.required_process is ProcessKind.NONE
        assert LegalSource.SCA not in ruling.governing_sources

    def test_government_compelling_the_same_content_needs_warrant(
        self, engine
    ):
        ruling = engine.evaluate(
            make_action(place=Place.THIRD_PARTY_PROVIDER)
        )
        assert ruling.required_process is ProcessKind.SEARCH_WARRANT
        assert LegalSource.SCA in ruling.governing_sources


class TestPrivateActorsAndTitleIII:
    def test_private_wardriver_payload_capture_still_implicates_title_iii(
        self, engine
    ):
        """Title III binds 'any person' — a hobbyist capturing open-WiFi
        payloads faces the same interception prohibition (no order is
        *available* to them, so the conduct is simply unlawful)."""
        ruling = engine.evaluate(
            make_action(
                actor=Actor.PRIVATE,
                timing=Timing.REAL_TIME,
                place=Place.WIRELESS_BROADCAST,
            )
        )
        assert ruling.required_process is ProcessKind.WIRETAP_ORDER
        assert LegalSource.FOURTH_AMENDMENT not in ruling.governing_sources

    def test_private_party_to_the_call_may_record(self, engine):
        ruling = engine.evaluate(
            make_action(
                actor=Actor.PRIVATE,
                timing=Timing.REAL_TIME,
                place=Place.TRANSMISSION_PATH,
                consent=ConsentFacts(
                    scope=ConsentScope.ONE_PARTY_TO_COMMUNICATION
                ),
            )
        )
        assert ruling.required_process is ProcessKind.NONE


class TestExceptionCombinations:
    def test_exigency_clears_fourth_but_not_title_iii(self, engine):
        """Exigent circumstances excuse the warrant, not the statute:
        a real-time content grab still needs a Title III order."""
        ruling = engine.evaluate(
            make_action(
                timing=Timing.REAL_TIME,
                place=Place.TRANSMISSION_PATH,
                doctrine=DoctrineFacts(exigent_circumstances=True),
            )
        )
        assert ruling.required_process is ProcessKind.WIRETAP_ORDER

    def test_exigency_alone_clears_a_premises_search(self, engine):
        ruling = engine.evaluate(
            make_action(doctrine=DoctrineFacts(exigent_circumstances=True))
        )
        assert ruling.required_process is ProcessKind.NONE

    def test_plain_view_clears_a_premises_seizure(self, engine):
        ruling = engine.evaluate(
            make_action(doctrine=DoctrineFacts(plain_view=True))
        )
        assert ruling.required_process is ProcessKind.NONE

    def test_probationer_search_needs_no_warrant(self, engine):
        ruling = engine.evaluate(
            make_action(doctrine=DoctrineFacts(target_on_probation=True))
        )
        assert ruling.required_process is ProcessKind.NONE

    def test_emergency_pen_trap_plus_content_does_not_cross_over(
        self, engine
    ):
        """A 3125 emergency authorizes *pen/trap* collection only —
        content interception still needs its Title III order."""
        ruling = engine.evaluate(
            make_action(
                timing=Timing.REAL_TIME,
                place=Place.TRANSMISSION_PATH,
                doctrine=DoctrineFacts(emergency_pen_trap=True),
            )
        )
        assert ruling.required_process is ProcessKind.WIRETAP_ORDER

    def test_emergency_pen_trap_clears_non_content(self, engine):
        ruling = engine.evaluate(
            make_action(
                data_kind=DataKind.NON_CONTENT,
                timing=Timing.REAL_TIME,
                place=Place.TRANSMISSION_PATH,
                doctrine=DoctrineFacts(emergency_pen_trap=True),
            )
        )
        assert ruling.required_process is ProcessKind.NONE


class TestConsentScopeEdges:
    def test_co_user_consent_exceeding_authority_is_void(self, engine):
        ruling = engine.evaluate(
            make_action(
                consent=ConsentFacts(
                    scope=ConsentScope.CO_USER_SHARED_SPACE,
                    exceeds_authority=True,
                )
            )
        )
        assert ruling.required_process is ProcessKind.SEARCH_WARRANT

    def test_revoked_consent_restores_the_requirement(self, engine):
        ruling = engine.evaluate(
            make_action(
                consent=ConsentFacts(
                    scope=ConsentScope.SPOUSE, revoked=True
                )
            )
        )
        assert ruling.required_process is ProcessKind.SEARCH_WARRANT

    def test_employer_consent_clears_workplace_search(self, engine):
        ruling = engine.evaluate(
            make_action(
                consent=ConsentFacts(scope=ConsentScope.EMPLOYER)
            )
        )
        assert ruling.required_process is ProcessKind.NONE


class TestAbandonmentAndExposure:
    def test_abandoned_device_searchable_without_process(self, engine):
        ruling = engine.evaluate(make_action(abandoned=True))
        assert ruling.required_process is ProcessKind.NONE

    def test_shared_folder_on_private_machine(self, engine):
        """King (11th Cir.): sharing forfeits privacy even at home."""
        ruling = engine.evaluate(make_action(shared_with_others=True))
        assert ruling.required_process is ProcessKind.NONE

    def test_exposure_plus_encryption_still_no_rep(self, engine):
        ruling = engine.evaluate(
            make_action(knowingly_exposed=True, encrypted=True)
        )
        assert ruling.required_process is ProcessKind.NONE


class TestKylloFactors:
    def test_exotic_tech_into_the_home_is_a_search(self, engine):
        ruling = engine.evaluate(
            make_action(
                home_interior=True,
                technology_in_general_public_use=False,
            )
        )
        assert ruling.required_process is ProcessKind.SEARCH_WARRANT

    def test_common_tech_observation_still_protected_at_home(self, engine):
        """With common technology the Kyllo rule is not triggered, but a
        premises search of stored content remains a search."""
        ruling = engine.evaluate(
            make_action(
                home_interior=True,
                technology_in_general_public_use=True,
            )
        )
        assert ruling.required_process is ProcessKind.SEARCH_WARRANT


class TestSubscriberInfoPath:
    def test_subscriber_info_needs_only_a_subpoena(self, engine):
        ruling = engine.evaluate(
            make_action(
                data_kind=DataKind.SUBSCRIBER_INFO,
                place=Place.THIRD_PARTY_PROVIDER,
            )
        )
        assert ruling.required_process is ProcessKind.SUBPOENA
        # Constitutionally unprotected (Smith), statutorily protected.
        assert not ruling.privacy.has_rep
        assert LegalSource.SCA in ruling.governing_sources

    def test_transactional_records_need_a_2703d_order(self, engine):
        ruling = engine.evaluate(
            make_action(
                data_kind=DataKind.TRANSACTIONAL_RECORD,
                place=Place.THIRD_PARTY_PROVIDER,
            )
        )
        assert ruling.required_process is ProcessKind.COURT_ORDER
