"""Unit tests for the Wiretap Act (Title III) rule module."""

import pytest

from repro.core import (
    Actor,
    ConsentFacts,
    ConsentScope,
    DataKind,
    DoctrineFacts,
    EnvironmentContext,
    ExceptionKind,
    InvestigativeAction,
    Place,
    ProcessKind,
    Timing,
)
from repro.core.statutes import wiretap


def make_action(
    data_kind=DataKind.CONTENT,
    timing=Timing.REAL_TIME,
    actor=Actor.GOVERNMENT,
    consent=None,
    doctrine=None,
    **context_kwargs,
):
    context_kwargs.setdefault("place", Place.TRANSMISSION_PATH)
    return InvestigativeAction(
        description="probe",
        actor=actor,
        data_kind=data_kind,
        timing=timing,
        context=EnvironmentContext(**context_kwargs),
        consent=consent or ConsentFacts(),
        doctrine=doctrine or DoctrineFacts(),
    )


class TestApplicability:
    def test_real_time_content_is_covered(self):
        assert wiretap.applies(make_action())

    def test_stored_content_is_not_interception(self):
        # Steve Jackson Games: contemporaneity requirement.
        assert not wiretap.applies(make_action(timing=Timing.STORED))

    def test_non_content_is_pen_trap_territory(self):
        assert not wiretap.applies(
            make_action(data_kind=DataKind.NON_CONTENT)
        )


class TestRequirement:
    def test_interception_requires_title_iii_order(self):
        requirement = wiretap.evaluate(make_action())
        assert requirement is not None
        assert requirement.process is ProcessKind.WIRETAP_ORDER

    def test_inapplicable_returns_none(self):
        assert wiretap.evaluate(make_action(timing=Timing.STORED)) is None


class TestStatutoryExceptions:
    def test_provider_exception(self):
        found = wiretap.statutory_exception(make_action(actor=Actor.PROVIDER))
        assert found is not None
        kind, step = found
        assert kind is ExceptionKind.PROVIDER_SELF_PROTECTION
        assert "2511(2)(a)(i)" in step.text

    def test_own_network_monitoring_counts_as_provider(self):
        found = wiretap.statutory_exception(
            make_action(doctrine=DoctrineFacts(monitoring_own_network=True))
        )
        assert found is not None
        assert found[0] is ExceptionKind.PROVIDER_SELF_PROTECTION

    def test_trespasser_exception(self):
        found = wiretap.statutory_exception(
            make_action(
                doctrine=DoctrineFacts(victim_invited_monitoring=True)
            )
        )
        assert found is not None
        assert found[0] is ExceptionKind.COMPUTER_TRESPASSER

    def test_trespasser_exception_limited_to_victim_system(self):
        # Table 1 scene 16: the consent does not reach the attacker's box.
        action = make_action(
            consent=ConsentFacts(
                scope=ConsentScope.NETWORK_OWNER, covers_target_data=False
            ),
            doctrine=DoctrineFacts(victim_invited_monitoring=True),
        )
        assert wiretap.statutory_exception(action) is None

    @pytest.mark.parametrize(
        "scope",
        [
            ConsentScope.ONE_PARTY_TO_COMMUNICATION,
            ConsentScope.NETWORK_OWNER,
            ConsentScope.TARGET,
        ],
    )
    def test_party_consent(self, scope):
        found = wiretap.statutory_exception(
            make_action(consent=ConsentFacts(scope=scope))
        )
        assert found is not None
        assert found[0] is ExceptionKind.PARTY_CONSENT

    def test_spouse_consent_is_not_party_consent(self):
        # A spouse may consent to *searches of property*, but is not a
        # party to the communication for 2511(2)(c) purposes.
        found = wiretap.statutory_exception(
            make_action(consent=ConsentFacts(scope=ConsentScope.SPOUSE))
        )
        assert found is None

    def test_public_access_exception(self):
        found = wiretap.statutory_exception(
            make_action(place=Place.PUBLIC, knowingly_exposed=True)
        )
        assert found is not None
        assert found[0] is ExceptionKind.ACCESSIBLE_TO_PUBLIC

    def test_open_wifi_payload_is_not_publicly_accessible(self):
        # Table 1 row 4: the Street View lesson — radiated payloads are
        # not "readily accessible to the general public".
        found = wiretap.statutory_exception(
            make_action(place=Place.WIRELESS_BROADCAST)
        )
        assert found is None
        requirement = wiretap.evaluate(
            make_action(place=Place.WIRELESS_BROADCAST)
        )
        assert requirement is not None

    def test_exception_suppresses_requirement(self):
        assert wiretap.evaluate(make_action(actor=Actor.PROVIDER)) is None
