"""Unit tests for the authority registry."""

import pytest

from repro.core.caselaw import (
    Authority,
    AuthorityKind,
    AuthorityRegistry,
    build_default_registry,
)


@pytest.fixture()
def registry():
    return build_default_registry()


class TestAuthorityRegistry:
    def test_add_and_get(self):
        registry = AuthorityRegistry()
        authority = Authority(
            key="test",
            kind=AuthorityKind.CASE,
            citation="Test v. Case, 1 U.S. 1 (2000)",
            holding="testing works",
        )
        registry.add(authority)
        assert registry.get("test") is authority

    def test_duplicate_key_rejected(self):
        registry = AuthorityRegistry()
        authority = Authority(
            key="dup",
            kind=AuthorityKind.STATUTE,
            citation="x",
            holding="y",
        )
        registry.add(authority)
        with pytest.raises(ValueError, match="duplicate"):
            registry.add(authority)

    def test_unknown_key_raises(self):
        registry = AuthorityRegistry()
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_contains(self, registry):
        assert "katz" in registry
        assert "not-a-case" not in registry

    def test_iteration_covers_all(self, registry):
        assert len(list(registry)) == len(registry)


class TestDefaultRegistry:
    ANCHOR_KEYS = [
        "fourth_amendment",
        "wiretap_act",
        "sca",
        "pen_trap",
        "katz",
        "kyllo",
        "smith_v_maryland",
        "crist",
        "sloane",
        "gates",
        "matlock",
        "paper_judgment",
        "prusty_oneswarm",
        "huang_watermark",
    ]

    @pytest.mark.parametrize("key", ANCHOR_KEYS)
    def test_anchor_authorities_present(self, registry, key):
        authority = registry.get(key)
        assert authority.citation
        assert authority.holding

    def test_has_cases_statutes_and_secondary(self, registry):
        kinds = {authority.kind for authority in registry}
        assert AuthorityKind.CASE in kinds
        assert AuthorityKind.STATUTE in kinds
        assert AuthorityKind.SECONDARY in kinds
        assert AuthorityKind.CONSTITUTION in kinds

    def test_cases_helper_filters(self, registry):
        cases = registry.cases()
        assert cases
        assert all(a.kind is AuthorityKind.CASE for a in cases)

    def test_katz_holding_states_the_two_prong_origin(self, registry):
        assert "reasonable expectation of privacy" in registry.get(
            "katz"
        ).holding

    def test_registry_is_reasonably_complete(self, registry):
        # The paper cites dozens of authorities; the registry must carry
        # every one the rule modules use, with headroom.
        assert len(registry) >= 25
