"""Unit tests for the core enumerations and their orderings."""

import pytest

from repro.core.enums import (
    REQUIRED_SHOWING,
    ProcessKind,
    Standard,
)


class TestProcessKindOrdering:
    def test_ladder_is_strictly_increasing(self):
        ladder = [
            ProcessKind.NONE,
            ProcessKind.SUBPOENA,
            ProcessKind.COURT_ORDER,
            ProcessKind.SEARCH_WARRANT,
            ProcessKind.WIRETAP_ORDER,
        ]
        for weaker, stronger in zip(ladder, ladder[1:]):
            assert weaker < stronger

    def test_every_process_satisfies_itself(self):
        for kind in ProcessKind:
            assert kind.satisfies(kind)

    def test_stronger_satisfies_weaker(self):
        assert ProcessKind.SEARCH_WARRANT.satisfies(ProcessKind.SUBPOENA)
        assert ProcessKind.WIRETAP_ORDER.satisfies(ProcessKind.SEARCH_WARRANT)
        assert ProcessKind.COURT_ORDER.satisfies(ProcessKind.NONE)

    def test_weaker_does_not_satisfy_stronger(self):
        assert not ProcessKind.SUBPOENA.satisfies(ProcessKind.COURT_ORDER)
        assert not ProcessKind.SEARCH_WARRANT.satisfies(
            ProcessKind.WIRETAP_ORDER
        )
        assert not ProcessKind.NONE.satisfies(ProcessKind.SUBPOENA)

    def test_display_names_are_distinct(self):
        names = {kind.display_name for kind in ProcessKind}
        assert len(names) == len(ProcessKind)

    def test_display_name_mentions_title_iii_for_wiretap(self):
        assert "Title III" in ProcessKind.WIRETAP_ORDER.display_name


class TestStandard:
    def test_ladder_matches_paper_section_ii_a(self):
        assert (
            Standard.MERE_SUSPICION
            < Standard.SPECIFIC_AND_ARTICULABLE_FACTS
            < Standard.PROBABLE_CAUSE
        )

    def test_satisfies_is_reflexive(self):
        for standard in Standard:
            assert standard.satisfies(standard)

    def test_probable_cause_satisfies_suspicion(self):
        assert Standard.PROBABLE_CAUSE.satisfies(Standard.MERE_SUSPICION)

    def test_suspicion_does_not_satisfy_probable_cause(self):
        assert not Standard.MERE_SUSPICION.satisfies(Standard.PROBABLE_CAUSE)


class TestRequiredShowing:
    def test_every_process_kind_has_a_required_showing(self):
        assert set(REQUIRED_SHOWING) == set(ProcessKind)

    @pytest.mark.parametrize(
        "kind,expected",
        [
            (ProcessKind.NONE, Standard.NOTHING),
            (ProcessKind.SUBPOENA, Standard.MERE_SUSPICION),
            (
                ProcessKind.COURT_ORDER,
                Standard.SPECIFIC_AND_ARTICULABLE_FACTS,
            ),
            (ProcessKind.SEARCH_WARRANT, Standard.PROBABLE_CAUSE),
            (ProcessKind.WIRETAP_ORDER, Standard.SUPER_WARRANT_SHOWING),
        ],
    )
    def test_showing_ladder(self, kind, expected):
        assert REQUIRED_SHOWING[kind] is expected

    def test_showing_is_monotone_in_process_strength(self):
        kinds = sorted(ProcessKind)
        showings = [REQUIRED_SHOWING[kind] for kind in kinds]
        assert showings == sorted(showings)
