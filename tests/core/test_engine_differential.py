"""Differential tests: memoization must never change a ruling.

The correctness spine for the batched/cached engine.  A cached engine and
a fresh engine are run over the same 10,000-action corpus and every
ruling payload must match byte for byte; a second pass must be served
(at least partly) from the cache.  ``repro bench`` runs the same gate on
every benchmark invocation.
"""

import pytest

from repro.core import ComplianceEngine, RulingCache
from repro.workloads import action_corpus

CORPUS_SIZE = 10_000
SEED = 7


@pytest.fixture(scope="module")
def corpus():
    return action_corpus(CORPUS_SIZE, seed=SEED)


class TestCachedVsFresh:
    def test_identical_rulings_over_10k_actions(self, corpus):
        fresh = ComplianceEngine()
        cached = ComplianceEngine(cache=RulingCache(maxsize=2 * CORPUS_SIZE))
        fresh_payloads = [r.to_dict() for r in fresh.evaluate_many(corpus)]
        cached_payloads = [r.to_dict() for r in cached.evaluate_many(corpus)]
        assert fresh_payloads == cached_payloads

    def test_second_pass_reports_cache_hits(self, corpus):
        cached = ComplianceEngine(cache=RulingCache(maxsize=2 * CORPUS_SIZE))
        cached.evaluate_many(corpus)
        cached.cache_stats.reset()
        second = cached.evaluate_many(corpus)
        assert len(second) == CORPUS_SIZE
        assert cached.cache_stats.hit_rate > 0
        assert cached.cache_stats.hits == CORPUS_SIZE
        assert cached.cache_stats.misses == 0

    def test_small_cache_still_correct_under_eviction(self, corpus):
        """Thrashing an 64-entry LRU must degrade speed, never rulings."""
        sample = corpus[:2000]
        fresh = ComplianceEngine()
        tiny = ComplianceEngine(cache=RulingCache(maxsize=64))
        fresh_payloads = [r.to_dict() for r in fresh.evaluate_many(sample)]
        tiny_payloads = [r.to_dict() for r in tiny.evaluate_many(sample)]
        assert fresh_payloads == tiny_payloads
        assert tiny.cache_stats.evictions > 0


class TestEvaluateMany:
    def test_matches_per_action_loop_and_preserves_order(self, corpus):
        sample = corpus[:1000]
        engine = ComplianceEngine()
        loop = [engine.evaluate(action).to_dict() for action in sample]
        batch = [r.to_dict() for r in engine.evaluate_many(sample)]
        assert loop == batch

    def test_uncached_batch_dedupes_within_the_call(self, corpus):
        action = corpus[0]
        engine = ComplianceEngine()
        rulings = engine.evaluate_many([action] * 5)
        assert len(rulings) == 5
        # One evaluation, shared by every duplicate in the batch.
        assert all(r is rulings[0] for r in rulings)

    def test_empty_batch(self):
        assert ComplianceEngine().evaluate_many([]) == []
