"""Table 1 scene encodings: every row individually verified."""

import pytest

from repro.core import ProcessKind, build_table1

#: Expected engine outcome per scene: (paper "needs process", the exact
#: process the engine should demand).  The processes are the natural
#: doctrinal readings of each row; the paper itself only publishes the
#: binary answer.
EXPECTED = {
    1: (False, ProcessKind.NONE),
    2: (False, ProcessKind.NONE),
    3: (False, ProcessKind.NONE),
    4: (True, ProcessKind.WIRETAP_ORDER),
    5: (False, ProcessKind.NONE),
    6: (True, ProcessKind.WIRETAP_ORDER),
    7: (True, ProcessKind.COURT_ORDER),
    8: (True, ProcessKind.WIRETAP_ORDER),
    9: (False, ProcessKind.NONE),
    10: (False, ProcessKind.NONE),
    11: (False, ProcessKind.NONE),
    12: (True, ProcessKind.SEARCH_WARRANT),
    13: (True, ProcessKind.WIRETAP_ORDER),
    14: (True, ProcessKind.WIRETAP_ORDER),
    15: (False, ProcessKind.NONE),
    16: (True, ProcessKind.SEARCH_WARRANT),
    17: (False, ProcessKind.NONE),
    18: (True, ProcessKind.SEARCH_WARRANT),
    19: (False, ProcessKind.NONE),
    20: (False, ProcessKind.NONE),
}

#: Rows the paper marks (*) — the authors' own judgment.
STARRED = {3, 4, 5, 6}


@pytest.fixture(scope="module")
def scenes():
    return {scene.number: scene for scene in build_table1()}


def test_table_has_twenty_scenes(scenes):
    assert sorted(scenes) == list(range(1, 21))


@pytest.mark.parametrize("number", sorted(EXPECTED))
def test_scene_matches_paper(engine, scenes, number):
    scene = scenes[number]
    needs, process = EXPECTED[number]
    assert scene.paper_needs_process == needs, (
        f"scene {number}: encoded paper answer drifted"
    )
    ruling = engine.evaluate(scene.action)
    assert ruling.needs_process == needs
    assert ruling.required_process is process


@pytest.mark.parametrize("number", sorted(STARRED))
def test_starred_encoding(scenes, number):
    assert scenes[number].starred
    assert "(*)" in scenes[number].paper_answer


def test_unstarred_rows_have_plain_answers(scenes):
    for number, scene in scenes.items():
        if number not in STARRED:
            assert "(*)" not in scene.paper_answer


def test_scene_descriptions_are_distinct(scenes):
    descriptions = {s.action.description for s in scenes.values()}
    assert len(descriptions) == 20


def test_wifi_rows_differ_only_in_data_kind_and_encryption(scenes):
    """Rows 3-6 form a 2x2 grid over (headers/content, open/encrypted)."""
    grid = {
        (scenes[n].action.data_kind, scenes[n].action.context.encrypted)
        for n in (3, 4, 5, 6)
    }
    assert len(grid) == 4


def test_scene_15_16_share_the_trespasser_doctrine(scenes):
    assert scenes[15].action.doctrine.victim_invited_monitoring
    assert scenes[16].action.doctrine.victim_invited_monitoring
    assert scenes[15].action.consent.covers_target_data
    assert not scenes[16].action.consent.covers_target_data
