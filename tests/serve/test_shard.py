"""Shard router invariants: isolation, routing stability, order, priming."""

import pytest

from repro.core.cache import RulingCache
from repro.core.engine import ComplianceEngine
from repro.core.fingerprint import action_fingerprint
from repro.ledger.serialize import canonical_json, ruling_to_dict
from repro.ledger.store import Ledger
from repro.serve.shard import ShardRouter
from repro.workloads import action_corpus


def _render(rulings):
    return [canonical_json(ruling_to_dict(r)) for r in rulings]


class TestShardIsolation:
    def test_no_two_shards_share_cache_or_engine(self):
        router = ShardRouter(n_shards=8)
        caches = [id(s.cache) for s in router.shards]
        engines = [id(s.engine) for s in router.shards]
        assert len(set(caches)) == len(caches)
        assert len(set(engines)) == len(engines)
        for shard in router.shards:
            assert shard.engine.cache is shard.cache

    def test_every_fingerprint_lands_only_in_its_owning_cache(self):
        router = ShardRouter(n_shards=4)
        corpus = action_corpus(600, seed=21)
        router.evaluate_many(corpus)
        for action in corpus:
            fingerprint = action_fingerprint(action)
            owner = router.shard_for(fingerprint)
            for shard in router.shards:
                held = shard.cache.get(fingerprint) is not None
                assert held == (shard.index == owner)

    def test_registry_is_shared_read_only(self):
        router = ShardRouter(n_shards=4)
        registries = {id(s.engine.registry) for s in router.shards}
        assert registries == {id(router.registry)}


class TestRouting:
    def test_routing_is_stable_within_process(self):
        router = ShardRouter(n_shards=5)
        for action in action_corpus(100, seed=22):
            fingerprint = action_fingerprint(action)
            first = router.shard_for(fingerprint)
            assert all(
                router.shard_for(fingerprint) == first for _ in range(3)
            )

    def test_partition_covers_every_position_exactly_once(self):
        router = ShardRouter(n_shards=3)
        corpus = action_corpus(250, seed=23)
        buckets = router.partition(corpus)
        flat = sorted(p for bucket in buckets for p in bucket)
        assert flat == list(range(len(corpus)))

    def test_constructor_validates_arguments(self):
        with pytest.raises(ValueError):
            ShardRouter(n_shards=0)
        with pytest.raises(ValueError):
            ShardRouter(cache_size=0)


class TestRouterEquivalence:
    def test_sharded_rulings_byte_identical_to_single_engine(self):
        corpus = action_corpus(2_000, seed=24)
        for n_shards in (1, 2, 4, 7):
            router = ShardRouter(n_shards=n_shards)
            reference = ComplianceEngine(
                cache=RulingCache(maxsize=2 * len(corpus))
            )
            assert _render(router.evaluate_many(corpus)) == _render(
                reference.evaluate_many(corpus)
            )

    def test_stats_aggregate_matches_per_shard_counters(self):
        router = ShardRouter(n_shards=4)
        corpus = action_corpus(800, seed=25)
        router.evaluate_many(corpus)
        router.evaluate_many(corpus)
        stats = router.stats()
        assert sum(
            s["actions_ruled"] for s in stats["shards"]
        ) == 2 * len(corpus)
        assert stats["cache_hits"] == sum(
            s["cache_hits"] for s in stats["shards"]
        )
        assert 0.0 < stats["hit_rate"] < 1.0


class TestLedgerPriming:
    def test_primed_entries_hit_on_the_owning_shard(self, tmp_path):
        path = str(tmp_path / "rulings.sqlite")
        corpus = action_corpus(400, seed=26)

        ledger = Ledger(path)
        try:
            ShardRouter(n_shards=4, ledger=ledger).evaluate_many(corpus)
        finally:
            ledger.close()

        ledger = Ledger(path)
        try:
            router = ShardRouter(n_shards=4)
            loaded = router.prime_from_ledger(ledger)
        finally:
            ledger.close()
        assert loaded == len({action_fingerprint(a) for a in corpus})

        router.evaluate_many(corpus)
        stats = router.stats()
        assert stats["cache_misses"] == 0
        assert stats["cache_hits"] == len(corpus)
