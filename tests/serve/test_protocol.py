"""Wire-codec tests: the action codec must be lossless and the framing strict."""

import pytest

from repro.core.fingerprint import action_fingerprint
from repro.serve.protocol import (
    MAX_BATCH_ACTIONS,
    MAX_LINE_BYTES,
    ProtocolError,
    action_from_dict,
    action_to_dict,
    decode_line,
    encode_line,
)
from repro.workloads import action_corpus


class TestActionCodec:
    def test_round_trip_preserves_equality_and_fingerprint(self):
        for action in action_corpus(300, seed=11):
            rebuilt = action_from_dict(action_to_dict(action))
            assert rebuilt == action
            assert action_fingerprint(rebuilt) == action_fingerprint(action)

    def test_round_trip_survives_json_framing(self):
        for action in action_corpus(50, seed=12):
            line = encode_line(action_to_dict(action))
            rebuilt = action_from_dict(decode_line(line))
            assert rebuilt == action

    def test_missing_field_raises_protocol_error(self):
        payload = action_to_dict(action_corpus(1, seed=3)[0])
        del payload["context"]
        with pytest.raises(ProtocolError):
            action_from_dict(payload)

    def test_unknown_enum_name_raises_protocol_error(self):
        payload = action_to_dict(action_corpus(1, seed=3)[0])
        payload["actor"] = "NOT_AN_ACTOR"
        with pytest.raises(ProtocolError):
            action_from_dict(payload)

    def test_non_dict_field_raises_protocol_error(self):
        payload = action_to_dict(action_corpus(1, seed=3)[0])
        payload["doctrine"] = "nope"
        with pytest.raises(ProtocolError):
            action_from_dict(payload)


class TestFraming:
    def test_encode_line_is_canonical_and_newline_terminated(self):
        line = encode_line({"b": 1, "a": 2})
        assert line == b'{"a":2,"b":1}\n'

    def test_decode_rejects_invalid_json(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{nope\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2]\n")

    def test_decode_rejects_non_utf8(self):
        with pytest.raises(ProtocolError):
            decode_line(b"\xff\xfe\n")

    def test_request_framing_bound_fits_the_batch_cap(self):
        # A request at the batch-size cap must fit the line bound —
        # otherwise the cap is unreachable and the bound is the real cap.
        sample = [action_to_dict(a) for a in action_corpus(200, seed=5)]
        per_action = max(
            len(encode_line({"op": "rule", "id": 0, "actions": [d]}))
            for d in sample
        )
        assert per_action * MAX_BATCH_ACTIONS <= MAX_LINE_BYTES
