"""Concurrency coverage: hammer private shard engines from threads and
tasks, and drive one server from many concurrent client connections.

The serving design's whole concurrency argument is that partitioning
replaces locking — each shard's cache and engine are touched only by
that shard.  These tests hammer that claim: same results as a single
engine, no cross-shard cache leakage, and byte-identical ordered
responses per connection when many connections pile onto one server.
"""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.cache import RulingCache
from repro.core.engine import ComplianceEngine
from repro.core.fingerprint import action_fingerprint
from repro.ledger.serialize import canonical_json, ruling_to_dict
from repro.serve.client import ServeClient
from repro.serve.harness import ServerThread
from repro.serve.server import ServerConfig
from repro.serve.shard import ShardRouter
from repro.workloads import action_corpus

N_SHARDS = 4


def _render(rulings):
    return [canonical_json(ruling_to_dict(r)) for r in rulings]


def _assert_isolation(router: ShardRouter, corpus) -> None:
    """Every ruled fingerprint lives only in its owning shard's cache."""
    for action in corpus:
        fingerprint = action_fingerprint(action)
        owner = router.shard_for(fingerprint)
        for shard in router.shards:
            held = shard.cache.get(fingerprint) is not None
            assert held == (shard.index == owner)


class TestThreadedShardHammer:
    def test_per_shard_engines_hammered_from_threads(self):
        corpus = action_corpus(2_000, seed=41)
        router = ShardRouter(n_shards=N_SHARDS)
        buckets = router.partition(corpus)
        rounds = 5

        def hammer(shard_index: int) -> list[str]:
            shard = router.shards[shard_index]
            mine = [corpus[p] for p in buckets[shard_index]]
            rendered: list[str] = []
            for _ in range(rounds):
                rendered = _render(shard.evaluate_many(mine))
            return rendered

        with ThreadPoolExecutor(max_workers=N_SHARDS) as pool:
            per_shard = list(pool.map(hammer, range(N_SHARDS)))

        reference = _reference(corpus)
        for positions, rendered in zip(buckets, per_shard):
            assert rendered == [reference[p] for p in positions]
        _assert_isolation(router, corpus)
        stats = router.stats()
        assert sum(
            s["actions_ruled"] for s in stats["shards"]
        ) == rounds * len(corpus)

    def test_async_tasks_hammer_independent_shards(self):
        corpus = action_corpus(1_200, seed=42)
        router = ShardRouter(n_shards=N_SHARDS)
        buckets = router.partition(corpus)
        reference = _reference(corpus)

        async def hammer(shard_index: int) -> list[str]:
            shard = router.shards[shard_index]
            mine = [corpus[p] for p in buckets[shard_index]]
            rendered: list[str] = []
            for _ in range(3):
                rendered = await asyncio.to_thread(
                    lambda: _render(shard.evaluate_many(mine))
                )
            return rendered

        async def main() -> list[list[str]]:
            return await asyncio.gather(
                *(hammer(i) for i in range(N_SHARDS))
            )

        per_shard = asyncio.run(main())
        for positions, rendered in zip(buckets, per_shard):
            assert rendered == [reference[p] for p in positions]
        _assert_isolation(router, corpus)


class TestConcurrentConnections:
    def test_many_connections_each_see_ordered_identical_rulings(self):
        corpus = action_corpus(1_500, seed=43)
        reference = _reference(corpus)
        batches = [
            corpus[i : i + 100] for i in range(0, len(corpus), 100)
        ]
        n_clients = 6
        failures: list[str] = []
        barrier = threading.Barrier(n_clients)

        with ServerThread(
            ServerConfig(port=0, metrics_port=0, n_shards=N_SHARDS)
        ) as thread:
            host, port = thread.address

            def drive(client_index: int) -> None:
                try:
                    with ServeClient(host, port) as client:
                        barrier.wait(timeout=30)
                        for index, batch in enumerate(batches):
                            client.send_rule(index, batch)
                        got: list[str] = []
                        for index, _batch in enumerate(batches):
                            response = client.read_response()
                            if response.get("id") != index:
                                failures.append(
                                    f"client {client_index}: order "
                                    f"violated at {index}"
                                )
                                return
                            got.extend(
                                canonical_json(r)
                                for r in response["rulings"]
                            )
                        if got != reference:
                            failures.append(
                                f"client {client_index}: rulings diverged"
                            )
                except Exception as exc:  # collected below
                    failures.append(f"client {client_index}: {exc!r}")

            threads = [
                threading.Thread(target=drive, args=(i,))
                for i in range(n_clients)
            ]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=120)

            assert failures == []

            with ServeClient(host, port) as client:
                stats = client.stats()["stats"]
            assert sum(
                s["actions_ruled"] for s in stats["shards"]
            ) <= n_clients * len(corpus)
            # Coalescing across connections means most lookups hit.
            assert stats["cache_hits"] > 0


def _reference(corpus) -> list[str]:
    engine = ComplianceEngine(cache=RulingCache(maxsize=2 * len(corpus)))
    return _render(engine.evaluate_many(corpus))
