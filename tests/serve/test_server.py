"""End-to-end server tests over real sockets on ephemeral loopback ports."""

import json
import urllib.request

import pytest

from repro.core.cache import RulingCache
from repro.core.engine import ComplianceEngine
from repro.ledger.serialize import canonical_json, ruling_to_dict
from repro.serve.client import ServeClient
from repro.serve.harness import ServerThread
from repro.serve.server import ServerConfig
from repro.workloads import action_corpus


def _config(**overrides) -> ServerConfig:
    base = {"port": 0, "metrics_port": 0, "n_shards": 4}
    base.update(overrides)
    return ServerConfig(**base)


def _reference_strings(corpus) -> list[str]:
    engine = ComplianceEngine(cache=RulingCache(maxsize=2 * len(corpus)))
    return [
        canonical_json(ruling_to_dict(r))
        for r in engine.evaluate_many(corpus)
    ]


class TestOps:
    def test_ping_stats_and_rule(self):
        corpus = action_corpus(120, seed=31)
        with ServerThread(_config()) as thread:
            host, port = thread.address
            with ServeClient(host, port) as client:
                assert client.ping() == {"ok": True, "pong": True}

                response = client.rule(corpus, request_id=7)
                assert response["ok"] and response["id"] == 7
                served = [
                    canonical_json(r) for r in response["rulings"]
                ]
                assert served == _reference_strings(corpus)

                stats = client.stats()["stats"]
                assert stats["n_shards"] == 4
                assert sum(
                    s["actions_ruled"] for s in stats["shards"]
                ) == len(corpus)

    def test_connection_survives_request_level_errors(self):
        with ServerThread(_config()) as thread:
            host, port = thread.address
            with ServeClient(host, port) as client:
                client._sock.sendall(b"{not json\n")
                assert client.read_response()["ok"] is False

                client.send_line({"op": "nope", "id": 1})
                response = client.read_response()
                assert response["ok"] is False
                assert "unknown op" in response["error"]

                client.send_line(
                    {"op": "rule", "id": 2, "actions": [{"bad": True}]}
                )
                response = client.read_response()
                assert response["ok"] is False and response["id"] == 2

                client.send_line({"op": "rule", "id": 3, "actions": "x"})
                assert client.read_response()["ok"] is False

                # The connection is still healthy after all of that.
                assert client.ping()["ok"] is True

    def test_batch_cap_is_enforced(self):
        corpus = action_corpus(5, seed=32)
        with ServerThread(_config(max_batch_actions=3)) as thread:
            host, port = thread.address
            with ServeClient(host, port) as client:
                response = client.rule(corpus, request_id=9)
                assert response["ok"] is False
                assert "exceeds cap" in response["error"]
                assert client.rule(corpus[:3], request_id=10)["ok"]


class TestPipeliningAndBackpressure:
    def test_pipelined_responses_arrive_in_request_order(self):
        corpus = action_corpus(600, seed=33)
        batches = [corpus[i : i + 60] for i in range(0, 600, 60)]
        with ServerThread(_config()) as thread:
            host, port = thread.address
            with ServeClient(host, port) as client:
                for index, batch in enumerate(batches):
                    client.send_rule(index, batch)
                for index, batch in enumerate(batches):
                    response = client.read_response()
                    assert response["id"] == index
                    assert len(response["rulings"]) == len(batch)

    def test_queue_policy_answers_everything_without_shedding(self):
        corpus = action_corpus(800, seed=34)
        batches = [corpus[i : i + 40] for i in range(0, 800, 40)]
        config = _config(max_pending_batches=1, policy="queue")
        with ServerThread(config) as thread:
            host, port = thread.address
            with ServeClient(host, port) as client:
                for index, batch in enumerate(batches):
                    client.send_rule(index, batch)
                answered = [client.read_response() for _ in batches]
            assert all(r["ok"] for r in answered)
            assert [r["id"] for r in answered] == list(range(len(batches)))
            with ServeClient(host, port) as client:
                assert client.stats()["stats"]["shed_total"] == 0

    def test_shed_policy_rejects_overload_with_shed_flag(self):
        corpus = action_corpus(2_000, seed=35)
        batches = [corpus[i : i + 100] for i in range(0, 2_000, 100)]
        config = _config(max_pending_batches=1, policy="shed")
        with ServerThread(config) as thread:
            host, port = thread.address
            with ServeClient(host, port) as client:
                for index, batch in enumerate(batches):
                    client.send_rule(index, batch)
                answered = [client.read_response() for _ in batches]
                shed = [r for r in answered if not r["ok"]]
                ruled = [r for r in answered if r["ok"]]
                # Everything got an answer, in order, and at least one
                # batch was shed (depth 20 against a bound of 1).
                assert [r["id"] for r in answered] == list(
                    range(len(batches))
                )
                assert shed and ruled
                assert all(r["shed"] is True for r in shed)
                assert all(r["error"] == "overloaded" for r in shed)
                stats = client.stats()["stats"]
                assert stats["shed_total"] == len(shed)


class TestDifferential:
    def test_10k_corpus_server_vs_inprocess_byte_identical(self):
        corpus = action_corpus(10_000, seed=7)
        batches = [
            corpus[i : i + 500] for i in range(0, len(corpus), 500)
        ]
        served: list[str] = []
        with ServerThread(_config()) as thread:
            host, port = thread.address
            with ServeClient(host, port) as client:
                for index, batch in enumerate(batches):
                    client.send_rule(index, batch)
                for index, _batch in enumerate(batches):
                    response = client.read_response()
                    assert response["ok"] and response["id"] == index
                    served.extend(
                        canonical_json(r) for r in response["rulings"]
                    )
        assert served == _reference_strings(corpus)


class TestMetricsEndpoint:
    def _get(self, address, path):
        host, port = address
        request = urllib.request.Request(f"http://{host}:{port}{path}")
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8")

    def test_metrics_healthz_and_404(self):
        corpus = action_corpus(400, seed=36)
        with ServerThread(_config()) as thread:
            host, port = thread.address
            with ServeClient(host, port) as client:
                client.rule(corpus)
                client.rule(corpus)

                # Scrape while the connection is still open: the gauge
                # value is deterministic (disconnects are noticed
                # asynchronously, so scraping after close would race).
                status, text = self._get(
                    thread.metrics_address, "/metrics"
                )
            assert status == 200
            for marker in (
                'repro_ruling_cache_hits{cache="shard0"}',
                'repro_ruling_cache_hits{cache="shard3"}',
                "repro_serve_requests_total",
                "repro_serve_actions_total 800",
                "repro_serve_inflight_batches 0",
                "repro_serve_ruling_seconds_bucket",
                "repro_serve_round_trip_seconds_bucket",
                "repro_serve_round_trip_seconds_count 2",
                "repro_serve_connections 1",
            ):
                assert marker in text, marker

            assert self._get(thread.metrics_address, "/healthz") == (
                200,
                "ok\n",
            )
            status, _text = self._get(thread.metrics_address, "/nope")
            assert status == 404


class TestLedgerIntegration:
    def test_prime_warms_every_shard_from_the_ledger(self, tmp_path):
        path = str(tmp_path / "serve.sqlite")
        corpus = action_corpus(500, seed=37)

        with ServerThread(_config(ledger_path=path)) as thread:
            host, port = thread.address
            with ServeClient(host, port) as client:
                client.rule(corpus)

        config = _config(ledger_path=path, prime=True)
        with ServerThread(config) as thread:
            host, port = thread.address
            with ServeClient(host, port) as client:
                stats = client.stats()["stats"]
                assert stats["primed_rulings"] > 0
                response = client.rule(corpus)
                assert [
                    canonical_json(r) for r in response["rulings"]
                ] == _reference_strings(corpus)
                stats = client.stats()["stats"]
                # Every ruling was served from a primed cache entry.
                assert stats["cache_misses"] == 0
                assert stats["cache_hits"] == len(corpus)

    def test_prime_without_ledger_is_rejected(self):
        with pytest.raises(ValueError):
            ServerConfig(prime=True)

    def test_bad_policy_is_rejected(self):
        with pytest.raises(ValueError):
            ServerConfig(policy="drop")


class TestResponseEncoding:
    def test_memoized_response_equals_direct_encoding(self):
        corpus = action_corpus(200, seed=38)
        with ServerThread(_config()) as thread:
            host, port = thread.address
            with ServeClient(host, port) as client:
                first = client.rule(corpus, request_id="a")
                second = client.rule(corpus, request_id="a")
        # Hot (memoized) responses must be byte-identical to cold ones.
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
