"""Persistent legal ledger: rulings, dockets, custody, suppression.

The compliance engine, investigation pipeline, and workflow engine are
deterministic but, on their own, amnesiac — every ruling, docket, and
custody chain dies with the process.  This package gives them durable,
queryable, integrity-checked storage::

    from repro.ledger import Ledger
    from repro.core import ComplianceEngine, RulingCache

    with Ledger("case.db") as ledger:
        engine = ComplianceEngine(cache=RulingCache(), ledger=ledger)
        engine.evaluate_many(actions)      # every fresh ruling persisted
    # -- in a later process --
    with Ledger("case.db") as ledger:
        engine = ComplianceEngine(cache=RulingCache(), ledger=ledger)
        engine.prime_from_ledger()         # warm cache before first ruling

SQLite-backed, zero dependencies; the schema sticks to the portable SQL
core so Postgres is a drop-in (``docs/ledger.md``).  The CLI front end
is ``repro ledger query/stats/prime/vacuum/populate``.
"""

from repro.ledger.queries import (
    RulingRow,
    citation_histogram,
    process_histogram,
    rulings_citing,
    search_reasoning,
    suppression_histogram,
)
from repro.ledger.schema import MIGRATIONS, SCHEMA_VERSION, schema_digest
from repro.ledger.serialize import (
    canonical_json,
    citation_keys,
    custody_entry_from_dict,
    custody_entry_to_dict,
    fingerprint_from_json,
    fingerprint_to_json,
    instrument_from_dict,
    instrument_to_dict,
    reasoning_text,
    ruling_from_dict,
    ruling_from_json,
    ruling_to_dict,
    ruling_to_json,
)
from repro.ledger.store import (
    CustodyRecord,
    Ledger,
    LedgerError,
    LedgerStats,
    SuppressionRecord,
)

__all__ = [
    "CustodyRecord",
    "Ledger",
    "LedgerError",
    "LedgerStats",
    "MIGRATIONS",
    "RulingRow",
    "SCHEMA_VERSION",
    "SuppressionRecord",
    "canonical_json",
    "citation_histogram",
    "citation_keys",
    "custody_entry_from_dict",
    "custody_entry_to_dict",
    "fingerprint_from_json",
    "fingerprint_to_json",
    "instrument_from_dict",
    "instrument_to_dict",
    "process_histogram",
    "reasoning_text",
    "ruling_from_dict",
    "ruling_from_json",
    "ruling_to_dict",
    "ruling_to_json",
    "rulings_citing",
    "schema_digest",
    "search_reasoning",
    "suppression_histogram",
]
