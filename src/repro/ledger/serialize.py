"""Canonical, loss-free serialization for persisted legal records.

:meth:`~repro.core.ruling.Ruling.to_dict` is a human-facing export and
drops detail (per-requirement reasoning, exception steps, authorities);
reloading from it could never reproduce ``explain()`` byte for byte.
This module defines the *complete* encoding the ledger stores instead:
every field of every frozen dataclass, enums by their stable
``name``/``value``, rendered as compact sorted-key JSON so two equal
rulings always serialize to identical bytes and a persisted ruling
decodes to an object that compares equal to — and explains identically
to — the one the engine produced.

Fingerprints are flat tuples of primitives (``str``/``bool``/``None``;
see :mod:`repro.core.fingerprint`), which JSON round-trips exactly, so
they are stored as a JSON array.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.core.enums import ExceptionKind, LegalSource, ProcessKind
from repro.core.fingerprint import ActionFingerprint
from repro.core.ruling import (
    AppliedException,
    PrivacyFinding,
    ReasoningStep,
    Requirement,
    Ruling,
)

if TYPE_CHECKING:  # imported only for annotations; avoids module cycles
    from repro.court.docket import IssuedProcess
    from repro.evidence.custody import CustodyEntry


def _canonical(payload: object) -> str:
    """Compact, sorted-key JSON — the ledger's canonical text form."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


# -- fingerprints ----------------------------------------------------------------


def fingerprint_to_json(fingerprint: ActionFingerprint) -> str:
    """Encode a fingerprint tuple as a JSON array."""
    return _canonical(list(fingerprint))


def fingerprint_from_json(text: str) -> ActionFingerprint:
    """Decode a stored fingerprint back to the tuple the cache keys on."""
    return tuple(json.loads(text))


# -- reasoning steps -------------------------------------------------------------


def _step_to_dict(step: ReasoningStep) -> dict:
    return {
        "source": step.source.name,
        "text": step.text,
        "authorities": list(step.authorities),
    }


def _step_from_dict(payload: dict) -> ReasoningStep:
    return ReasoningStep(
        source=LegalSource[payload["source"]],
        text=payload["text"],
        authorities=tuple(payload["authorities"]),
    )


# -- rulings ---------------------------------------------------------------------


def ruling_to_dict(ruling: Ruling) -> dict:
    """The complete JSON-serializable encoding of a ruling."""
    return {
        "required_process": ruling.required_process.name,
        "requirements": [
            {
                "source": requirement.source.name,
                "process": requirement.process.name,
                "steps": [_step_to_dict(s) for s in requirement.steps],
            }
            for requirement in ruling.requirements
        ],
        "exceptions": [
            {
                "kind": exception.kind.name,
                "eliminates": sorted(
                    source.name for source in exception.eliminates
                ),
                "step": _step_to_dict(exception.step),
            }
            for exception in ruling.exceptions
        ],
        "privacy": {
            "subjective_expectation": ruling.privacy.subjective_expectation,
            "objectively_reasonable": ruling.privacy.objectively_reasonable,
            "steps": [_step_to_dict(s) for s in ruling.privacy.steps],
        },
        "steps": [_step_to_dict(s) for s in ruling.steps],
    }


def ruling_from_dict(payload: dict) -> Ruling:
    """Rebuild a :class:`Ruling` that compares equal to the original."""
    return Ruling(
        required_process=ProcessKind[payload["required_process"]],
        requirements=tuple(
            Requirement(
                source=LegalSource[item["source"]],
                process=ProcessKind[item["process"]],
                steps=tuple(_step_from_dict(s) for s in item["steps"]),
            )
            for item in payload["requirements"]
        ),
        exceptions=tuple(
            AppliedException(
                kind=ExceptionKind[item["kind"]],
                eliminates=frozenset(
                    LegalSource[name] for name in item["eliminates"]
                ),
                step=_step_from_dict(item["step"]),
            )
            for item in payload["exceptions"]
        ),
        privacy=PrivacyFinding(
            subjective_expectation=(
                payload["privacy"]["subjective_expectation"]
            ),
            objectively_reasonable=(
                payload["privacy"]["objectively_reasonable"]
            ),
            steps=tuple(
                _step_from_dict(s) for s in payload["privacy"]["steps"]
            ),
        ),
        steps=tuple(_step_from_dict(s) for s in payload["steps"]),
    )


def ruling_to_json(ruling: Ruling) -> str:
    """Canonical JSON text for a ruling (equal rulings → equal bytes)."""
    return _canonical(ruling_to_dict(ruling))


def ruling_from_json(text: str) -> Ruling:
    """Decode :func:`ruling_to_json` output."""
    return ruling_from_dict(json.loads(text))


# -- instruments and custody -----------------------------------------------------
#
# Process-global ids (``instrument_id``, ``evidence_id``) are
# deliberately excluded from the canonical forms: they are allocated by
# per-process ``itertools.count`` counters and would differ on every
# reload.  Identity in the ledger comes from caller-supplied string
# keys instead.


def instrument_to_dict(instrument: "IssuedProcess") -> dict:
    """Canonical encoding of an issued instrument (id excluded)."""
    return {
        "kind": instrument.kind.name,
        "issued_to": instrument.issued_to,
        "issued_at": instrument.issued_at,
        "expires_at": instrument.expires_at,
        "scope": instrument.scope,
        "revoked": instrument.revoked,
    }


def instrument_from_dict(payload: dict) -> "IssuedProcess":
    """Rebuild an instrument (with a fresh process-local id)."""
    from repro.court.docket import IssuedProcess

    return IssuedProcess(
        kind=ProcessKind[payload["kind"]],
        issued_to=payload["issued_to"],
        issued_at=payload["issued_at"],
        expires_at=payload["expires_at"],
        scope=payload["scope"],
        revoked=payload["revoked"],
    )


def custody_entry_to_dict(entry: "CustodyEntry") -> dict:
    """Canonical encoding of one custody event."""
    return {
        "timestamp": entry.timestamp,
        "custodian": entry.custodian,
        "event": entry.event,
        "content_hash": entry.content_hash,
    }


def custody_entry_from_dict(payload: dict) -> "CustodyEntry":
    """Decode :func:`custody_entry_to_dict` output."""
    from repro.evidence.custody import CustodyEntry

    return CustodyEntry(
        timestamp=payload["timestamp"],
        custodian=payload["custodian"],
        event=payload["event"],
        content_hash=payload["content_hash"],
    )


def canonical_json(payload: object) -> str:
    """Public canonical-JSON renderer (sorted keys, compact)."""
    return _canonical(payload)


def reasoning_text(ruling: Ruling) -> str:
    """The flattened reasoning trace as one searchable document.

    One line per step, rendered exactly as ``explain()`` renders it
    (``(source) text [cites]``), so full-text queries match what a
    human reads in the trace.
    """
    return "\n".join(str(step) for step in ruling.steps)


def citation_keys(ruling: Ruling) -> tuple[str, ...]:
    """Every authority key the ruling's trace cites, sorted and unique."""
    keys: set[str] = set()
    for step in ruling.steps:
        keys.update(step.authorities)
    return tuple(sorted(keys))
