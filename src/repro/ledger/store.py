"""The :class:`Ledger`: durable, queryable legal records over SQLite.

One ledger file outlives every process that wrote to it.  It persists
the four record families the reproduction produces — rulings (keyed by
canonical action fingerprint), dockets and their issued instruments,
suppression outcomes, and chains of custody — and answers indexed
questions about them (:mod:`repro.ledger.queries`) plus full-text
search over reasoning traces.

Design notes:

* **Idempotent writes.**  Every record family has a natural string key
  (fingerprint digest, docket key, instrument key, item key, evidence
  key); re-recording the same fact is a cheap no-op, so pipelines can
  persist at every boundary without bookkeeping.
* **Canonical documents + indexed columns.**  Rulings are stored as
  canonical JSON (:mod:`repro.ledger.serialize`) for byte-exact reload,
  alongside the columns queries filter on.  Equal rulings always write
  identical bytes.
* **Portability.**  The schema (:mod:`repro.ledger.schema`) sticks to
  the SQL core; the one SQLite-only structure (FTS5) is feature-gated
  and degrades to an ``instr`` scan when the module is absent.
"""

from __future__ import annotations

import dataclasses
import sqlite3
from collections.abc import Iterator
from pathlib import Path

from repro.core.fingerprint import ActionFingerprint, fingerprint_digest
from repro.core.ruling import Ruling
from repro.court.docket import Docket, IssuedProcess
from repro.evidence.custody import ChainOfCustody, CustodyEntry
from repro.ledger import schema
from repro.ledger.serialize import (
    citation_keys,
    custody_entry_from_dict,
    fingerprint_from_json,
    fingerprint_to_json,
    instrument_from_dict,
    instrument_to_dict,
    reasoning_text,
    ruling_from_json,
    ruling_to_json,
)


class LedgerError(Exception):
    """Raised on ledger misuse (closed handle, bad migration state)."""


@dataclasses.dataclass
class LedgerStats:
    """Write/read counters for one :class:`Ledger` handle.

    Attributes:
        ruling_writes: Fresh rulings inserted.
        ruling_duplicates: Ruling writes skipped as already present.
        ruling_reads: Rulings reloaded by fingerprint.
        primed_rulings: Rulings streamed out to warm a cache.
        docket_writes: Docket upserts.
        instrument_writes: Instrument upserts.
        custody_writes: Custody chains recorded (entries included).
        suppression_writes: Suppression outcomes recorded.
    """

    ruling_writes: int = 0
    ruling_duplicates: int = 0
    ruling_reads: int = 0
    primed_rulings: int = 0
    docket_writes: int = 0
    instrument_writes: int = 0
    custody_writes: int = 0
    suppression_writes: int = 0

    def to_dict(self) -> dict:
        """JSON-serializable view of the counters."""
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class CustodyRecord:
    """One reloaded chain of custody."""

    item_key: str
    description: str
    content_hash: str
    entries: tuple[CustodyEntry, ...]


@dataclasses.dataclass(frozen=True)
class SuppressionRecord:
    """One reloaded suppression outcome."""

    evidence_key: str
    fingerprint_digest: str
    outcome: str
    reason: str
    run_label: str


def _fts_available(connection: sqlite3.Connection) -> bool:
    """Whether the linked SQLite can create FTS5 virtual tables."""
    try:
        connection.execute(
            "CREATE VIRTUAL TABLE temp.__fts_probe USING fts5(x)"
        )
    except sqlite3.OperationalError:
        return False
    connection.execute("DROP TABLE temp.__fts_probe")
    return True


class Ledger:
    """A SQLite-backed persistent store for legal records.

    Args:
        path: Database file, or ``":memory:"`` for an ephemeral ledger
            (useful in tests and as a null-cost default).

    The constructor opens the database and migrates it to
    :data:`~repro.ledger.schema.SCHEMA_VERSION` via the
    ``PRAGMA user_version`` runner; an already-migrated file is opened
    as-is, and a file from a *newer* schema is refused rather than
    guessed at.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._connection: sqlite3.Connection | None = sqlite3.connect(
            self.path
        )
        self._connection.row_factory = sqlite3.Row
        self._connection.execute("PRAGMA foreign_keys = ON")
        self.stats = LedgerStats()
        self.fts_enabled = _fts_available(self._connection)
        self._migrate()

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> Ledger:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Commit and release the underlying connection (idempotent)."""
        if self._connection is not None:
            self._connection.commit()
            self._connection.close()
            self._connection = None

    @property
    def _db(self) -> sqlite3.Connection:
        if self._connection is None:
            raise LedgerError("ledger is closed")
        return self._connection

    # -- migrations --------------------------------------------------------------

    @property
    def schema_version(self) -> int:
        """The database's current ``PRAGMA user_version``."""
        row = self._db.execute("PRAGMA user_version").fetchone()
        return int(row[0])

    def _migrate(self) -> None:
        current = self.schema_version
        target = schema.SCHEMA_VERSION
        if current > target:
            raise LedgerError(
                f"ledger {self.path!r} is at schema version {current}, "
                f"newer than this build's {target}; refusing to open"
            )
        for version, statements, requires_fts in schema.MIGRATIONS:
            if version <= current:
                continue
            if requires_fts and not self.fts_enabled:
                # The FTS migration is optional capability, not core
                # schema: stamp the version so the runner stays linear,
                # and let search fall back to the portable scan.
                self._db.execute(f"PRAGMA user_version = {version}")
                self._db.commit()
                continue
            for statement in statements:
                self._db.execute(statement)
            self._db.execute(f"PRAGMA user_version = {version}")
            self._db.commit()

    # -- rulings -----------------------------------------------------------------

    def record_ruling(
        self, fingerprint: ActionFingerprint, ruling: Ruling
    ) -> bool:
        """Persist one ruling under its fingerprint.

        Returns:
            ``True`` if a new row was written, ``False`` if an
            equal-fingerprint ruling was already on file (the ruling is
            deterministic per fingerprint, so the stored bytes are
            already correct and the write is skipped).
        """
        digest = fingerprint_digest(fingerprint)
        db = self._db
        cursor = db.execute(
            """
            INSERT INTO rulings (
                fingerprint_digest, fingerprint_json, required_process,
                needs_process, ruling_json, reasoning_text
            ) VALUES (?, ?, ?, ?, ?, ?)
            ON CONFLICT (fingerprint_digest) DO NOTHING
            """,
            (
                digest,
                fingerprint_to_json(fingerprint),
                ruling.required_process.name,
                int(ruling.needs_process),
                ruling_to_json(ruling),
                reasoning_text(ruling),
            ),
        )
        if cursor.rowcount == 0:
            self.stats.ruling_duplicates += 1
            return False
        ruling_id = cursor.lastrowid
        db.executemany(
            "INSERT INTO ruling_citations (ruling_id, authority_key) "
            "VALUES (?, ?)",
            [(ruling_id, key) for key in citation_keys(ruling)],
        )
        if self.fts_enabled:
            db.execute(
                "INSERT INTO ruling_fts (rowid, reasoning) VALUES (?, ?)",
                (ruling_id, reasoning_text(ruling)),
            )
        self.stats.ruling_writes += 1
        return True

    def ruling_for(
        self, fingerprint: ActionFingerprint
    ) -> Ruling | None:
        """Reload the persisted ruling for a fingerprint, or ``None``."""
        return self.ruling_for_digest(fingerprint_digest(fingerprint))

    def ruling_for_digest(self, digest: str) -> Ruling | None:
        """Reload a ruling by its fingerprint digest, or ``None``."""
        row = self._db.execute(
            "SELECT ruling_json FROM rulings WHERE fingerprint_digest = ?",
            (digest,),
        ).fetchone()
        if row is None:
            return None
        self.stats.ruling_reads += 1
        return ruling_from_json(row["ruling_json"])

    def iter_rulings(
        self, limit: int | None = None
    ) -> Iterator[tuple[ActionFingerprint, Ruling]]:
        """Stream ``(fingerprint, ruling)`` pairs for cache priming.

        Ordered by fingerprint digest, so iteration order is a pure
        function of ledger *content* — two ledgers holding the same
        rulings stream identically no matter what order the rows
        arrived in.
        """
        sql = (
            "SELECT fingerprint_json, ruling_json FROM rulings "
            "ORDER BY fingerprint_digest"
        )
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        for row in self._db.execute(sql):
            self.stats.primed_rulings += 1
            yield (
                fingerprint_from_json(row["fingerprint_json"]),
                ruling_from_json(row["ruling_json"]),
            )

    # -- dockets and instruments -------------------------------------------------

    def record_docket(self, docket_key: str, docket: Docket) -> None:
        """Upsert a docket's application counters under a stable key."""
        self._db.execute(
            """
            INSERT INTO dockets (
                docket_key, applications_received, applications_denied
            ) VALUES (?, ?, ?)
            ON CONFLICT (docket_key) DO UPDATE SET
                applications_received = excluded.applications_received,
                applications_denied = excluded.applications_denied
            """,
            (
                docket_key,
                docket.applications_received,
                docket.applications_denied,
            ),
        )
        self.stats.docket_writes += 1

    def record_instrument(
        self,
        instrument_key: str,
        instrument: IssuedProcess,
        docket_key: str | None = None,
    ) -> None:
        """Upsert one issued instrument, optionally filed on a docket."""
        docket_id = None
        if docket_key is not None:
            row = self._db.execute(
                "SELECT id FROM dockets WHERE docket_key = ?", (docket_key,)
            ).fetchone()
            docket_id = row["id"] if row is not None else None
        payload = instrument_to_dict(instrument)
        self._db.execute(
            """
            INSERT INTO instruments (
                instrument_key, docket_id, kind, issued_to,
                issued_at, expires_at, scope, revoked
            ) VALUES (?, ?, ?, ?, ?, ?, ?, ?)
            ON CONFLICT (instrument_key) DO UPDATE SET
                docket_id = excluded.docket_id,
                kind = excluded.kind,
                issued_to = excluded.issued_to,
                issued_at = excluded.issued_at,
                expires_at = excluded.expires_at,
                scope = excluded.scope,
                revoked = excluded.revoked
            """,
            (
                instrument_key,
                docket_id,
                payload["kind"],
                payload["issued_to"],
                payload["issued_at"],
                payload["expires_at"],
                payload["scope"],
                int(payload["revoked"]),
            ),
        )
        self.stats.instrument_writes += 1

    def instrument_for(self, instrument_key: str) -> IssuedProcess | None:
        """Reload one instrument (with a fresh process-local id)."""
        row = self._db.execute(
            "SELECT kind, issued_to, issued_at, expires_at, scope, revoked "
            "FROM instruments WHERE instrument_key = ?",
            (instrument_key,),
        ).fetchone()
        if row is None:
            return None
        return instrument_from_dict(
            {
                "kind": row["kind"],
                "issued_to": row["issued_to"],
                "issued_at": row["issued_at"],
                "expires_at": row["expires_at"],
                "scope": row["scope"],
                "revoked": bool(row["revoked"]),
            }
        )

    # -- custody -----------------------------------------------------------------

    def record_custody(
        self, item_key: str, chain: ChainOfCustody
    ) -> None:
        """Persist a full chain of custody under a stable item key.

        Re-recording replaces the stored entries wholesale — the chain
        object is the source of truth and only ever grows, so the
        replace is monotone.
        """
        db = self._db
        db.execute(
            """
            INSERT INTO custody_chains (item_key, description, content_hash)
            VALUES (?, ?, ?)
            ON CONFLICT (item_key) DO UPDATE SET
                description = excluded.description,
                content_hash = excluded.content_hash
            """,
            (item_key, chain.item.description, chain.item.content_hash),
        )
        row = db.execute(
            "SELECT id FROM custody_chains WHERE item_key = ?", (item_key,)
        ).fetchone()
        chain_id = row["id"]
        db.execute(
            "DELETE FROM custody_entries WHERE chain_id = ?", (chain_id,)
        )
        db.executemany(
            """
            INSERT INTO custody_entries (
                chain_id, seq, timestamp, custodian, event, content_hash
            ) VALUES (?, ?, ?, ?, ?, ?)
            """,
            [
                (
                    chain_id,
                    seq,
                    entry.timestamp,
                    entry.custodian,
                    entry.event,
                    entry.content_hash,
                )
                for seq, entry in enumerate(chain.entries)
            ],
        )
        self.stats.custody_writes += 1

    def custody_for(self, item_key: str) -> CustodyRecord | None:
        """Reload one chain of custody, or ``None``."""
        row = self._db.execute(
            "SELECT id, description, content_hash FROM custody_chains "
            "WHERE item_key = ?",
            (item_key,),
        ).fetchone()
        if row is None:
            return None
        entries = tuple(
            custody_entry_from_dict(
                {
                    "timestamp": entry["timestamp"],
                    "custodian": entry["custodian"],
                    "event": entry["event"],
                    "content_hash": entry["content_hash"],
                }
            )
            for entry in self._db.execute(
                "SELECT timestamp, custodian, event, content_hash "
                "FROM custody_entries WHERE chain_id = ? ORDER BY seq",
                (row["id"],),
            )
        )
        return CustodyRecord(
            item_key=item_key,
            description=row["description"],
            content_hash=row["content_hash"],
            entries=entries,
        )

    # -- suppression outcomes ----------------------------------------------------

    def record_suppression(
        self,
        evidence_key: str,
        fingerprint: ActionFingerprint,
        outcome: str,
        reason: str = "",
        run_label: str = "",
    ) -> None:
        """Persist one evidence item's suppression-hearing outcome."""
        self._db.execute(
            """
            INSERT INTO suppression_outcomes (
                evidence_key, fingerprint_digest, outcome, reason, run_label
            ) VALUES (?, ?, ?, ?, ?)
            ON CONFLICT (evidence_key) DO UPDATE SET
                fingerprint_digest = excluded.fingerprint_digest,
                outcome = excluded.outcome,
                reason = excluded.reason,
                run_label = excluded.run_label
            """,
            (
                evidence_key,
                fingerprint_digest(fingerprint),
                outcome,
                reason,
                run_label,
            ),
        )
        self.stats.suppression_writes += 1

    def suppression_for(self, evidence_key: str) -> SuppressionRecord | None:
        """Reload one suppression outcome, or ``None``."""
        row = self._db.execute(
            "SELECT evidence_key, fingerprint_digest, outcome, reason, "
            "run_label FROM suppression_outcomes WHERE evidence_key = ?",
            (evidence_key,),
        ).fetchone()
        if row is None:
            return None
        return SuppressionRecord(
            evidence_key=row["evidence_key"],
            fingerprint_digest=row["fingerprint_digest"],
            outcome=row["outcome"],
            reason=row["reason"],
            run_label=row["run_label"],
        )

    # -- maintenance -------------------------------------------------------------

    def commit(self) -> None:
        """Flush pending writes to the file."""
        self._db.commit()

    def counts(self) -> dict[str, int]:
        """Row counts per record family."""
        db = self._db
        return {
            table: db.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            for table in (
                "rulings",
                "ruling_citations",
                "dockets",
                "instruments",
                "custody_chains",
                "custody_entries",
                "suppression_outcomes",
            )
        }

    def describe(self) -> dict:
        """Stats payload for ``repro ledger stats`` (JSON-serializable)."""
        db = self._db
        page_count = db.execute("PRAGMA page_count").fetchone()[0]
        page_size = db.execute("PRAGMA page_size").fetchone()[0]
        return {
            "path": self.path,
            "schema_version": self.schema_version,
            "schema_digest": schema.schema_digest(),
            "fts_enabled": self.fts_enabled,
            "size_bytes": page_count * page_size,
            "counts": self.counts(),
            "session_stats": self.stats.to_dict(),
        }

    def vacuum(self) -> int:
        """Commit, ``VACUUM``, and return the database size in bytes."""
        db = self._db
        db.commit()
        db.execute("VACUUM")
        page_count = db.execute("PRAGMA page_count").fetchone()[0]
        page_size = db.execute("PRAGMA page_size").fetchone()[0]
        return page_count * page_size
