"""The ledger's relational schema, as explicit DDL.

Every table is written in the portable core of SQL — ``TEXT`` /
``INTEGER`` / ``REAL`` columns, declared primary and foreign keys,
ordinary secondary indexes — so the schema is a drop-in for Postgres:
nothing below uses a SQLite-only type, ``AUTOINCREMENT``, partial
indexes, or expression defaults.  The single deliberate exception is the
FTS5 full-text index over ruling reasoning traces, which is isolated in
its own migration and consulted only behind
:data:`~repro.ledger.store.Ledger.fts_enabled` (a Postgres port swaps it
for a ``tsvector`` column and a GIN index; see ``docs/ledger.md``).

Migrations are append-only: each entry in :data:`MIGRATIONS` carries the
``PRAGMA user_version`` it upgrades the database *to* and the statements
that get it there.  :func:`schema_digest` hashes the full DDL text so
golden fixtures can fail loudly when the schema drifts.
"""

from __future__ import annotations

import hashlib

#: The schema version a fully migrated database reports via
#: ``PRAGMA user_version``.
SCHEMA_VERSION = 2

#: Version 1: the relational core.  Rulings are stored twice over — a
#: canonical JSON document for byte-exact reload, plus the indexed
#: columns queries filter on — and citations are exploded into a join
#: table so "all rulings citing §2703" is one indexed lookup.
_V1_STATEMENTS: tuple[str, ...] = (
    """
    CREATE TABLE rulings (
        id INTEGER PRIMARY KEY,
        fingerprint_digest TEXT NOT NULL UNIQUE,
        fingerprint_json TEXT NOT NULL,
        required_process TEXT NOT NULL,
        needs_process INTEGER NOT NULL,
        ruling_json TEXT NOT NULL,
        reasoning_text TEXT NOT NULL
    )
    """,
    """
    CREATE INDEX idx_rulings_required_process
        ON rulings (required_process)
    """,
    """
    CREATE TABLE ruling_citations (
        ruling_id INTEGER NOT NULL REFERENCES rulings (id),
        authority_key TEXT NOT NULL,
        PRIMARY KEY (ruling_id, authority_key)
    )
    """,
    """
    CREATE INDEX idx_citations_authority
        ON ruling_citations (authority_key)
    """,
    """
    CREATE TABLE dockets (
        id INTEGER PRIMARY KEY,
        docket_key TEXT NOT NULL UNIQUE,
        applications_received INTEGER NOT NULL,
        applications_denied INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE instruments (
        id INTEGER PRIMARY KEY,
        instrument_key TEXT NOT NULL UNIQUE,
        docket_id INTEGER REFERENCES dockets (id),
        kind TEXT NOT NULL,
        issued_to TEXT NOT NULL,
        issued_at REAL NOT NULL,
        expires_at REAL NOT NULL,
        scope TEXT NOT NULL,
        revoked INTEGER NOT NULL
    )
    """,
    """
    CREATE INDEX idx_instruments_docket ON instruments (docket_id)
    """,
    """
    CREATE INDEX idx_instruments_holder ON instruments (issued_to)
    """,
    """
    CREATE TABLE custody_chains (
        id INTEGER PRIMARY KEY,
        item_key TEXT NOT NULL UNIQUE,
        description TEXT NOT NULL,
        content_hash TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE custody_entries (
        chain_id INTEGER NOT NULL REFERENCES custody_chains (id),
        seq INTEGER NOT NULL,
        timestamp REAL NOT NULL,
        custodian TEXT NOT NULL,
        event TEXT NOT NULL,
        content_hash TEXT NOT NULL,
        PRIMARY KEY (chain_id, seq)
    )
    """,
    """
    CREATE TABLE suppression_outcomes (
        id INTEGER PRIMARY KEY,
        evidence_key TEXT NOT NULL UNIQUE,
        fingerprint_digest TEXT NOT NULL,
        outcome TEXT NOT NULL,
        reason TEXT NOT NULL,
        run_label TEXT NOT NULL
    )
    """,
    """
    CREATE INDEX idx_suppression_fingerprint
        ON suppression_outcomes (fingerprint_digest)
    """,
    """
    CREATE INDEX idx_suppression_outcome
        ON suppression_outcomes (outcome)
    """,
)

#: Version 2: full-text search over reasoning traces.  SQLite-only
#: (FTS5); applied only when the linked SQLite has the module compiled
#: in, and the store degrades to an indexed ``LIKE`` scan without it.
#: External-content mode keeps the reasoning text single-sourced in
#: ``rulings``; the backfill covers rows recorded under version 1.
_V2_STATEMENTS: tuple[str, ...] = (
    """
    CREATE VIRTUAL TABLE ruling_fts USING fts5(
        reasoning,
        content='rulings',
        content_rowid='id'
    )
    """,
    """
    INSERT INTO ruling_fts (rowid, reasoning)
        SELECT id, reasoning_text FROM rulings
    """,
)

#: ``(target user_version, statements, requires_fts)`` triples, in
#: ascending version order.  The runner in :mod:`repro.ledger.store`
#: applies each pending entry inside one transaction and stamps
#: ``PRAGMA user_version`` with the target.
MIGRATIONS: tuple[tuple[int, tuple[str, ...], bool], ...] = (
    (1, _V1_STATEMENTS, False),
    (2, _V2_STATEMENTS, True),
)


def full_ddl() -> str:
    """The complete DDL text, migrations concatenated in order."""
    chunks: list[str] = []
    for version, statements, requires_fts in MIGRATIONS:
        chunks.append(f"-- user_version {version}"
                      + (" (requires fts5)" if requires_fts else ""))
        chunks.extend(" ".join(stmt.split()) for stmt in statements)
    return "\n".join(chunks)


def schema_digest() -> str:
    """SHA-256 over the canonical DDL text.

    Pinned in ``tests/data/golden_ledger_queries.json``: any schema
    change — a new column, a reordered statement, a new migration —
    moves this digest and fails the golden-query fixture loudly, which
    is the cue to regenerate it deliberately.
    """
    return hashlib.sha256(full_ddl().encode("utf-8")).hexdigest()
