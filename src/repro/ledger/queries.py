"""Indexed and full-text queries over a persisted ledger.

The query layer answers the audit-at-scale questions the ROADMAP names —
"all rulings citing §2703 where suppression was granted" is
:func:`rulings_citing` with ``suppressed=True`` — without deserializing
ruling documents unless the caller asks for them.

Determinism: every query orders its results by fingerprint digest (a
pure function of ruling content), so the same ledger *contents* always
answer identically regardless of the order rows were inserted in.  The
FTS permutation property test pins this.
"""

from __future__ import annotations

import dataclasses

from repro.core.enums import ProcessKind
from repro.ledger.store import Ledger


@dataclasses.dataclass(frozen=True)
class RulingRow:
    """One ruling as a query result (document not deserialized)."""

    fingerprint_digest: str
    required_process: str
    needs_process: bool
    citations: tuple[str, ...]
    suppression_outcomes: tuple[str, ...]

    def to_dict(self) -> dict:
        """JSON-serializable view (what ``repro ledger query`` prints)."""
        return {
            "fingerprint_digest": self.fingerprint_digest,
            "required_process": self.required_process,
            "needs_process": self.needs_process,
            "citations": list(self.citations),
            "suppression_outcomes": list(self.suppression_outcomes),
        }


def _attach_details(ledger: Ledger, rows: list) -> list[RulingRow]:
    """Hydrate citation and suppression columns for matched rulings."""
    db = ledger._db  # query layer is a friend module of the store
    results: list[RulingRow] = []
    for row in rows:
        citations = tuple(
            c["authority_key"]
            for c in db.execute(
                "SELECT authority_key FROM ruling_citations "
                "WHERE ruling_id = ? ORDER BY authority_key",
                (row["id"],),
            )
        )
        outcomes = tuple(
            s["outcome"]
            for s in db.execute(
                "SELECT outcome FROM suppression_outcomes "
                "WHERE fingerprint_digest = ? ORDER BY outcome",
                (row["fingerprint_digest"],),
            )
        )
        results.append(
            RulingRow(
                fingerprint_digest=row["fingerprint_digest"],
                required_process=row["required_process"],
                needs_process=bool(row["needs_process"]),
                citations=citations,
                suppression_outcomes=outcomes,
            )
        )
    return results


def rulings_citing(
    ledger: Ledger,
    authority_key: str | None = None,
    required_process: ProcessKind | str | None = None,
    suppressed: bool | None = None,
    limit: int | None = None,
) -> list[RulingRow]:
    """Rulings filtered by citation, required process, and suppression.

    Args:
        ledger: The ledger to query.
        authority_key: Restrict to rulings whose trace cites this
            authority (e.g. ``"sca_2703"`` for 18 U.S.C. § 2703).
        required_process: Restrict to rulings demanding this process.
        suppressed: ``True`` keeps rulings with at least one
            granted-suppression outcome on file; ``False`` keeps
            rulings whose every outcome (if any) admitted the evidence;
            ``None`` ignores suppression entirely.
        limit: Cap on returned rows (after deterministic ordering).

    Returns:
        Matching rulings ordered by fingerprint digest.
    """
    clauses: list[str] = []
    params: list[object] = []
    if authority_key is not None:
        clauses.append(
            "r.id IN (SELECT ruling_id FROM ruling_citations "
            "WHERE authority_key = ?)"
        )
        params.append(authority_key)
    if required_process is not None:
        name = (
            required_process.name
            if isinstance(required_process, ProcessKind)
            else str(required_process)
        )
        clauses.append("r.required_process = ?")
        params.append(name)
    if suppressed is True:
        clauses.append(
            "r.fingerprint_digest IN (SELECT fingerprint_digest "
            "FROM suppression_outcomes WHERE outcome != 'admissible')"
        )
    elif suppressed is False:
        clauses.append(
            "r.fingerprint_digest NOT IN (SELECT fingerprint_digest "
            "FROM suppression_outcomes WHERE outcome != 'admissible')"
        )
    sql = (
        "SELECT r.id, r.fingerprint_digest, r.required_process, "
        "r.needs_process FROM rulings r"
    )
    if clauses:
        sql += " WHERE " + " AND ".join(clauses)
    sql += " ORDER BY r.fingerprint_digest"
    if limit is not None:
        sql += " LIMIT ?"
        params.append(int(limit))
    rows = ledger._db.execute(sql, params).fetchall()
    return _attach_details(ledger, rows)


def search_reasoning(
    ledger: Ledger, query: str, limit: int | None = None
) -> list[RulingRow]:
    """Full-text search over ruling reasoning traces.

    Uses the FTS5 index when the linked SQLite provides it; otherwise
    degrades to a portable substring scan (the query is then treated as
    a literal phrase, not FTS syntax).  Either way results are ordered
    by fingerprint digest, so both paths agree on membership ordering.
    """
    if ledger.fts_enabled:
        sql = (
            "SELECT r.id, r.fingerprint_digest, r.required_process, "
            "r.needs_process FROM rulings r "
            "WHERE r.id IN (SELECT rowid FROM ruling_fts WHERE ruling_fts "
            "MATCH ?) ORDER BY r.fingerprint_digest"
        )
        params: list[object] = [query]
    else:
        sql = (
            "SELECT r.id, r.fingerprint_digest, r.required_process, "
            "r.needs_process FROM rulings r "
            "WHERE instr(lower(r.reasoning_text), lower(?)) > 0 "
            "ORDER BY r.fingerprint_digest"
        )
        params = [query.strip('"')]
    if limit is not None:
        sql += " LIMIT ?"
        params.append(int(limit))
    rows = ledger._db.execute(sql, params).fetchall()
    return _attach_details(ledger, rows)


def process_histogram(ledger: Ledger) -> dict[str, int]:
    """Ruling counts per required process (all kinds present, 0-filled)."""
    histogram = {kind.name: 0 for kind in ProcessKind}
    for row in ledger._db.execute(
        "SELECT required_process, COUNT(*) AS n FROM rulings "
        "GROUP BY required_process"
    ):
        histogram[row["required_process"]] = row["n"]
    return histogram


def citation_histogram(
    ledger: Ledger, limit: int | None = None
) -> dict[str, int]:
    """How many persisted rulings cite each authority."""
    sql = (
        "SELECT authority_key, COUNT(*) AS n FROM ruling_citations "
        "GROUP BY authority_key ORDER BY n DESC, authority_key"
    )
    if limit is not None:
        sql += f" LIMIT {int(limit)}"
    return {
        row["authority_key"]: row["n"]
        for row in ledger._db.execute(sql)
    }


def suppression_histogram(ledger: Ledger) -> dict[str, int]:
    """Suppression outcomes by kind (admissible/suppressed/derivative)."""
    return {
        row["outcome"]: row["n"]
        for row in ledger._db.execute(
            "SELECT outcome, COUNT(*) AS n FROM suppression_outcomes "
            "GROUP BY outcome ORDER BY outcome"
        )
    }
