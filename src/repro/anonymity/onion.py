"""A Tor-like onion-routing network (paper section IV.B substrate).

The watermark analysis needs exactly three properties of Tor, all of which
this model preserves:

1. **content opacity** — an observer between hops cannot read payloads or
   link packets to flows by content (layered encryption);
2. **timing transparency** — per-hop forwarding adds random delay but the
   *rate shape* of a flow survives end to end, which is what a DSSS
   watermark exploits;
3. **endpoint observability** — traffic can be observed entering the
   network at the server side and leaving it at a candidate client's ISP,
   the two vantage points of the paper's "situation one".

Observation records are bare ``(timestamp, size)`` pairs: the observer
learns *when* bytes moved, never *what* they said — precisely the
non-content data a pen/trap order covers.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from typing import TYPE_CHECKING

from repro.faults.plan import FaultKind
from repro.netsim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faults.injector import FaultInjector


def _validate_loss_rate(loss_rate: float) -> None:
    """Reject loss rates outside [0, 1); total loss is a dead circuit."""
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError(f"loss_rate must be in [0, 1): got {loss_rate}")


@dataclasses.dataclass(frozen=True)
class CellObservation:
    """One observed cell: arrival time and size, nothing else."""

    timestamp: float
    size: int


class Relay:
    """One onion relay with a stochastic forwarding delay.

    Args:
        name: Relay label.
        base_delay: Mean processing/queueing delay per cell in seconds.
        jitter: Fractional jitter; actual delay is
            ``base_delay * (1 + Exp(jitter))`` so the tail is one-sided,
            like queueing delay.
    """

    def __init__(
        self,
        name: str,
        base_delay: float = 0.02,
        jitter: float = 0.5,
    ) -> None:
        if base_delay < 0:
            raise ValueError(f"negative base delay: {base_delay}")
        self.name = name
        self.base_delay = base_delay
        self.jitter = jitter
        self.cells_forwarded = 0

    def forwarding_delay(self, rng: random.Random) -> float:
        """Draw this relay's delay for one cell."""
        delay = self.base_delay
        if self.jitter > 0:
            delay += self.base_delay * rng.expovariate(1.0 / self.jitter)
        self.cells_forwarded += 1
        return delay


class Circuit:
    """One client's circuit through entry, middle(s), and exit relays.

    Cells may be injected at the server side (downstream, the direction
    the watermarker modulates) or the client side (upstream).  Each end
    keeps an observation log emulating a tap at that end's ISP.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        sim: Simulator,
        client: str,
        server: str,
        relays: list[Relay],
        rng: random.Random,
        link_delay: float = 0.01,
        loss_rate: float = 0.0,
        injector: "FaultInjector | None" = None,
    ) -> None:
        if not relays:
            raise ValueError("a circuit needs at least one relay")
        _validate_loss_rate(loss_rate)
        self.circuit_id = next(self._ids)
        self.sim = sim
        self.client = client
        self.server = server
        self.relays = list(relays)
        self.link_delay = link_delay
        self.loss_rate = loss_rate
        self.injector = injector
        self._rng = rng
        #: Cells observed leaving the server toward the network.
        self.server_side_log: list[CellObservation] = []
        #: Cells observed arriving at the client from the network.
        self.client_side_log: list[CellObservation] = []
        self.cells_sent = 0
        self.cells_lost = 0

    def path_length(self) -> int:
        """Number of relays in the circuit."""
        return len(self.relays)

    def _lost(self) -> bool:
        """Whether this cell is dropped somewhere along the path.

        Two independent sources: the circuit's uniform ``loss_rate``, and
        injected relay churn — a relay leaving the consensus mid-flow,
        which real Tor circuits experience far more burstily than uniform
        loss models.
        """
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.cells_lost += 1
            return True
        if self.injector is not None:
            # The target names the endpoints, not the process-global
            # circuit id, so replaying a seed reproduces the injection
            # log byte for byte.
            if self.injector.fires(
                FaultKind.RELAY_CHURN,
                target=f"circuit:{self.client}->{self.server}",
                time=self.sim.now,
            ):
                self.cells_lost += 1
                return True
        return False

    def send_downstream(self, size: int = 512) -> None:
        """Inject one cell at the server, bound for the client, now."""
        now = self.sim.now
        self.server_side_log.append(CellObservation(timestamp=now, size=size))
        self.cells_sent += 1
        if self._lost():
            return
        total = self.link_delay  # server -> exit
        for relay in reversed(self.relays):
            total += relay.forwarding_delay(self._rng) + self.link_delay
        self.sim.schedule(
            total,
            lambda: self.client_side_log.append(
                CellObservation(timestamp=self.sim.now, size=size)
            ),
        )

    def send_upstream(self, size: int = 512) -> None:
        """Inject one cell at the client, bound for the server, now."""
        now = self.sim.now
        self.client_side_log.append(CellObservation(timestamp=now, size=size))
        self.cells_sent += 1
        if self._lost():
            return
        total = self.link_delay
        for relay in self.relays:
            total += relay.forwarding_delay(self._rng) + self.link_delay
        self.sim.schedule(
            total,
            lambda: self.server_side_log.append(
                CellObservation(timestamp=self.sim.now, size=size)
            ),
        )

    def client_arrival_times(self) -> list[float]:
        """Timestamps of cells delivered to the client."""
        return [obs.timestamp for obs in self.client_side_log]

    def server_departure_times(self) -> list[float]:
        """Timestamps of cells leaving the server."""
        return [obs.timestamp for obs in self.server_side_log]


class OnionNetwork:
    """A population of relays from which circuits are built.

    Args:
        sim: The driving simulator.
        n_relays: Number of relays in the network.
        seed: Seed for relay selection and forwarding jitter.
        base_delay: Mean per-relay forwarding delay.
        jitter: Per-relay delay jitter fraction.
        link_delay: Inter-hop propagation delay.
    """

    def __init__(
        self,
        sim: Simulator,
        n_relays: int = 20,
        seed: int = 0,
        base_delay: float = 0.02,
        jitter: float = 0.5,
        link_delay: float = 0.01,
        loss_rate: float = 0.0,
        injector: "FaultInjector | None" = None,
    ) -> None:
        if n_relays < 1:
            raise ValueError("need at least one relay")
        _validate_loss_rate(loss_rate)
        self.sim = sim
        self._rng = random.Random(seed)
        self.link_delay = link_delay
        self.loss_rate = loss_rate
        self.injector = injector
        self.relays = [
            Relay(f"relay-{i}", base_delay=base_delay, jitter=jitter)
            for i in range(n_relays)
        ]
        self.circuits: list[Circuit] = []

    def build_circuit(
        self, client: str, server: str, n_hops: int = 3
    ) -> Circuit:
        """Build a circuit through ``n_hops`` distinct random relays.

        Raises:
            ValueError: If the network has fewer than ``n_hops`` relays.
        """
        if n_hops > len(self.relays):
            raise ValueError(
                f"cannot pick {n_hops} distinct relays from "
                f"{len(self.relays)}"
            )
        chosen = self._rng.sample(self.relays, n_hops)
        circuit = Circuit(
            sim=self.sim,
            client=client,
            server=server,
            relays=chosen,
            rng=self._rng,
            link_delay=self.link_delay,
            loss_rate=self.loss_rate,
            injector=self.injector,
        )
        self.circuits.append(circuit)
        return circuit


class RotatingChannel:
    """A client whose traffic hops between circuits over time.

    Tor rotates circuits periodically; a flow watermark embedded across a
    rotation sees its network delay change abruptly when the path
    switches, which stresses the detector's single-offset assumption.
    The channel exposes the same ``send_downstream``/``sim`` interface as
    a circuit, switching the underlying circuit every
    ``rotation_interval`` seconds of simulation time.
    """

    def __init__(
        self,
        circuits: list[Circuit],
        rotation_interval: float,
    ) -> None:
        if not circuits:
            raise ValueError("at least one circuit is required")
        if rotation_interval <= 0:
            raise ValueError("rotation_interval must be positive")
        first = circuits[0]
        if any(c.client != first.client for c in circuits):
            raise ValueError("all circuits must serve the same client")
        self.circuits = list(circuits)
        self.rotation_interval = rotation_interval
        self.sim = first.sim
        self.rotations = 0
        self._last_index = 0

    def _current(self) -> Circuit:
        index = int(self.sim.now / self.rotation_interval) % len(
            self.circuits
        )
        if index != self._last_index:
            self.rotations += 1
            self._last_index = index
        return self.circuits[index]

    def send_downstream(self, size: int = 512) -> None:
        """Send on whichever circuit is active right now."""
        self._current().send_downstream(size)

    def client_arrival_times(self) -> list[float]:
        """Merged client-side arrivals across every circuit."""
        merged = [
            t for circuit in self.circuits
            for t in circuit.client_arrival_times()
        ]
        return sorted(merged)


class HiddenService:
    """A server reachable only through the onion network (Table 1 scene 12).

    The hidden service is, for SCA purposes, a provider: investigating it
    means compelling a provider, which needs process.  This class exists
    so examples and the investigation pipeline can model that scene; the
    content store is deliberately simple.
    """

    def __init__(self, network: OnionNetwork, name: str) -> None:
        self.network = network
        self.name = name
        self.accounts: dict[str, list[str]] = {}

    def register_account(self, account: str) -> None:
        """Create a user account on the hidden service."""
        self.accounts.setdefault(account, [])

    def store(self, account: str, item: str) -> None:
        """Store an item (e.g. a download record) under an account."""
        if account not in self.accounts:
            raise KeyError(f"unknown account: {account!r}")
        self.accounts[account].append(item)

    def connect(self, client: str, n_hops: int = 3) -> Circuit:
        """Open a circuit from a client to this hidden service."""
        return self.network.build_circuit(client, self.name, n_hops=n_hops)
