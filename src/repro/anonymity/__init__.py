"""Anonymity-system substrates: onion routing, a proxy, and F2F P2P.

These are the systems the paper's section IV techniques attack: a Tor-like
onion network and an Anonymizer-like proxy (for the DSSS watermark of
IV.B) and a OneSwarm-like friend-to-friend filesharing overlay (for the
timing attack of IV.A).
"""

from repro.anonymity.mixes import (
    MixStrategy,
    NoMix,
    PoolMix,
    ThresholdMix,
    TimedMix,
)
from repro.anonymity.mixnet import AnonymizerProxy, ProxySession
from repro.anonymity.onion import (
    CellObservation,
    Circuit,
    HiddenService,
    OnionNetwork,
    Relay,
    RotatingChannel,
)
from repro.anonymity.p2p import (
    P2POverlay,
    Peer,
    ResponseRecord,
    TimingParameters,
)

__all__ = [
    "AnonymizerProxy",
    "CellObservation",
    "Circuit",
    "HiddenService",
    "MixStrategy",
    "NoMix",
    "OnionNetwork",
    "P2POverlay",
    "Peer",
    "PoolMix",
    "ProxySession",
    "Relay",
    "ResponseRecord",
    "RotatingChannel",
    "ThresholdMix",
    "TimedMix",
    "TimingParameters",
]
