"""A OneSwarm-like friend-to-friend anonymous filesharing overlay.

Substrate for the paper's section IV.A analysis (the Prusty/Levine/
Liberatore CCS 2011 investigation).  The overlay reproduces the properties
their timing attack exploits:

* queries flood hop-by-hop over *friend* edges only, so an investigator
  who joins sees nothing but its direct neighbours;
* a peer that **has** the file answers after a short lookup delay;
* a peer that **forwards** adds a deliberately randomized per-hop
  forwarding delay (OneSwarm's timing defence), and the response returns
  along the reverse path, accumulating delay at every hop;
* consequently the response-time distribution of a *source* neighbour is
  separated from that of a *forwarder* neighbour — the distinguishing
  signal of the attack — and everything the investigator measures is
  traffic the protocol voluntarily sends it (no legal process needed).
"""

from __future__ import annotations

import dataclasses
import itertools
import random

from repro.netsim.engine import Simulator


@dataclasses.dataclass(frozen=True)
class TimingParameters:
    """Delay model for the overlay, loosely following OneSwarm.

    All times are in seconds; each delay is drawn uniformly from its
    ``(lo, hi)`` range.

    Attributes:
        link_latency: One-way friend-link latency range.
        source_lookup: Delay for a peer to look up a file it has and
            answer.
        forward_delay: OneSwarm's artificial per-hop query-forwarding
            delay range (the timing defence).
        relay_response: Per-hop delay when relaying a response back.
    """

    link_latency: tuple[float, float] = (0.010, 0.050)
    source_lookup: tuple[float, float] = (0.020, 0.060)
    forward_delay: tuple[float, float] = (0.150, 0.300)
    relay_response: tuple[float, float] = (0.005, 0.015)

    def draw(self, rng: random.Random, which: str) -> float:
        """Draw one delay by range name."""
        lo, hi = getattr(self, which)
        return rng.uniform(lo, hi)


@dataclasses.dataclass(frozen=True)
class ResponseRecord:
    """One response observed by the querying peer.

    Attributes:
        neighbor: The *direct* neighbour that handed over the response
            (all the investigator can see in a F2F overlay).
        file_id: The file the response answers for.
        query_sent_at: When the query left the origin.
        arrived_at: When the response reached the origin.
        trial: Trial index the response belongs to.
    """

    neighbor: str
    file_id: str
    query_sent_at: float
    arrived_at: float
    trial: int

    @property
    def response_time(self) -> float:
        """Round-trip time from query emission to response arrival."""
        return self.arrived_at - self.query_sent_at


class Peer:
    """One overlay participant."""

    def __init__(self, name: str, files: set[str] | None = None) -> None:
        self.name = name
        self.files: set[str] = set(files or ())
        #: friend name -> one-way link latency in seconds
        self.friends: dict[str, float] = {}
        self.queries_seen: set[int] = set()
        self.queries_forwarded = 0
        self.responses_sent = 0

    def has_file(self, file_id: str) -> bool:
        """Whether this peer is a source for the file."""
        return file_id in self.files


class P2POverlay:
    """The friend-to-friend overlay network.

    Example::

        overlay = P2POverlay(seed=42)
        investigator = overlay.add_peer("le")
        suspect = overlay.add_peer("suspect", files={"contraband.jpg"})
        overlay.befriend("le", "suspect")
        records = overlay.query("le", "contraband.jpg", trials=10)
    """

    _query_ids = itertools.count(1)

    def __init__(
        self,
        seed: int = 0,
        timing: TimingParameters | None = None,
        sim: Simulator | None = None,
    ) -> None:
        self.sim = sim or Simulator()
        self._rng = random.Random(seed)
        self.timing = timing or TimingParameters()
        self.peers: dict[str, Peer] = {}

    def add_peer(self, name: str, files: set[str] | None = None) -> Peer:
        """Add a peer, optionally seeding it with files."""
        if name in self.peers:
            raise ValueError(f"duplicate peer: {name!r}")
        peer = Peer(name, files)
        self.peers[name] = peer
        return peer

    def befriend(
        self, a: str, b: str, latency: float | None = None
    ) -> None:
        """Create a friend edge with a (possibly drawn) link latency."""
        if a == b:
            raise ValueError("a peer cannot befriend itself")
        if latency is None:
            latency = self.timing.draw(self._rng, "link_latency")
        self.peers[a].friends[b] = latency
        self.peers[b].friends[a] = latency

    def random_topology(
        self,
        n_peers: int,
        mean_degree: float = 4.0,
        source_fraction: float = 0.1,
        file_id: str = "target-file",
        prefix: str = "peer",
    ) -> list[str]:
        """Build a random connected friend graph.

        Args:
            n_peers: Number of peers to create.
            mean_degree: Average number of friends per peer.
            source_fraction: Fraction of peers seeded with ``file_id``.
            file_id: The file sources hold.
            prefix: Peer-name prefix.

        Returns:
            Names of the peers that are sources of ``file_id``.
        """
        names = [f"{prefix}-{i}" for i in range(n_peers)]
        n_sources = max(1, round(n_peers * source_fraction))
        source_names = set(self._rng.sample(names, n_sources))
        for name in names:
            files = {file_id} if name in source_names else None
            self.add_peer(name, files)
        # A random spanning chain guarantees connectivity, then extra
        # random edges raise the mean degree.
        shuffled = names[:]
        self._rng.shuffle(shuffled)
        for left, right in zip(shuffled, shuffled[1:]):
            self.befriend(left, right)
        target_edges = int(n_peers * mean_degree / 2)
        attempts = 0
        edges = n_peers - 1
        while edges < target_edges and attempts < 20 * target_edges:
            attempts += 1
            a, b = self._rng.sample(names, 2)
            if b not in self.peers[a].friends:
                self.befriend(a, b)
                edges += 1
        return sorted(source_names)

    def query(
        self,
        origin: str,
        file_id: str,
        ttl: int = 5,
        trials: int = 1,
        inter_trial_gap: float = 5.0,
    ) -> list[ResponseRecord]:
        """Flood queries from ``origin`` and collect response records.

        Args:
            origin: The querying peer (the investigator).
            file_id: The file searched for.
            ttl: Maximum forwarding hops.
            trials: Number of independent query rounds.
            inter_trial_gap: Simulated seconds between rounds.

        Returns:
            Every response that reached the origin, tagged with the direct
            neighbour that delivered it.
        """
        if origin not in self.peers:
            raise KeyError(f"unknown peer: {origin!r}")
        records: list[ResponseRecord] = []
        for trial in range(trials):
            self.sim.schedule(
                trial * inter_trial_gap,
                lambda t=trial: self._start_query(
                    origin, file_id, ttl, t, records
                ),
            )
        self.sim.run()
        return records

    # -- internal mechanics ----------------------------------------------------

    def _start_query(
        self,
        origin: str,
        file_id: str,
        ttl: int,
        trial: int,
        records: list[ResponseRecord],
    ) -> None:
        query_id = next(self._query_ids)
        sent_at = self.sim.now
        origin_peer = self.peers[origin]
        origin_peer.queries_seen.add(query_id)
        for friend, latency in origin_peer.friends.items():
            self.sim.schedule(
                latency,
                lambda f=friend: self._handle_query(
                    peer_name=f,
                    query_id=query_id,
                    file_id=file_id,
                    ttl=ttl,
                    path=(origin, f),
                    sent_at=sent_at,
                    trial=trial,
                    records=records,
                ),
            )

    def _handle_query(
        self,
        peer_name: str,
        query_id: int,
        file_id: str,
        ttl: int,
        path: tuple[str, ...],
        sent_at: float,
        trial: int,
        records: list[ResponseRecord],
    ) -> None:
        peer = self.peers[peer_name]
        if query_id in peer.queries_seen:
            return
        peer.queries_seen.add(query_id)

        if peer.has_file(file_id):
            lookup = self.timing.draw(self._rng, "source_lookup")
            self.sim.schedule(
                lookup,
                lambda: self._send_response(
                    path, file_id, sent_at, trial, records
                ),
            )
            peer.responses_sent += 1
            return

        if ttl <= 1:
            return
        forward_delay = self.timing.draw(self._rng, "forward_delay")
        for friend, latency in peer.friends.items():
            if friend in path:
                continue
            peer.queries_forwarded += 1
            self.sim.schedule(
                forward_delay + latency,
                lambda f=friend: self._handle_query(
                    peer_name=f,
                    query_id=query_id,
                    file_id=file_id,
                    ttl=ttl - 1,
                    path=path + (f,),
                    sent_at=sent_at,
                    trial=trial,
                    records=records,
                ),
            )

    def _send_response(
        self,
        path: tuple[str, ...],
        file_id: str,
        sent_at: float,
        trial: int,
        records: list[ResponseRecord],
    ) -> None:
        """Send a response back along the reverse of ``path``."""
        origin = path[0]
        neighbor = path[1]  # the direct neighbour the origin will see
        total = 0.0
        # Walk the reverse path: link latency each hop, plus relay
        # processing at each intermediate peer.
        for index in range(len(path) - 1, 0, -1):
            upstream = path[index - 1]
            here = path[index]
            total += self.peers[here].friends[upstream]
            if index != 1:
                total += self.timing.draw(self._rng, "relay_response")
        self.sim.schedule(
            total,
            lambda: records.append(
                ResponseRecord(
                    neighbor=neighbor,
                    file_id=file_id,
                    query_sent_at=sent_at,
                    arrived_at=self.sim.now,
                    trial=trial,
                )
            ),
        )

    # -- ground truth and measurement helpers -----------------------------------

    def neighbors_of(self, name: str) -> list[str]:
        """Direct friends of a peer."""
        return sorted(self.peers[name].friends)

    def is_source(self, name: str, file_id: str) -> bool:
        """Ground truth: does the peer hold the file?"""
        return self.peers[name].has_file(file_id)

    def distance_to_source(self, name: str, file_id: str) -> int | None:
        """Ground truth: hops from a peer to the nearest source of a file.

        0 means the peer holds the file itself; ``None`` means no source
        is reachable over friend edges.
        """
        if self.is_source(name, file_id):
            return 0
        seen = {name}
        frontier = [name]
        distance = 0
        while frontier:
            distance += 1
            next_frontier: list[str] = []
            for current in frontier:
                for friend in self.peers[current].friends:
                    if friend in seen:
                        continue
                    if self.is_source(friend, file_id):
                        return distance
                    seen.add(friend)
                    next_frontier.append(friend)
            frontier = next_frontier
        return None

    def measure_rtt(self, a: str, b: str) -> float:
        """Protocol-level ping between friends (2x link latency).

        The investigator may measure this openly — it is ordinary
        protocol behaviour, not an interception.
        """
        latency = self.peers[a].friends.get(b)
        if latency is None:
            raise ValueError(f"{a!r} and {b!r} are not friends")
        return 2.0 * latency
