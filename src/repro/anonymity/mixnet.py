"""A single-hop anonymizing proxy (the paper's "Anonymizer").

Weaker than onion routing — one relay, one operator — but identical from
the watermark's point of view: contents are hidden, timing survives.  The
proxy also acts as an ISP for SCA purposes (Table 1 scene 14).
"""

from __future__ import annotations

import dataclasses
import random

from repro.anonymity.onion import CellObservation
from repro.netsim.engine import Simulator


@dataclasses.dataclass
class ProxySession:
    """One client's session through the proxy.

    Both ends keep ``(timestamp, size)`` observation logs, mirroring taps
    at the server's uplink and the client's ISP.
    """

    client: str
    server: str
    server_side_log: list[CellObservation] = dataclasses.field(
        default_factory=list
    )
    client_side_log: list[CellObservation] = dataclasses.field(
        default_factory=list
    )


class AnonymizerProxy:
    """A single-hop proxy relaying traffic with stochastic delay.

    Args:
        sim: The driving simulator.
        name: Proxy label.
        base_delay: Mean forwarding delay.
        jitter: One-sided exponential jitter fraction.
        seed: RNG seed.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "anonymizer",
        base_delay: float = 0.03,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.base_delay = base_delay
        self.jitter = jitter
        self._rng = random.Random(seed)
        self.sessions: list[ProxySession] = []
        self.cells_relayed = 0

    def open_session(self, client: str, server: str) -> ProxySession:
        """Open a relayed session between a client and a server."""
        session = ProxySession(client=client, server=server)
        self.sessions.append(session)
        return session

    def _delay(self) -> float:
        delay = self.base_delay
        if self.jitter > 0:
            delay += self.base_delay * self._rng.expovariate(1.0 / self.jitter)
        return delay

    def send_downstream(self, session: ProxySession, size: int = 512) -> None:
        """Relay one cell server -> client through the proxy, now."""
        now = self.sim.now
        session.server_side_log.append(
            CellObservation(timestamp=now, size=size)
        )
        self.cells_relayed += 1
        self.sim.schedule(
            self._delay(),
            lambda: session.client_side_log.append(
                CellObservation(timestamp=self.sim.now, size=size)
            ),
        )

    def send_upstream(self, session: ProxySession, size: int = 512) -> None:
        """Relay one cell client -> server through the proxy, now."""
        now = self.sim.now
        session.client_side_log.append(
            CellObservation(timestamp=now, size=size)
        )
        self.cells_relayed += 1
        self.sim.schedule(
            self._delay(),
            lambda: session.server_side_log.append(
                CellObservation(timestamp=self.sim.now, size=size)
            ),
        )
