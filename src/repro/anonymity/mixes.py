"""Batching mix strategies: the classic defences against timing analysis.

A DSSS flow watermark survives per-cell jitter because its chips integrate
over many packets; batching mixes attack it differently, by quantizing or
reordering release times.  These strategies transform a raw arrival-time
series into the series an observer would see *after* a mix at the last
hop, letting the ablation benchmarks measure how much batching each
watermark configuration survives.

All strategies are pure: ``apply(arrivals) -> releases`` with
``len(releases) == len(arrivals)`` and releases never earlier than the
corresponding arrivals.
"""

from __future__ import annotations

import abc
import math
import random


class MixStrategy(abc.ABC):
    """Transforms arrival times into post-mix release times."""

    @abc.abstractmethod
    def apply(self, arrivals: list[float]) -> list[float]:
        """Map arrival times to release times (sorted, same length)."""

    @staticmethod
    def _check(arrivals: list[float], releases: list[float]) -> list[float]:
        if len(releases) != len(arrivals):
            raise AssertionError("mix must preserve cell count")
        return sorted(releases)


class NoMix(MixStrategy):
    """Identity: cells leave when they arrive."""

    def apply(self, arrivals: list[float]) -> list[float]:
        return sorted(arrivals)


class TimedMix(MixStrategy):
    """Release everything accumulated at each tick of a fixed interval.

    Quantizes timing to the tick grid — the canonical low-latency-killing
    defence.  Chips much longer than the interval survive; chips shorter
    than it are destroyed.
    """

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval

    def apply(self, arrivals: list[float]) -> list[float]:
        releases = [
            math.ceil(t / self.interval) * self.interval
            if t % self.interval != 0
            else t
            for t in arrivals
        ]
        return self._check(arrivals, releases)


class ThresholdMix(MixStrategy):
    """Release in batches of ``k``: a batch leaves when its k-th cell lands.

    Converts smooth rate variation into bursts while *preserving the mean
    rate envelope* — the watermark's chip-level counts survive better than
    under a coarse timed mix.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("batch size must be >= 1")
        self.k = k

    def apply(self, arrivals: list[float]) -> list[float]:
        ordered = sorted(arrivals)
        releases: list[float] = []
        for start in range(0, len(ordered), self.k):
            batch = ordered[start : start + self.k]
            release_at = batch[-1]
            releases.extend([release_at] * len(batch))
        return self._check(arrivals, releases)


class PoolMix(MixStrategy):
    """A pool mix: each round releases a random subset of the pool.

    Cells enter a pool; every ``round_interval`` seconds the mix releases
    each pooled cell independently with probability ``release_fraction``.
    Randomized holding adds heavy-tailed delay *and* reordering — the
    hardest of the three for the watermark.
    """

    def __init__(
        self,
        round_interval: float,
        release_fraction: float = 0.6,
        seed: int = 0,
        max_rounds_held: int = 50,
    ) -> None:
        if round_interval <= 0:
            raise ValueError("round_interval must be positive")
        if not 0 < release_fraction <= 1:
            raise ValueError("release_fraction must be in (0, 1]")
        self.round_interval = round_interval
        self.release_fraction = release_fraction
        self.max_rounds_held = max_rounds_held
        self._rng = random.Random(seed)

    def apply(self, arrivals: list[float]) -> list[float]:
        if not arrivals:
            return []
        ordered = sorted(arrivals)
        releases: list[float] = []
        pool: list[tuple[float, int]] = []  # (arrival, rounds held)
        index = 0
        tick = (
            math.floor(ordered[0] / self.round_interval) + 1
        ) * self.round_interval
        while index < len(ordered) or pool:
            while index < len(ordered) and ordered[index] <= tick:
                pool.append((ordered[index], 0))
                index += 1
            survivors: list[tuple[float, int]] = []
            for arrival, rounds in pool:
                held_too_long = rounds >= self.max_rounds_held
                if held_too_long or self._rng.random() < self.release_fraction:
                    releases.append(tick)
                else:
                    survivors.append((arrival, rounds + 1))
            pool = survivors
            tick += self.round_interval
        return self._check(arrivals, releases)
