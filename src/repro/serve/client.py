"""A small blocking NDJSON client for the ruling server.

Used by ``repro serve-bench``, the test suite, and CI's smoke job.  One
socket, pipelining-capable: :meth:`ServeClient.send_rule` writes a
request without waiting, :meth:`ServeClient.read_response` reads the
next response line — responses arrive in request order, so a caller that
keeps its own FIFO of request ids can drive the server at depth.

The client never *parses* ruling payloads beyond the envelope: the
differential gate wants the server's ruling dicts re-rendered through
the same canonical encoder the in-process path uses, and anything
smarter here could mask a wire defect.
"""

from __future__ import annotations

import json
import socket
from collections.abc import Sequence
from typing import Any

from repro.serve.protocol import (
    MAX_RESPONSE_LINE_BYTES,
    action_to_dict,
    encode_line,
)


class ServeClient:
    """Blocking newline-delimited-JSON client."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        max_line_bytes: int = MAX_RESPONSE_LINE_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self._sock.makefile("rb")
        self._max_line_bytes = max_line_bytes

    def __enter__(self) -> ServeClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    # -- raw pipelined interface -------------------------------------------------

    def send_line(self, payload: dict) -> None:
        """Write one request line without waiting for the response."""
        self._sock.sendall(encode_line(payload))

    def send_rule(
        self, request_id: object, actions: Sequence[Any]
    ) -> None:
        """Write one ``rule`` request for a batch of actions."""
        self.send_line(
            {
                "op": "rule",
                "id": request_id,
                "actions": [action_to_dict(a) for a in actions],
            }
        )

    def read_response(self) -> dict:
        """Read the next response line (request order is guaranteed)."""
        line = self._reader.readline(self._max_line_bytes + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        if len(line) > self._max_line_bytes:
            raise ValueError("response line exceeds framing bound")
        payload = json.loads(line.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("response must be a JSON object")
        return payload

    # -- convenience round trips -------------------------------------------------

    def rule(
        self, actions: Sequence[Any], request_id: object = 0
    ) -> dict:
        """One synchronous rule round trip."""
        self.send_rule(request_id, actions)
        return self.read_response()

    def ping(self) -> dict:
        self.send_line({"op": "ping"})
        return self.read_response()

    def stats(self) -> dict:
        self.send_line({"op": "stats"})
        return self.read_response()
