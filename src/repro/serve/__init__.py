"""Compliance-as-a-service: the sharded batching ruling server.

The compliance engine is a fast in-process library, but the ROADMAP's
"millions of users" target needs rulings served from one long-running
process that many consumers share.  This package provides that:

* :mod:`repro.serve.protocol` — the newline-delimited-JSON wire format:
  a complete, loss-free action codec (the inverse problem of the
  ledger's ruling codec) and canonical request/response envelopes, so a
  served ruling is *byte-identical* to the in-process one;
* :mod:`repro.serve.shard` — :class:`~repro.serve.shard.ShardRouter`:
  N shards, each owning a **private** ``RulingCache`` and
  ``ComplianceEngine``, with actions routed by fingerprint hash — no
  shard ever touches another's state, so the hot path has no locks;
* :mod:`repro.serve.server` — the asyncio server: NDJSON batches over
  TCP with responses streamed back in request order, bounded
  per-connection queues with a configurable ``queue``/``shed``
  backpressure policy, an HTTP ``/metrics`` endpoint rendering the
  :mod:`repro.obs` registry (per-shard cache counters, in-flight
  batches, latency histograms), and optional ledger persistence with
  startup cache priming;
* :mod:`repro.serve.client` — a small blocking client for tests and
  load generation;
* :mod:`repro.serve.bench` — the ``repro serve-bench`` load generator:
  replays the seeded corpora against a server, writes
  ``BENCH_serve.json`` (sustained rulings/s, round-trip p50/p99, shard
  balance, cache hit rate), and gates on the server responses being
  byte-identical to in-process ``evaluate_many()``.
"""

from repro.serve.protocol import (
    action_from_dict,
    action_to_dict,
    decode_line,
    encode_line,
)
from repro.serve.shard import ShardRouter
from repro.serve.server import RulingServer, ServerConfig

__all__ = [
    "RulingServer",
    "ServerConfig",
    "ShardRouter",
    "action_from_dict",
    "action_to_dict",
    "decode_line",
    "encode_line",
]
