"""Run a :class:`~repro.serve.server.RulingServer` on a background thread.

The load generator and the test suite both want a live server without
giving up their own (synchronous) thread.  :class:`ServerThread` hosts
the server's event loop on a daemon thread, waits for the listeners to
bind, and exposes the actual ephemeral addresses; ``stop()`` shuts the
server down from the calling thread and joins.
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.server import RulingServer, ServerConfig


class ServerThread:
    """A context-managed ruling server on its own thread and event loop."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig(port=0, metrics_port=0)
        self.server: RulingServer | None = None
        self.address: tuple[str, int] | None = None
        self.metrics_address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    def __enter__(self) -> ServerThread:
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        """Start the server thread and block until it is listening."""
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("ruling server failed to start in time")
        if self._error is not None:
            raise RuntimeError(
                f"ruling server failed to start: {self._error}"
            ) from self._error

    def stop(self) -> None:
        """Stop the server and join its thread (idempotent)."""
        if self._loop is not None and self.server is not None:
            try:
                asyncio.run_coroutine_threadsafe(
                    self.server.stop(), self._loop
                ).result(timeout=30)
            except (RuntimeError, asyncio.CancelledError):
                pass  # loop already torn down
            self._loop = None
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.server = RulingServer(self.config)
        try:
            await self.server.start()
        except BaseException as exc:
            self._error = exc
            self._started.set()
            return
        self.address = self.server.address
        self.metrics_address = self.server.metrics_address
        self._loop = asyncio.get_running_loop()
        self._started.set()
        await self.server.serve_forever()
