"""Fingerprint-hash sharding over private per-shard engines.

The server's hot-path concurrency story is *partitioning, not locking*:
every action is routed by the hash of its canonical fingerprint to
exactly one shard, and each shard owns a **private**
:class:`~repro.core.cache.RulingCache` and
:class:`~repro.core.engine.ComplianceEngine`.  Two shards never read or
write the same cache, so there is nothing to contend on — a shard's
worker can run its whole batch without synchronizing with anyone.

What *is* shared is deliberately read-only or serialized elsewhere: the
:class:`~repro.core.caselaw.AuthorityRegistry` (immutable after build,
constructed once instead of N times) and, optionally, one ledger handle
(all shard engines record fresh rulings through it; the asyncio server
runs every shard on one thread, so ledger writes are naturally
serialized and deduplicated by the ledger's fingerprint conflict
clause).

Routing uses the built-in ``hash`` of the fingerprint tuple — a few
hundred nanoseconds, stable within a process, which is the only scope a
shard assignment needs to be stable in (caches live and die with the
process).  The ruling itself is a pure function of the fingerprint, so
*any* assignment yields byte-identical results; the hash only has to
spread load.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core.cache import DEFAULT_CACHE_SIZE, RulingCache
from repro.core.caselaw import AuthorityRegistry, build_default_registry
from repro.core.engine import ComplianceEngine, RulingLedger
from repro.core.fingerprint import action_fingerprint

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.action import InvestigativeAction
    from repro.core.ruling import Ruling


class Shard:
    """One partition: a private cache, a private engine, local counters."""

    __slots__ = ("index", "cache", "engine", "actions_ruled", "batches")

    def __init__(
        self,
        index: int,
        registry: AuthorityRegistry,
        cache_size: int,
        ledger: RulingLedger | None,
    ) -> None:
        self.index = index
        self.cache = RulingCache(maxsize=cache_size)
        self.engine = ComplianceEngine(
            registry=registry, cache=self.cache, ledger=ledger
        )
        self.actions_ruled = 0
        self.batches = 0

    def evaluate_many(
        self, actions: Sequence[InvestigativeAction]
    ) -> list[Ruling]:
        """Rule a sub-batch on this shard's private engine."""
        self.actions_ruled += len(actions)
        self.batches += 1
        return self.engine.evaluate_many(actions)


class ShardRouter:
    """Routes actions to N private shards and reassembles batch order.

    Args:
        n_shards: Number of partitions.
        cache_size: Per-shard LRU capacity (total capacity is
            ``n_shards * cache_size``).
        ledger: Optional shared persistence backend; every shard's fresh
            rulings are recorded through it.
        registry: Authority registry shared (read-only) by all shards;
            built once by default.
    """

    def __init__(
        self,
        n_shards: int = 4,
        cache_size: int = DEFAULT_CACHE_SIZE,
        ledger: RulingLedger | None = None,
        registry: AuthorityRegistry | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1: {n_shards}")
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1: {cache_size}")
        self.registry = registry or build_default_registry()
        self.shards = tuple(
            Shard(index, self.registry, cache_size, ledger)
            for index in range(n_shards)
        )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, fingerprint: tuple) -> int:
        """The owning shard index for a canonical action fingerprint."""
        return hash(fingerprint) % len(self.shards)

    def partition(
        self, actions: Sequence[InvestigativeAction]
    ) -> list[list[int]]:
        """Positions of ``actions`` grouped by owning shard index."""
        buckets: list[list[int]] = [[] for _ in self.shards]
        for position, action in enumerate(actions):
            buckets[self.shard_for(action_fingerprint(action))].append(
                position
            )
        return buckets

    def evaluate_many(
        self, actions: Iterable[InvestigativeAction]
    ) -> list[Ruling]:
        """Rule a batch across the shards, preserving input order.

        Ruling-for-ruling identical to a single engine's
        ``evaluate_many`` — the ruling is deterministic per fingerprint,
        so partitioning cannot change any answer, only which private
        cache serves it.
        """
        batch = list(actions)
        rulings: list[Ruling | None] = [None] * len(batch)
        for shard, positions in zip(self.shards, self.partition(batch)):
            if not positions:
                continue
            for position, ruling in zip(
                positions, shard.evaluate_many([batch[p] for p in positions])
            ):
                rulings[position] = ruling
        return rulings  # type: ignore[return-value]

    def prime_from_ledger(
        self, ledger: RulingLedger, limit: int | None = None
    ) -> int:
        """Warm every shard's cache from persisted rulings.

        Each persisted ruling is routed to the shard that would own its
        fingerprint at serve time, so a primed entry is always a hit on
        the shard that gets asked.

        Returns:
            The number of rulings loaded.
        """
        loaded = 0
        for fingerprint, ruling in ledger.iter_rulings(limit=limit):
            self.shards[self.shard_for(fingerprint)].cache.put(
                fingerprint, ruling
            )
            loaded += 1
        return loaded

    def stats(self) -> dict:
        """Per-shard counters plus aggregate cache hit rate."""
        shards = []
        hits = misses = evictions = 0
        for shard in self.shards:
            cache_stats = shard.cache.stats
            hits += cache_stats.hits
            misses += cache_stats.misses
            evictions += cache_stats.evictions
            shards.append(
                {
                    "shard": shard.index,
                    "actions_ruled": shard.actions_ruled,
                    "batches": shard.batches,
                    "cache_hits": cache_stats.hits,
                    "cache_misses": cache_stats.misses,
                    "cache_evictions": cache_stats.evictions,
                    "cache_size": len(shard.cache),
                }
            )
        lookups = hits + misses
        return {
            "n_shards": len(self.shards),
            "shards": shards,
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_evictions": evictions,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }
