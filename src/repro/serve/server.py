"""The asyncio ruling server: NDJSON batches in, ordered rulings out.

Architecture
------------

One event loop, three kinds of tasks:

* **Connection handlers** parse NDJSON requests, split each ``rule``
  batch by fingerprint hash into per-shard sub-batches, and enqueue the
  sub-batches on the owning shards' queues.  Responses are *streamed
  back in request order per connection*: the handler reserves the
  response slot (a future appended to the connection's ordered pipeline)
  before dispatch, so pipelined requests can complete out of order
  internally without ever reordering on the wire.
* **Shard workers** (one per shard) drain their queue, coalescing
  everything currently enqueued into a single ``evaluate_many`` call on
  the shard's private engine — under load, sub-batches from many
  connections merge into one batched evaluation that feeds one private
  cache.  No shard ever touches another shard's cache or engine, so the
  hot path has no locks; partitioning *is* the synchronization.
* **A metrics listener** answers HTTP ``GET /metrics`` with the
  :mod:`repro.obs` registry's Prometheus text exposition (per-shard
  cache counters bound as callback gauges, in-flight batches, ruling
  and round-trip latency histograms) and ``GET /healthz`` for liveness.

Backpressure is per connection and bounded: at most
``max_pending_batches`` rule batches may be in flight per connection.
Policy ``queue`` stops reading from the socket until a slot frees (the
kernel's TCP window then pushes back on the client); policy ``shed``
answers immediately with ``{"ok": false, "error": "overloaded",
"shed": true}`` and never dispatches the batch.

Telemetry deliberately uses the metrics registry *without*
``obs.enable()``: a long-running server must not accumulate spans
forever, and the registry (counters, gauges, histograms) is bounded
state read out at render time.
"""

from __future__ import annotations

import asyncio
import dataclasses

from repro.core.cache import DEFAULT_CACHE_SIZE
from repro.ledger.serialize import canonical_json, ruling_to_dict
from repro.ledger.store import Ledger
from repro.obs import OBS, bind_ruling_cache, clock
from repro.serve.protocol import (
    MAX_BATCH_ACTIONS,
    MAX_LINE_BYTES,
    ProtocolError,
    action_from_dict,
    decode_line,
    encode_line,
)
from repro.serve.shard import ShardRouter

_SHED_POLICIES = ("queue", "shed")


@dataclasses.dataclass
class ServerConfig:
    """Everything ``repro serve`` can tune.

    Attributes:
        host: Bind address for both listeners.
        port: NDJSON port (0 picks an ephemeral port).
        metrics_port: HTTP ``/metrics`` port (0 picks an ephemeral port).
        n_shards: Number of private cache+engine partitions.
        cache_size: Per-shard LRU capacity.
        max_pending_batches: Per-connection bound on in-flight ``rule``
            batches — the backpressure knob.
        policy: ``"queue"`` (pause socket reads when full) or ``"shed"``
            (reject with an overload error).
        ledger_path: Optional SQLite ledger; fresh rulings persist here.
        prime: Warm every shard's cache from the ledger at startup.
        max_batch_actions: Per-request action cap.
        max_line_bytes: NDJSON framing bound.
    """

    host: str = "127.0.0.1"
    port: int = 7341
    metrics_port: int = 7342
    n_shards: int = 4
    cache_size: int = DEFAULT_CACHE_SIZE
    max_pending_batches: int = 64
    policy: str = "queue"
    ledger_path: str | None = None
    prime: bool = False
    max_batch_actions: int = MAX_BATCH_ACTIONS
    max_line_bytes: int = MAX_LINE_BYTES

    def __post_init__(self) -> None:
        if self.policy not in _SHED_POLICIES:
            raise ValueError(
                f"policy must be one of {_SHED_POLICIES}: {self.policy!r}"
            )
        if self.max_pending_batches < 1:
            raise ValueError("max_pending_batches must be >= 1")
        if self.prime and self.ledger_path is None:
            raise ValueError("--prime requires --ledger")


class _Work:
    """One request's sub-batch bound for one shard."""

    __slots__ = ("actions", "future")

    def __init__(self, actions: list, future: asyncio.Future) -> None:
        self.actions = actions
        self.future = future


class RulingServer:
    """The long-running sharded ruling service."""

    #: Bound on the encoded-ruling memo (entries, not bytes); when full
    #: the memo is dropped wholesale and rebuilt — O(1) amortized.
    ENCODE_MEMO_MAX = 65536

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.router: ShardRouter | None = None
        self.primed_rulings = 0
        # Ruling objects are interned per fingerprint by the shard
        # caches, so encoding each distinct object once and joining the
        # memoized strings makes hot responses a lookup + join instead
        # of a full re-serialization.  Keyed by id() — safe only because
        # the memo also holds the ruling, pinning the id.
        self._encode_memo: dict[int, tuple[object, str]] = {}
        self._ledger: Ledger | None = None
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._rpc_server: asyncio.Server | None = None
        self._metrics_server: asyncio.Server | None = None
        self._stop_requested = False
        self._stopped = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Open the ledger, build shards, bind metrics, start listening."""
        config = self.config
        if config.ledger_path is not None:
            self._ledger = Ledger(config.ledger_path)
        self.router = ShardRouter(
            n_shards=config.n_shards,
            cache_size=config.cache_size,
            ledger=self._ledger,
        )
        if config.prime and self._ledger is not None:
            self.primed_rulings = self.router.prime_from_ledger(self._ledger)
        self._bind_metrics()
        self._queues = [asyncio.Queue() for _ in self.router.shards]
        self._workers = [
            asyncio.create_task(
                self._shard_worker(shard, queue),
                name=f"repro-serve-shard-{shard.index}",
            )
            for shard, queue in zip(self.router.shards, self._queues)
        ]
        self._rpc_server = await asyncio.start_server(
            self._handle_connection,
            config.host,
            config.port,
            limit=config.max_line_bytes,
        )
        self._metrics_server = await asyncio.start_server(
            self._handle_metrics,
            config.host,
            config.metrics_port,
            limit=config.max_line_bytes,
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound NDJSON ``(host, port)``."""
        assert self._rpc_server is not None
        sock = self._rpc_server.sockets[0]
        return sock.getsockname()[:2]

    @property
    def metrics_address(self) -> tuple[str, int]:
        """The bound metrics HTTP ``(host, port)``."""
        assert self._metrics_server is not None
        sock = self._metrics_server.sockets[0]
        return sock.getsockname()[:2]

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` is called."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Stop listeners, cancel workers, close the ledger (idempotent)."""
        if self._stop_requested:
            await self._stopped.wait()
            return
        self._stop_requested = True
        for server in (self._rpc_server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._workers = []
        if self._ledger is not None:
            self._ledger.close()
            self._ledger = None
        self._stopped.set()

    # -- metrics -----------------------------------------------------------------

    def _bind_metrics(self) -> None:
        assert self.router is not None
        registry = OBS.registry
        self._requests = registry.counter(
            "repro_serve_requests_total", "Requests received, by op."
        )
        self._actions_total = registry.counter(
            "repro_serve_actions_total", "Actions received in rule batches."
        )
        self._shed_total = registry.counter(
            "repro_serve_shed_total",
            "Rule batches rejected by the shed backpressure policy.",
        )
        self._errors_total = registry.counter(
            "repro_serve_errors_total", "Error responses, by reason."
        )
        self._connections = registry.gauge(
            "repro_serve_connections", "Open NDJSON connections."
        )
        self._inflight = registry.gauge(
            "repro_serve_inflight_batches",
            "Rule batches accepted and not yet answered.",
        )
        self._ruling_seconds = registry.histogram(
            "repro_serve_ruling_seconds",
            "Per-action ruling latency inside shard workers.",
        )
        self._round_trip_seconds = registry.histogram(
            "repro_serve_round_trip_seconds",
            "Request latency from line read to response bytes ready.",
        )
        self._shard_actions = registry.counter(
            "repro_serve_shard_actions_total",
            "Actions ruled per shard worker.",
        )
        for shard in self.router.shards:
            bind_ruling_cache(shard.cache.stats, name=f"shard{shard.index}")

    # -- shard workers -----------------------------------------------------------

    async def _shard_worker(
        self, shard, queue: asyncio.Queue
    ) -> None:
        """Drain the shard's queue, coalescing waiting work per wake-up."""
        while True:
            items = [await queue.get()]
            while True:
                try:
                    items.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            actions = [
                action for item in items for action in item.actions
            ]
            started = clock()
            try:
                rulings = shard.evaluate_many(actions)
            except Exception as exc:  # defensive: engine is deterministic
                for item in items:
                    if not item.future.done():
                        item.future.set_exception(exc)
                continue
            if self._ledger is not None:
                # record_ruling leaves writes pending; flush them at
                # batch granularity so a killed server loses at most
                # the current coalesced batch, not the whole session.
                self._ledger.commit()
            elapsed = clock() - started
            per_action = elapsed / len(actions) if actions else 0.0
            for _ in actions:
                self._ruling_seconds.observe(per_action)
            self._shard_actions.inc(len(actions), shard=shard.index)
            cursor = 0
            for item in items:
                width = len(item.actions)
                if not item.future.done():
                    item.future.set_result(
                        rulings[cursor : cursor + width]
                    )
                cursor += width
            # Yield so connection handlers can enqueue follow-up work
            # before the next coalescing sweep.
            await asyncio.sleep(0)

    # -- NDJSON connections ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.inc()
        pipeline: asyncio.Queue = asyncio.Queue()
        in_flight = 0
        slot_freed = asyncio.Event()
        writer_task = asyncio.create_task(
            self._write_loop(pipeline, writer)
        )

        def _release(_fut: asyncio.Future) -> None:
            nonlocal in_flight
            in_flight -= 1
            self._inflight.dec()
            slot_freed.set()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.IncompleteReadError):
                    self._errors_total.inc(reason="oversized_line")
                    await pipeline.put(
                        _error_response(None, "line too long")
                    )
                    break
                except OSError:
                    break  # peer vanished mid-read
                if not line:
                    break
                if line.strip() == b"":
                    continue
                started = clock()
                try:
                    message = decode_line(line)
                except ProtocolError as exc:
                    self._errors_total.inc(reason="bad_frame")
                    await pipeline.put(
                        _error_response(None, str(exc))
                    )
                    continue
                op = message.get("op")
                self._requests.inc(op=str(op))
                request_id = message.get("id")
                if op == "ping":
                    await pipeline.put(
                        encode_line({"ok": True, "pong": True})
                    )
                    continue
                if op == "stats":
                    await pipeline.put(
                        encode_line(self._stats_response())
                    )
                    continue
                if op != "rule":
                    self._errors_total.inc(reason="unknown_op")
                    await pipeline.put(
                        _error_response(
                            request_id, f"unknown op: {op!r}"
                        )
                    )
                    continue
                try:
                    actions = self._decode_batch(message)
                except ProtocolError as exc:
                    self._errors_total.inc(reason="bad_action")
                    await pipeline.put(
                        _error_response(request_id, str(exc))
                    )
                    continue
                # Backpressure: bound in-flight batches per connection.
                if in_flight >= self.config.max_pending_batches:
                    if self.config.policy == "shed":
                        self._shed_total.inc()
                        await pipeline.put(
                            encode_line(
                                {
                                    "id": request_id,
                                    "ok": False,
                                    "error": "overloaded",
                                    "shed": True,
                                }
                            )
                        )
                        continue
                    while in_flight >= self.config.max_pending_batches:
                        slot_freed.clear()
                        await slot_freed.wait()
                in_flight += 1
                self._inflight.inc()
                self._actions_total.inc(len(actions))
                response_future: asyncio.Future = (
                    asyncio.get_running_loop().create_future()
                )
                response_future.add_done_callback(_release)
                # Reserve the response slot *before* dispatching, so
                # responses always leave in request order.
                await pipeline.put(response_future)
                asyncio.create_task(
                    self._process_rule(
                        request_id, actions, started, response_future
                    )
                )
        finally:
            await pipeline.put(None)
            try:
                await writer_task
            except Exception:
                pass
            self._connections.dec()

    async def _write_loop(
        self, pipeline: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Write responses strictly in reservation order."""
        try:
            while True:
                entry = await pipeline.get()
                if entry is None:
                    break
                data = entry if isinstance(entry, bytes) else await entry
                writer.write(data)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _decode_batch(self, message: dict) -> list:
        payload = message.get("actions")
        if not isinstance(payload, list):
            raise ProtocolError('"actions" must be an array')
        if len(payload) > self.config.max_batch_actions:
            raise ProtocolError(
                f"batch of {len(payload)} exceeds cap "
                f"{self.config.max_batch_actions}"
            )
        return [action_from_dict(item) for item in payload]

    async def _process_rule(
        self,
        request_id: object,
        actions: list,
        started: float,
        response_future: asyncio.Future,
    ) -> None:
        """Fan a batch out to its shards and assemble the response."""
        assert self.router is not None
        try:
            results: list = [None] * len(actions)
            waits = []
            for shard_index, positions in enumerate(
                self.router.partition(actions)
            ):
                if not positions:
                    continue
                future: asyncio.Future = (
                    asyncio.get_running_loop().create_future()
                )
                await self._queues[shard_index].put(
                    _Work([actions[p] for p in positions], future)
                )
                waits.append((positions, future))
            for positions, future in waits:
                for position, ruling in zip(positions, await future):
                    results[position] = ruling
            body = self._encode_rule_response(request_id, results)
            self._round_trip_seconds.observe(clock() - started)
            if not response_future.done():
                response_future.set_result(body)
        except Exception as exc:  # pragma: no cover - defensive
            self._errors_total.inc(reason="internal")
            if not response_future.done():
                response_future.set_result(
                    _error_response(request_id, f"internal: {exc}")
                )

    def _encode_ruling(self, ruling) -> str:
        """Canonical JSON for one ruling, memoized per interned object."""
        key = id(ruling)
        hit = self._encode_memo.get(key)
        if hit is not None:
            return hit[1]
        if len(self._encode_memo) >= self.ENCODE_MEMO_MAX:
            self._encode_memo.clear()
        text = canonical_json(ruling_to_dict(ruling))
        self._encode_memo[key] = (ruling, text)
        return text

    def _encode_rule_response(
        self, request_id: object, rulings: list
    ) -> bytes:
        """The response line, assembled from memoized ruling strings.

        Byte-identical to ``encode_line({"id": ..., "ok": True,
        "rulings": [...]})``: the envelope keys are already in canonical
        (sorted) order and each memoized string is exactly the canonical
        encoding of its ruling dict.
        """
        envelope = canonical_json({"id": request_id, "ok": True})
        parts = [envelope[:-1], ',"rulings":[']
        parts.append(",".join(self._encode_ruling(r) for r in rulings))
        parts.append("]}\n")
        return "".join(parts).encode("utf-8")

    def _stats_response(self) -> dict:
        assert self.router is not None
        stats = self.router.stats()
        stats["primed_rulings"] = self.primed_rulings
        stats["policy"] = self.config.policy
        stats["shed_total"] = self._shed_total.value()
        return {"ok": True, "stats": stats}

    # -- metrics HTTP ------------------------------------------------------------

    async def _handle_metrics(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.split()
            path = parts[1].decode("latin-1") if len(parts) >= 2 else ""
            if path.split("?")[0] == "/metrics":
                body = OBS.registry.render_text().encode("utf-8")
                status = b"200 OK"
                content_type = b"text/plain; version=0.0.4; charset=utf-8"
            elif path.split("?")[0] == "/healthz":
                body = b"ok\n"
                status = b"200 OK"
                content_type = b"text/plain; charset=utf-8"
            else:
                body = b"not found\n"
                status = b"404 Not Found"
                content_type = b"text/plain; charset=utf-8"
            writer.write(
                b"HTTP/1.1 " + status + b"\r\n"
                b"Content-Type: " + content_type + b"\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


def _error_response(request_id: object, error: str) -> bytes:
    return encode_line({"id": request_id, "ok": False, "error": error})
