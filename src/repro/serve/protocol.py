"""The ruling server's newline-delimited-JSON wire format.

One request or response per line, UTF-8, compact sorted-key JSON — the
same canonical form :mod:`repro.ledger.serialize` uses for persisted
rulings, so the bytes a client receives for a ruling are exactly the
bytes ``canonical_json(ruling_to_dict(ruling))`` produces in-process.
That is what makes the serve-bench differential gate a *byte* equality
check rather than a tolerance.

Requests (the ``op`` field selects the verb):

* ``{"op": "rule", "id": 7, "actions": [...]}`` — rule on a batch;
  answered by ``{"id": 7, "ok": true, "rulings": [...]}`` with rulings
  in action order.
* ``{"op": "ping"}`` — liveness; answered by ``{"ok": true, "pong": true}``.
* ``{"op": "stats"}`` — shard/cache counters as JSON.

Errors (malformed JSON, unknown op, bad action, shed load) answer
``{"id": ..., "ok": false, "error": "..."}``; a shed response also
carries ``"shed": true`` so clients can distinguish overload from a bad
request.  The connection survives request-level errors; only framing
violations (oversized or non-UTF-8 lines) close it.

The action codec below is the inverse problem of the ledger's ruling
codec: every field of every frozen dataclass, enums by stable ``name``,
so a decoded action compares equal to — and fingerprints identically
to — the one the client held.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.action import ConsentFacts, DoctrineFacts, InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import (
    Actor,
    ConsentScope,
    DataKind,
    Place,
    ProviderRole,
    Timing,
)
from repro.ledger.serialize import canonical_json

#: Framing bound: one request line must fit a full batch of actions.
#: Encoded actions run ~800 bytes each, so 4 MiB comfortably holds the
#: ``MAX_BATCH_ACTIONS`` cap with headroom.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Client-side framing bound for *response* lines.  Responses carry
#: complete rulings (requirements, exceptions, reasoning steps — several
#: KiB each), so a full 4,096-action batch answer runs to tens of MiB.
MAX_RESPONSE_LINE_BYTES = 64 * 1024 * 1024

#: Server-side cap on actions per ``rule`` request.
MAX_BATCH_ACTIONS = 4096


class ProtocolError(ValueError):
    """A request the server can answer with an error response."""


# -- action codec ----------------------------------------------------------------


def action_to_dict(action: InvestigativeAction) -> dict:
    """The complete JSON-serializable encoding of an action."""
    context = action.context
    return {
        "description": action.description,
        "actor": action.actor.name,
        "data_kind": action.data_kind.name,
        "timing": action.timing.name,
        "context": {
            "place": context.place.name,
            "encrypted": context.encrypted,
            "knowingly_exposed": context.knowingly_exposed,
            "shared_with_others": context.shared_with_others,
            "delivered_to_recipient": context.delivered_to_recipient,
            "provider_serves_public": context.provider_serves_public,
            "provider_role": (
                None
                if context.provider_role is None
                else context.provider_role.name
            ),
            "policy_eliminates_rep": context.policy_eliminates_rep,
            "home_interior": context.home_interior,
            "technology_in_general_public_use": (
                context.technology_in_general_public_use
            ),
            "abandoned": context.abandoned,
        },
        "consent": {
            "scope": action.consent.scope.name,
            "voluntary": action.consent.voluntary,
            "exceeds_authority": action.consent.exceeds_authority,
            "revoked": action.consent.revoked,
            "covers_target_data": action.consent.covers_target_data,
        },
        "doctrine": {
            "exigent_circumstances": action.doctrine.exigent_circumstances,
            "plain_view": action.doctrine.plain_view,
            "target_on_probation": action.doctrine.target_on_probation,
            "emergency_pen_trap": action.doctrine.emergency_pen_trap,
            "hash_search_of_lawful_media": (
                action.doctrine.hash_search_of_lawful_media
            ),
            "mining_of_lawful_data": action.doctrine.mining_of_lawful_data,
            "credentials_lawfully_obtained": (
                action.doctrine.credentials_lawfully_obtained
            ),
            "monitoring_own_network": action.doctrine.monitoring_own_network,
            "victim_invited_monitoring": (
                action.doctrine.victim_invited_monitoring
            ),
        },
    }


def action_from_dict(payload: dict) -> InvestigativeAction:
    """Rebuild an action that compares equal to (and fingerprints
    identically to) the encoded one.

    Raises:
        ProtocolError: On missing fields or unknown enum names.
    """
    try:
        context = payload["context"]
        consent = payload["consent"]
        doctrine = payload["doctrine"]
        provider_role = context["provider_role"]
        return InvestigativeAction(
            description=str(payload["description"]),
            actor=Actor[payload["actor"]],
            data_kind=DataKind[payload["data_kind"]],
            timing=Timing[payload["timing"]],
            context=EnvironmentContext(
                place=Place[context["place"]],
                encrypted=bool(context["encrypted"]),
                knowingly_exposed=bool(context["knowingly_exposed"]),
                shared_with_others=bool(context["shared_with_others"]),
                delivered_to_recipient=bool(
                    context["delivered_to_recipient"]
                ),
                provider_serves_public=(
                    None
                    if context["provider_serves_public"] is None
                    else bool(context["provider_serves_public"])
                ),
                provider_role=(
                    None
                    if provider_role is None
                    else ProviderRole[provider_role]
                ),
                policy_eliminates_rep=bool(context["policy_eliminates_rep"]),
                home_interior=bool(context["home_interior"]),
                technology_in_general_public_use=bool(
                    context["technology_in_general_public_use"]
                ),
                abandoned=bool(context["abandoned"]),
            ),
            consent=ConsentFacts(
                scope=ConsentScope[consent["scope"]],
                voluntary=bool(consent["voluntary"]),
                exceeds_authority=bool(consent["exceeds_authority"]),
                revoked=bool(consent["revoked"]),
                covers_target_data=bool(consent["covers_target_data"]),
            ),
            doctrine=DoctrineFacts(
                exigent_circumstances=bool(
                    doctrine["exigent_circumstances"]
                ),
                plain_view=bool(doctrine["plain_view"]),
                target_on_probation=bool(doctrine["target_on_probation"]),
                emergency_pen_trap=bool(doctrine["emergency_pen_trap"]),
                hash_search_of_lawful_media=bool(
                    doctrine["hash_search_of_lawful_media"]
                ),
                mining_of_lawful_data=bool(
                    doctrine["mining_of_lawful_data"]
                ),
                credentials_lawfully_obtained=bool(
                    doctrine["credentials_lawfully_obtained"]
                ),
                monitoring_own_network=bool(
                    doctrine["monitoring_own_network"]
                ),
                victim_invited_monitoring=bool(
                    doctrine["victim_invited_monitoring"]
                ),
            ),
        )
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed action: {exc}") from exc


# -- framing ---------------------------------------------------------------------


def encode_line(payload: dict) -> bytes:
    """One canonical-JSON message, newline-terminated, UTF-8."""
    return canonical_json(payload).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one received line into a message dict.

    Raises:
        ProtocolError: On non-UTF-8 bytes, invalid JSON, or a non-object
            top level.
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise ProtocolError("line is not UTF-8") from exc
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc.msg}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object")
    return payload
