"""``repro serve-bench``: load-generate the ruling server and gate it.

Replays a seeded action corpus against a live server — an in-process
one spawned on an ephemeral loopback port by default, or any server
reachable via ``--connect host:port`` (CI starts ``repro serve``
separately and points the bench at it).  Produces ``BENCH_serve.json``
with:

* **sustained throughput** (rulings/s) for a cold first replay and a
  hot (cache-warm) replay;
* **round-trip latency** p50/p95/p99 measured client-side under
  pipelined load;
* **shard balance** (actions per shard, max/mean ratio) and the
  aggregate cache hit rate, read from the server's ``stats`` op;
* a **metrics-endpoint check** that ``/metrics`` serves Prometheus text
  containing the per-shard cache counters and the serve histograms
  while the server is under (post-)load;
* the **differential gate**: every ruling the server returned on the
  cold replay, re-rendered through the canonical encoder, must be
  *byte-identical* to in-process ``evaluate_many()`` over the same
  corpus.  Any mismatch fails the run (nonzero exit, same pattern as
  ``repro bench``).

The gate is the point: sharding, batching, coalescing, and the wire
codec are all allowed to change *how fast* an answer arrives, never
*what* the answer is.
"""

from __future__ import annotations

import json
import time
import urllib.request
from collections import deque

from repro.core.cache import RulingCache
from repro.core.engine import ComplianceEngine
from repro.ledger.serialize import canonical_json, ruling_to_dict
from repro.serve.client import ServeClient
from repro.serve.harness import ServerThread
from repro.serve.server import ServerConfig
from repro.workloads import action_corpus

#: Full run: the 10k-action corpus the engine differential suite seeds.
FULL_CORPUS = (10_000, 7)
#: Quick run: the 5k-action golden corpus ``repro bench`` seeds.
QUICK_CORPUS = (5_000, 99)

DEFAULT_BATCH_SIZE = 250
DEFAULT_PIPELINE_DEPTH = 8


def _percentiles_us(samples: list[float]) -> dict[str, float]:
    """Exact client-side percentiles, reported in microseconds."""
    if not samples:
        return {"p50_us": 0.0, "p95_us": 0.0, "p99_us": 0.0, "max_us": 0.0}
    ordered = sorted(samples)
    last = len(ordered) - 1

    def at(q: float) -> float:
        return ordered[min(last, int(q * len(ordered)))] * 1e6

    return {
        "p50_us": at(0.50),
        "p95_us": at(0.95),
        "p99_us": at(0.99),
        "max_us": ordered[-1] * 1e6,
    }


def _replay(
    client: ServeClient,
    batches: list[list],
    depth: int,
    target_rps: float | None,
    batch_size: int,
    collect: list[str] | None,
) -> tuple[float, list[float]]:
    """Drive one pipelined replay; returns (wall_seconds, round_trips).

    ``collect`` (when given) accumulates every returned ruling as its
    canonical JSON string, in corpus order, for the differential gate.
    """
    pending: deque[tuple[int, float]] = deque()
    round_trips: list[float] = []

    def finish_one() -> None:
        response = client.read_response()
        request_id, sent_at = pending.popleft()
        round_trips.append(time.perf_counter() - sent_at)
        if not response.get("ok"):
            raise RuntimeError(
                f"request {request_id} failed: {response.get('error')}"
            )
        if response.get("id") != request_id:
            raise RuntimeError(
                f"response order violated: expected id {request_id}, "
                f"got {response.get('id')}"
            )
        if collect is not None:
            for ruling in response["rulings"]:
                collect.append(canonical_json(ruling))

    interval = (
        batch_size / target_rps if target_rps and target_rps > 0 else 0.0
    )
    started = time.perf_counter()
    next_send = started
    for index, batch in enumerate(batches):
        while len(pending) >= depth:
            finish_one()
        if interval:
            now = time.perf_counter()
            if now < next_send:
                time.sleep(next_send - now)
            next_send += interval
        pending.append((index, time.perf_counter()))
        client.send_rule(index, batch)
    while pending:
        finish_one()
    return time.perf_counter() - started, round_trips


def _check_metrics_endpoint(address: tuple[str, int] | None) -> dict:
    """Scrape ``/metrics`` and verify the serve instruments are present."""
    if address is None:
        return {"checked": False, "ok": True}
    host, port = address
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=10
        ) as response:
            text = response.read().decode("utf-8")
    except OSError as exc:
        return {"checked": True, "ok": False, "error": str(exc)}
    required = (
        'repro_ruling_cache_hits{cache="shard0"}',
        "repro_serve_inflight_batches",
        "repro_serve_round_trip_seconds_bucket",
        "repro_serve_ruling_seconds_bucket",
    )
    missing = [marker for marker in required if marker not in text]
    return {
        "checked": True,
        "ok": not missing,
        "bytes": len(text),
        "missing": missing,
    }


def run_serve_bench(
    quick: bool = False,
    connect: str | None = None,
    n_shards: int = 4,
    policy: str = "queue",
    batch_size: int = DEFAULT_BATCH_SIZE,
    depth: int = DEFAULT_PIPELINE_DEPTH,
    target_rps: float | None = None,
    out: str | None = "BENCH_serve.json",
) -> tuple[dict, bool]:
    """Run the serve load test + differential gate.

    Returns:
        ``(report, ok)`` — ``ok`` is ``False`` on any differential
        mismatch, ordering violation, or missing metrics instrument.
    """
    corpus_size, seed = QUICK_CORPUS if quick else FULL_CORPUS
    corpus = action_corpus(corpus_size, seed=seed)
    batches = [
        corpus[i : i + batch_size]
        for i in range(0, len(corpus), batch_size)
    ]

    server_thread: ServerThread | None = None
    if connect is None:
        server_thread = ServerThread(
            ServerConfig(
                port=0, metrics_port=0, n_shards=n_shards, policy=policy
            )
        )
        server_thread.start()
        assert server_thread.address is not None
        host, port = server_thread.address
        metrics_address = server_thread.metrics_address
    else:
        host, _, port_text = connect.partition(":")
        host, port = host or "127.0.0.1", int(port_text)
        metrics_address = None

    try:
        served: list[str] = []
        with ServeClient(host, port) as client:
            cold_wall, cold_round_trips = _replay(
                client, batches, depth, target_rps, batch_size, served
            )
            hot_wall, hot_round_trips = _replay(
                client, batches, depth, target_rps, batch_size, None
            )
            stats = client.stats()["stats"]
        metrics_check = _check_metrics_endpoint(metrics_address)
    finally:
        if server_thread is not None:
            server_thread.stop()

    engine = ComplianceEngine(cache=RulingCache(maxsize=2 * len(corpus)))
    reference = [
        canonical_json(ruling_to_dict(ruling))
        for ruling in engine.evaluate_many(corpus)
    ]
    mismatches = sum(
        1 for got, want in zip(served, reference) if got != want
    ) + abs(len(served) - len(reference))

    per_shard = [shard["actions_ruled"] for shard in stats["shards"]]
    mean_actions = sum(per_shard) / len(per_shard) if per_shard else 0.0
    balance = (
        max(per_shard, default=0) / mean_actions if mean_actions else 1.0
    )

    ok = mismatches == 0 and metrics_check["ok"]
    report = {
        "meta": {
            "generated_unix": time.time(),
            "quick": quick,
            "corpus": {"actions": corpus_size, "seed": seed},
            "batch_size": batch_size,
            "pipeline_depth": depth,
            "target_rps": target_rps,
            "connect": connect,
            "policy": stats.get("policy", policy),
            "n_shards": stats.get("n_shards", n_shards),
        },
        "cold": {
            "wall_seconds": cold_wall,
            "rulings_per_second": len(corpus) / cold_wall,
            "round_trip": _percentiles_us(cold_round_trips),
        },
        "hot": {
            "wall_seconds": hot_wall,
            "rulings_per_second": len(corpus) / hot_wall,
            "round_trip": _percentiles_us(hot_round_trips),
        },
        "shards": {
            "actions_per_shard": per_shard,
            "balance_max_over_mean": balance,
        },
        "cache": {
            "hits": stats["cache_hits"],
            "misses": stats["cache_misses"],
            "evictions": stats["cache_evictions"],
            "hit_rate": stats["hit_rate"],
        },
        "metrics_endpoint": metrics_check,
        "differential": {
            "compared": len(reference),
            "mismatches": mismatches,
            "ok": mismatches == 0,
        },
        "ok": ok,
    }
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report, ok


def render_serve_report(report: dict) -> str:
    """Human-readable summary of a serve-bench report."""
    meta = report["meta"]
    cold, hot = report["cold"], report["hot"]
    lines = [
        "repro serve-bench — sharded ruling server",
        (
            f"  corpus: {meta['corpus']['actions']} actions "
            f"(seed {meta['corpus']['seed']}), batches of "
            f"{meta['batch_size']}, pipeline depth {meta['pipeline_depth']}"
        ),
        (
            f"  server: {meta['n_shards']} shards, policy "
            f"{meta['policy']}"
            + (f", connected to {meta['connect']}" if meta["connect"] else "")
        ),
        (
            f"  cold: {cold['rulings_per_second']:,.0f} rulings/s "
            f"(p50 {cold['round_trip']['p50_us']:,.0f} us, "
            f"p99 {cold['round_trip']['p99_us']:,.0f} us)"
        ),
        (
            f"  hot:  {hot['rulings_per_second']:,.0f} rulings/s "
            f"(p50 {hot['round_trip']['p50_us']:,.0f} us, "
            f"p99 {hot['round_trip']['p99_us']:,.0f} us)"
        ),
        (
            f"  shards: {report['shards']['actions_per_shard']} "
            f"(max/mean {report['shards']['balance_max_over_mean']:.2f}), "
            f"cache hit rate {report['cache']['hit_rate']:.1%}"
        ),
        (
            f"  metrics endpoint: "
            f"{'ok' if report['metrics_endpoint']['ok'] else 'FAILED'}"
        ),
        (
            f"  differential: {report['differential']['compared']} rulings "
            f"compared, {report['differential']['mismatches']} mismatches "
            f"-> {'byte-identical' if report['differential']['ok'] else 'FAILED'}"
        ),
        f"  overall: {'ok' if report['ok'] else 'FAILED'}",
    ]
    return "\n".join(lines)
