"""A simple inode filesystem with forensically realistic deletion.

Deleting a file removes its directory entry and frees its blocks but does
*not* erase the data — exactly the property that makes deleted-file
recovery possible ("It is also good for investigators to recover the
deleted files", paper section III.A.1(c)).  Recovery succeeds until the
freed blocks are reused by later writes.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.storage.blockdev import BlockDevice


@dataclasses.dataclass
class Inode:
    """File metadata: block list, logical size, and lifecycle state."""

    inode_id: int
    name: str
    blocks: list[int]
    size: int
    created_at: float
    deleted: bool = False
    deleted_at: float | None = None


class FilesystemError(Exception):
    """Raised for filesystem misuse (missing files, full device, ...)."""


class SimpleFilesystem:
    """A flat (directory-less) filesystem over a :class:`BlockDevice`.

    Block allocation is first-fit over a free list; freed blocks return to
    the pool and are reused oldest-first, so recently deleted files tend
    to survive until space pressure reclaims them — matching the real
    forensic picture.
    """

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self._inodes: dict[str, Inode] = {}
        self._deleted: list[Inode] = []
        self._free: list[int] = list(range(device.n_blocks))
        self._ids = itertools.count(1)
        self._clock = itertools.count(0)

    # -- queries ----------------------------------------------------------------

    def list_files(self) -> list[str]:
        """Names of live (non-deleted) files."""
        return sorted(self._inodes)

    def exists(self, name: str) -> bool:
        """Whether a live file with this name exists."""
        return name in self._inodes

    @property
    def free_blocks(self) -> int:
        """Number of unallocated blocks."""
        return len(self._free)

    # -- mutation ----------------------------------------------------------------

    def write_file(self, name: str, contents: bytes | str) -> Inode:
        """Create or replace a file.

        Raises:
            FilesystemError: If the device lacks space.
        """
        data = contents.encode() if isinstance(contents, str) else contents
        if name in self._inodes:
            self.delete_file(name)
        block_size = self.device.block_size
        needed = max(1, -(-len(data) // block_size))
        if needed > len(self._free):
            raise FilesystemError(
                f"no space: need {needed} blocks, {len(self._free)} free"
            )
        blocks = [self._free.pop(0) for _ in range(needed)]
        for offset, block_index in enumerate(blocks):
            chunk = data[offset * block_size : (offset + 1) * block_size]
            # Partial writes preserve slack space: bytes past the new
            # file's logical end keep prior (possibly deleted) content,
            # which signature carving can still recover.
            self.device.write_partial(block_index, chunk)
        inode = Inode(
            inode_id=next(self._ids),
            name=name,
            blocks=blocks,
            size=len(data),
            created_at=float(next(self._clock)),
        )
        self._inodes[name] = inode
        return inode

    def read_file(self, name: str) -> bytes:
        """Read a live file's contents.

        Raises:
            FilesystemError: If no such live file exists.
        """
        inode = self._inodes.get(name)
        if inode is None:
            raise FilesystemError(f"no such file: {name!r}")
        return self._read_inode(inode)

    def delete_file(self, name: str) -> None:
        """Delete a file: unlink it and free (but do not erase) its blocks.

        Raises:
            FilesystemError: If no such live file exists.
        """
        inode = self._inodes.pop(name, None)
        if inode is None:
            raise FilesystemError(f"no such file: {name!r}")
        inode.deleted = True
        inode.deleted_at = float(next(self._clock))
        self._free.extend(inode.blocks)
        self._deleted.append(inode)

    # -- forensics ----------------------------------------------------------------

    def recover_deleted(self) -> dict[str, bytes]:
        """Recover deleted files whose blocks have not been reused.

        Returns:
            Mapping of original file name to recovered contents, for every
            deleted file all of whose blocks still hold its data.
        """
        live_blocks = {
            index
            for inode in self._inodes.values()
            for index in inode.blocks
        }
        recovered: dict[str, bytes] = {}
        # Later-deleted files win name collisions; iterate oldest first.
        for inode in self._deleted:
            if any(index in live_blocks for index in inode.blocks):
                continue
            if self._blocks_overwritten(inode):
                continue
            recovered[inode.name] = self._read_inode(inode)
        return recovered

    def _blocks_overwritten(self, inode: Inode) -> bool:
        """Whether another *deleted* file reused these blocks afterwards."""
        for other in self._deleted:
            if other is inode or other.created_at <= inode.deleted_at:
                continue
            if set(other.blocks) & set(inode.blocks):
                return True
        return False

    def _read_inode(self, inode: Inode) -> bytes:
        data = b"".join(
            self.device.read_block(index) for index in inode.blocks
        )
        return data[: inode.size]

    def all_contents(self, include_deleted: bool = True) -> dict[str, bytes]:
        """Everything an exhaustive examiner can extract from the media.

        Live files plus (optionally) recoverable deleted files — the
        "search entire hard drive" of Table 1 scene 18.
        """
        contents = {name: self.read_file(name) for name in self._inodes}
        if include_deleted:
            for name, data in self.recover_deleted().items():
                contents.setdefault(f"(deleted) {name}", data)
        return contents
