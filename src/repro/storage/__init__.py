"""Storage substrate: block devices, filesystems, hashing, carving, mail.

Provides the at-rest world of the paper: seizable drives with recoverable
deleted files (scene 18 and section III.A.1(c)), signature carving, and a
mail store implementing the SCA's per-message provider-role lifecycle
(section III.A.3).
"""

from repro.storage.blockdev import BlockDevice, image_device
from repro.storage.carving import (
    DEFAULT_SIGNATURES,
    CarvedFile,
    FileSignature,
    carve,
)
from repro.storage.examiner import (
    ExaminationReport,
    ForensicExaminer,
    TimelineEvent,
    TimelineEventKind,
)
from repro.storage.filesystem import (
    FilesystemError,
    Inode,
    SimpleFilesystem,
)
from repro.storage.hashing import KnownFileSet, sha256_hex
from repro.storage.mailstore import MailProvider, Message

__all__ = [
    "BlockDevice",
    "CarvedFile",
    "DEFAULT_SIGNATURES",
    "ExaminationReport",
    "FileSignature",
    "FilesystemError",
    "ForensicExaminer",
    "Inode",
    "KnownFileSet",
    "MailProvider",
    "Message",
    "SimpleFilesystem",
    "TimelineEvent",
    "TimelineEventKind",
    "carve",
    "image_device",
    "sha256_hex",
]
