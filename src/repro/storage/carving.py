"""Signature-based file carving from raw device bytes.

Carving ignores the filesystem entirely: it scans the raw block stream for
known header/footer signatures and cuts out whatever lies between.  This is
how examiners recover files whose metadata is gone — including files the
filesystem's own recovery can no longer see.
"""

from __future__ import annotations

import dataclasses

from repro.storage.blockdev import BlockDevice


@dataclasses.dataclass(frozen=True)
class FileSignature:
    """A carvable file type: a header magic and a footer magic.

    The simulator writes "files" as text, so signatures are byte strings
    like ``b"JPEG["`` / ``b"]GEPJ"`` rather than real magic numbers; the
    carving algorithm is the real one (linear scan, nested-match safe).
    """

    name: str
    header: bytes
    footer: bytes

    def __post_init__(self) -> None:
        if not self.header or not self.footer:
            raise ValueError("header and footer must be non-empty")


#: Signatures used across the examples and tests.
DEFAULT_SIGNATURES: tuple[FileSignature, ...] = (
    FileSignature(name="jpeg", header=b"JPEG[", footer=b"]GEPJ"),
    FileSignature(name="pdf", header=b"PDF[", footer=b"]FDP"),
    FileSignature(name="zip", header=b"ZIP[", footer=b"]PIZ"),
)


@dataclasses.dataclass(frozen=True)
class CarvedFile:
    """One carved artifact: where it was found and what it contained."""

    signature: str
    start_offset: int
    end_offset: int
    contents: bytes


def carve(
    device: BlockDevice,
    signatures: tuple[FileSignature, ...] = DEFAULT_SIGNATURES,
) -> list[CarvedFile]:
    """Scan a device's raw bytes and carve every signature match.

    Args:
        device: The device (or image) to scan.
        signatures: File types to look for.

    Returns:
        Carved files ordered by start offset.  Contents *include* the
        header and footer so carved artifacts hash consistently.
    """
    raw = device.raw_bytes()
    carved: list[CarvedFile] = []
    for signature in signatures:
        position = 0
        while True:
            start = raw.find(signature.header, position)
            if start == -1:
                break
            end = raw.find(signature.footer, start + len(signature.header))
            if end == -1:
                break
            end_offset = end + len(signature.footer)
            carved.append(
                CarvedFile(
                    signature=signature.name,
                    start_offset=start,
                    end_offset=end_offset,
                    contents=raw[start:end_offset],
                )
            )
            position = end_offset
    carved.sort(key=lambda item: item.start_offset)
    return carved
