"""The forensic examination workflow (paper section III.A.2).

Once data is responsive to a warrant, "the Fourth Amendment does not limit
the techniques an examiner may use to examine a hard drive ... nor imposes
any specific limitation on the time period of the government's forensic
examination" (III.A.2(c), citing Long/Burns/Mutschelknaus).  This module
is that examiner: image, verify, enumerate, recover, carve, hash, and
timeline — everything an off-site lab does with a seized drive, packaged
as one auditable workflow.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.storage.blockdev import image_device
from repro.storage.carving import (
    DEFAULT_SIGNATURES,
    CarvedFile,
    FileSignature,
    carve,
)
from repro.storage.filesystem import SimpleFilesystem
from repro.storage.hashing import KnownFileSet, sha256_hex


class TimelineEventKind(enum.Enum):
    """Kinds of events the examiner places on the timeline."""

    FILE_CREATED = "file created"
    FILE_DELETED = "file deleted"
    FILE_RECOVERED = "deleted file recovered"
    ARTIFACT_CARVED = "artifact carved from unallocated space"
    KNOWN_FILE_HIT = "known-file hash hit"


@dataclasses.dataclass(frozen=True)
class TimelineEvent:
    """One event on the reconstructed timeline.

    Attributes:
        order: Logical timestamp (the filesystem's operation counter); the
            examiner orders events by it.
        kind: What happened.
        subject: The file or artifact involved.
        detail: Extra context (hash, offsets, ...).
    """

    order: float
    kind: TimelineEventKind
    subject: str
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class ExaminationReport:
    """Everything one examination produced.

    Attributes:
        image_hash: SHA-256 of the working image.
        image_verified: Whether the image matched the original bit for bit.
        live_files: Name -> hash of every live file.
        recovered_files: Name -> hash of every recovered deleted file.
        carved_artifacts: Signature-carved artifacts from the raw image.
        known_file_hits: Files (live or recovered) whose hashes matched
            the known set.
        timeline: Ordered reconstruction of filesystem activity.
    """

    image_hash: str
    image_verified: bool
    live_files: dict[str, str]
    recovered_files: dict[str, str]
    carved_artifacts: tuple[CarvedFile, ...]
    known_file_hits: tuple[str, ...]
    timeline: tuple[TimelineEvent, ...]

    @property
    def total_files_examined(self) -> int:
        """Live plus recovered files hashed during the examination."""
        return len(self.live_files) + len(self.recovered_files)

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"image {self.image_hash[:12]}… "
            f"({'verified' if self.image_verified else 'MISMATCH'}); "
            f"{len(self.live_files)} live files, "
            f"{len(self.recovered_files)} recovered, "
            f"{len(self.carved_artifacts)} carved artifacts, "
            f"{len(self.known_file_hits)} known-file hits, "
            f"{len(self.timeline)} timeline events"
        )


class ForensicExaminer:
    """Runs the full off-site examination over a seized filesystem.

    Args:
        known_files: Hash set to screen every file against.
        signatures: Carving signatures to hunt in unallocated space.
    """

    def __init__(
        self,
        known_files: KnownFileSet | None = None,
        signatures: tuple[FileSignature, ...] = DEFAULT_SIGNATURES,
    ) -> None:
        self.known_files = known_files or KnownFileSet()
        self.signatures = signatures

    def examine(self, filesystem: SimpleFilesystem) -> ExaminationReport:
        """Examine a seized filesystem end to end.

        The original device is imaged first and all analysis runs against
        the image's raw bytes plus the filesystem's metadata — the
        original is never modified (reads only).
        """
        # repro-lint: disable=REPRO110 -- the examiner images media that
        # was already seized under the warrant the scenario layer gated;
        # re-imaging in the lab is analysis of lawfully held evidence,
        # not a new acquisition requiring fresh process.
        image = image_device(filesystem.device)
        image_verified = image.sha256() == filesystem.device.sha256()

        live_files = {
            name: sha256_hex(filesystem.read_file(name))
            for name in filesystem.list_files()
        }
        recovered = {
            name: sha256_hex(data)
            for name, data in filesystem.recover_deleted().items()
        }
        carved = tuple(carve(image, self.signatures))

        hits = tuple(
            sorted(
                name
                for name, digest in {**live_files, **recovered}.items()
                if self.known_files.contains_hash(digest)
            )
        )

        timeline = self._build_timeline(
            filesystem, live_files, recovered, carved, set(hits)
        )
        return ExaminationReport(
            image_hash=image.sha256(),
            image_verified=image_verified,
            live_files=live_files,
            recovered_files=recovered,
            carved_artifacts=carved,
            known_file_hits=hits,
            timeline=timeline,
        )

    def _build_timeline(
        self,
        filesystem: SimpleFilesystem,
        live_files: dict[str, str],
        recovered: dict[str, str],
        carved: tuple[CarvedFile, ...],
        hits: set[str],
    ) -> tuple[TimelineEvent, ...]:
        events: list[TimelineEvent] = []
        for name in live_files:
            inode = filesystem._inodes[name]  # noqa: SLF001 - examiner reads metadata
            events.append(
                TimelineEvent(
                    order=inode.created_at,
                    kind=TimelineEventKind.FILE_CREATED,
                    subject=name,
                    detail=f"sha256={live_files[name][:12]}…",
                )
            )
        for inode in filesystem._deleted:  # noqa: SLF001
            events.append(
                TimelineEvent(
                    order=inode.created_at,
                    kind=TimelineEventKind.FILE_CREATED,
                    subject=inode.name,
                )
            )
            events.append(
                TimelineEvent(
                    order=inode.deleted_at,
                    kind=TimelineEventKind.FILE_DELETED,
                    subject=inode.name,
                )
            )
            if inode.name in recovered:
                events.append(
                    TimelineEvent(
                        order=inode.deleted_at,
                        kind=TimelineEventKind.FILE_RECOVERED,
                        subject=inode.name,
                        detail=f"sha256={recovered[inode.name][:12]}…",
                    )
                )
        for artifact in carved:
            events.append(
                TimelineEvent(
                    order=float("inf"),  # carving has no FS timestamp
                    kind=TimelineEventKind.ARTIFACT_CARVED,
                    subject=f"{artifact.signature}@{artifact.start_offset}",
                    detail=f"{len(artifact.contents)} bytes",
                )
            )
        for name in sorted(hits):
            events.append(
                TimelineEvent(
                    order=float("inf"),
                    kind=TimelineEventKind.KNOWN_FILE_HIT,
                    subject=name,
                )
            )
        events.sort(key=lambda e: (e.order, e.kind.value, e.subject))
        return tuple(events)
