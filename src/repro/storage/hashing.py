"""File hashing and known-file sets.

The substrate for Table 1 scene 18 (Crist): hash every file on a drive and
compare against a known-contraband hash set.  Also provides the integrity
digests used by imaging and chain-of-custody checks.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable


def sha256_hex(data: bytes | str) -> str:
    """Hex SHA-256 of bytes or text."""
    raw = data.encode() if isinstance(data, str) else data
    return hashlib.sha256(raw).hexdigest()


class KnownFileSet:
    """A set of known-file hashes (e.g. the NCMEC-style contraband list).

    Example::

        known = KnownFileSet.from_contents(["bad-picture-bytes"])
        known.contains_hash(sha256_hex("bad-picture-bytes"))  # True
    """

    def __init__(self, label: str = "known-files") -> None:
        self.label = label
        self._hashes: set[str] = set()

    @classmethod
    def from_contents(
        cls, contents: Iterable[bytes | str], label: str = "known-files"
    ) -> "KnownFileSet":
        """Build a set from raw file contents."""
        known = cls(label)
        for item in contents:
            known.add_content(item)
        return known

    def add_hash(self, digest: str) -> None:
        """Register a known hash (lowercased hex)."""
        self._hashes.add(digest.lower())

    def add_content(self, data: bytes | str) -> str:
        """Hash content and register it; returns the digest."""
        digest = sha256_hex(data)
        self.add_hash(digest)
        return digest

    def contains_hash(self, digest: str) -> bool:
        """Whether a digest is in the set."""
        return digest.lower() in self._hashes

    def contains_content(self, data: bytes | str) -> bool:
        """Whether content's hash is in the set."""
        return self.contains_hash(sha256_hex(data))

    def __len__(self) -> int:
        return len(self._hashes)

    def __contains__(self, digest: str) -> bool:
        return self.contains_hash(digest)
