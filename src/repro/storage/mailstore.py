"""An SCA-aware mail store: the Alice/Bob lifecycle of section III.A.3.

Every message tracks its lifecycle (sent → delivered → retrieved →
retained or deleted), and the provider's SCA role is computed *per
message*: ECS while the message awaits retrieval, RCS for retrieved mail
retained at a public provider, and NEITHER for retrieved mail on a
non-public provider — at which point the message "drops out of the SCA"
and only the Fourth Amendment governs access.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.action import InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import (
    Actor,
    DataKind,
    LegalSource,
    Place,
    ProcessKind,
    ProviderRole,
    Timing,
)
from repro.core.statutes.sca import (
    COMPELLED_DISCLOSURE_TIERS,
    classify_provider,
)

_message_ids = itertools.count(1)


@dataclasses.dataclass
class Message:
    """One e-mail message and its lifecycle state."""

    sender: str
    recipient: str
    subject: str
    body: str
    sent_at: float
    message_id: int = dataclasses.field(
        default_factory=lambda: next(_message_ids)
    )
    delivered_at: float | None = None
    retrieved: bool = False
    deleted: bool = False

    @property
    def in_transit(self) -> bool:
        """Whether the message has not yet reached the recipient's provider."""
        return self.delivered_at is None


class MailProvider:
    """A mail provider holding mailboxes, public or not.

    Args:
        name: Provider name (e.g. ``"gmail"`` or ``"cs.charlie.edu"``).
        serves_public: Whether the provider offers service to the public.
    """

    def __init__(self, name: str, serves_public: bool) -> None:
        self.name = name
        self.serves_public = serves_public
        self._mailboxes: dict[str, list[Message]] = {}

    def create_account(self, account: str) -> None:
        """Create an empty mailbox."""
        if account in self._mailboxes:
            raise ValueError(f"account exists: {account!r}")
        self._mailboxes[account] = []

    def deliver(self, message: Message, time: float) -> None:
        """Deliver an in-transit message into the recipient's mailbox.

        Raises:
            KeyError: If the recipient has no account here.
        """
        if message.recipient not in self._mailboxes:
            raise KeyError(f"no account {message.recipient!r} at {self.name}")
        message.delivered_at = time
        self._mailboxes[message.recipient].append(message)

    def retrieve(self, account: str, message_id: int) -> Message:
        """The user opens a message; the provider's role may change.

        Raises:
            KeyError: If the account or message is unknown.
        """
        message = self._find(account, message_id)
        message.retrieved = True
        return message

    def delete(self, account: str, message_id: int) -> None:
        """The user deletes a message from their mailbox."""
        message = self._find(account, message_id)
        message.deleted = True
        self._mailboxes[account].remove(message)

    def mailbox(self, account: str) -> list[Message]:
        """Messages currently stored for an account."""
        return list(self._mailboxes[account])

    def _find(self, account: str, message_id: int) -> Message:
        for message in self._mailboxes[account]:
            if message.message_id == message_id:
                return message
        raise KeyError(
            f"no message {message_id} in {account!r} at {self.name}"
        )

    # -- SCA analysis ------------------------------------------------------------

    def role_for(self, message: Message) -> ProviderRole:
        """This provider's SCA role with respect to one message."""
        return classify_provider(
            serves_public=self.serves_public,
            message_retrieved=message.retrieved,
        )

    def required_process_for(
        self, message: Message
    ) -> tuple[ProcessKind, LegalSource]:
        """What the government needs to compel this message's content.

        Returns:
            The required process and the body of law imposing it: the SCA
            tier for ECS/RCS messages, or the Fourth Amendment's warrant
            requirement once the message has dropped out of the SCA.
        """
        role = self.role_for(message)
        if role is ProviderRole.NEITHER:
            return ProcessKind.SEARCH_WARRANT, LegalSource.FOURTH_AMENDMENT
        return COMPELLED_DISCLOSURE_TIERS[DataKind.CONTENT], LegalSource.SCA

    def describe_compulsion(self, message: Message) -> InvestigativeAction:
        """The engine-ready action for compelling this message's content."""
        return InvestigativeAction(
            description=(
                f"compel content of message {message.message_id} "
                f"({message.subject!r}) from {self.name}"
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.STORED,
            context=EnvironmentContext(
                place=Place.THIRD_PARTY_PROVIDER,
                provider_serves_public=self.serves_public,
                provider_role=self.role_for(message),
            ),
        )
