"""Block devices and forensic imaging.

A :class:`BlockDevice` is a flat array of fixed-size blocks, the substrate
under :mod:`repro.storage.filesystem`.  :func:`image_device` produces the
bit-for-bit copy the paper's section III.A.2(b) discusses (imaging a target
drive for off-site examination), and device hashing supports the
chain-of-custody integrity checks in :mod:`repro.evidence`.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.faults.errors import StorageFault, TransientReadError
from repro.faults.plan import FaultKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faults.injector import FaultInjector


class BlockDevice:
    """A fixed-geometry block device storing bytes.

    Args:
        n_blocks: Number of blocks.
        block_size: Bytes per block.
        injector: Optional fault injector; reads may then fail
            transiently (``STORAGE_READ_ERROR``) or return silently
            corrupted data once (``STORAGE_BIT_ROT``).  Both faults are
            read-side only: the stored bytes are never mutated, so a
            re-read can recover the true contents — which is why imaging
            verifies hashes and re-reads rather than trusting one pass.
    """

    def __init__(
        self,
        n_blocks: int = 1024,
        block_size: int = 512,
        injector: "FaultInjector | None" = None,
    ) -> None:
        if n_blocks <= 0 or block_size <= 0:
            raise ValueError("device geometry must be positive")
        self.n_blocks = n_blocks
        self.block_size = block_size
        self.injector = injector
        self._blocks: list[bytes] = [b"\x00" * block_size] * n_blocks
        self.reads = 0
        self.writes = 0
        self.read_errors = 0
        self.corrupted_reads = 0

    @property
    def capacity(self) -> int:
        """Total capacity in bytes."""
        return self.n_blocks * self.block_size

    def read_block(self, index: int) -> bytes:
        """Read one block.

        Raises:
            IndexError: On an out-of-range block index.
            TransientReadError: If an injected read fault fires; the
                underlying data is unharmed and a re-read may succeed.
        """
        self._check(index)
        self.reads += 1
        if self.injector is not None:
            target = f"blockdev:{index}"
            if self.injector.fires(
                FaultKind.STORAGE_READ_ERROR, target=target
            ):
                self.read_errors += 1
                raise TransientReadError(
                    f"read error at block {index}",
                    kind=FaultKind.STORAGE_READ_ERROR,
                    target=target,
                )
            if self.injector.fires(FaultKind.STORAGE_BIT_ROT, target=target):
                self.corrupted_reads += 1
                block = bytearray(self._blocks[index])
                block[0] ^= 0x01
                return bytes(block)
        return self._blocks[index]

    def write_block(self, index: int, data: bytes) -> None:
        """Write one block, zero-padding short data.

        Raises:
            IndexError: On an out-of-range block index.
            ValueError: If ``data`` exceeds the block size.
        """
        self._check(index)
        if len(data) > self.block_size:
            raise ValueError(
                f"data ({len(data)} bytes) exceeds block size "
                f"({self.block_size})"
            )
        self.writes += 1
        self._blocks[index] = data.ljust(self.block_size, b"\x00")

    def write_partial(self, index: int, data: bytes) -> None:
        """Overwrite only the block's prefix, preserving the tail.

        This is how real filesystems write: the bytes past the logical
        end of the new data keep whatever was there before — **slack
        space** — which is why fragments of deleted files survive inside
        newer, smaller files and remain carvable.

        Raises:
            IndexError: On an out-of-range block index.
            ValueError: If ``data`` exceeds the block size.
        """
        self._check(index)
        if len(data) > self.block_size:
            raise ValueError(
                f"data ({len(data)} bytes) exceeds block size "
                f"({self.block_size})"
            )
        self.writes += 1
        old = self._blocks[index]
        self._blocks[index] = data + old[len(data):]

    def _check(self, index: int) -> None:
        if not 0 <= index < self.n_blocks:
            raise IndexError(f"block {index} out of range 0..{self.n_blocks - 1}")

    def raw_bytes(self) -> bytes:
        """The entire device contents as one byte string."""
        return b"".join(self._blocks)

    def sha256(self) -> str:
        """Hex digest of the whole device (imaging integrity check)."""
        return hashlib.sha256(self.raw_bytes()).hexdigest()


def image_device(
    source: BlockDevice, max_attempts: int = 3
) -> BlockDevice:
    """Produce a bit-for-bit forensic image of a device, verified.

    Blocks are read through the device's public read path, so injected
    read errors and bit-rot hit the imaging process like they would a
    real write-blocker.  Each block gets up to ``max_attempts`` reads on
    transient errors; after the pass the whole image's SHA-256 is checked
    against the source and, on a mismatch (silent corruption), the image
    is re-read from scratch.  Callers should still record both hashes in
    the chain of custody.

    Raises:
        StorageFault: If a verified image could not be produced within
            ``max_attempts`` passes.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1: {max_attempts}")
    expected = source.sha256()
    for _attempt in range(max_attempts):
        copy = BlockDevice(
            n_blocks=source.n_blocks, block_size=source.block_size
        )
        try:
            for index in range(source.n_blocks):
                copy._blocks[index] = _read_with_retry(
                    source, index, max_attempts
                )
        except TransientReadError:
            continue
        if copy.sha256() == expected:
            return copy
    raise StorageFault(
        f"imaging failed: no verified image within {max_attempts} passes",
        kind=FaultKind.STORAGE_BIT_ROT,
        target="blockdev:image",
    )


def _read_with_retry(
    source: BlockDevice, index: int, max_attempts: int
) -> bytes:
    """Read one block, retrying transient errors up to ``max_attempts``."""
    for attempt in range(max_attempts):
        try:
            return source.read_block(index)
        except TransientReadError:
            if attempt == max_attempts - 1:
                raise
    raise AssertionError("unreachable: loop returns or raises")
