"""Block devices and forensic imaging.

A :class:`BlockDevice` is a flat array of fixed-size blocks, the substrate
under :mod:`repro.storage.filesystem`.  :func:`image_device` produces the
bit-for-bit copy the paper's section III.A.2(b) discusses (imaging a target
drive for off-site examination), and device hashing supports the
chain-of-custody integrity checks in :mod:`repro.evidence`.
"""

from __future__ import annotations

import hashlib


class BlockDevice:
    """A fixed-geometry block device storing bytes.

    Args:
        n_blocks: Number of blocks.
        block_size: Bytes per block.
    """

    def __init__(self, n_blocks: int = 1024, block_size: int = 512) -> None:
        if n_blocks <= 0 or block_size <= 0:
            raise ValueError("device geometry must be positive")
        self.n_blocks = n_blocks
        self.block_size = block_size
        self._blocks: list[bytes] = [b"\x00" * block_size] * n_blocks
        self.reads = 0
        self.writes = 0

    @property
    def capacity(self) -> int:
        """Total capacity in bytes."""
        return self.n_blocks * self.block_size

    def read_block(self, index: int) -> bytes:
        """Read one block.

        Raises:
            IndexError: On an out-of-range block index.
        """
        self._check(index)
        self.reads += 1
        return self._blocks[index]

    def write_block(self, index: int, data: bytes) -> None:
        """Write one block, zero-padding short data.

        Raises:
            IndexError: On an out-of-range block index.
            ValueError: If ``data`` exceeds the block size.
        """
        self._check(index)
        if len(data) > self.block_size:
            raise ValueError(
                f"data ({len(data)} bytes) exceeds block size "
                f"({self.block_size})"
            )
        self.writes += 1
        self._blocks[index] = data.ljust(self.block_size, b"\x00")

    def write_partial(self, index: int, data: bytes) -> None:
        """Overwrite only the block's prefix, preserving the tail.

        This is how real filesystems write: the bytes past the logical
        end of the new data keep whatever was there before — **slack
        space** — which is why fragments of deleted files survive inside
        newer, smaller files and remain carvable.

        Raises:
            IndexError: On an out-of-range block index.
            ValueError: If ``data`` exceeds the block size.
        """
        self._check(index)
        if len(data) > self.block_size:
            raise ValueError(
                f"data ({len(data)} bytes) exceeds block size "
                f"({self.block_size})"
            )
        self.writes += 1
        old = self._blocks[index]
        self._blocks[index] = data + old[len(data):]

    def _check(self, index: int) -> None:
        if not 0 <= index < self.n_blocks:
            raise IndexError(f"block {index} out of range 0..{self.n_blocks - 1}")

    def raw_bytes(self) -> bytes:
        """The entire device contents as one byte string."""
        return b"".join(self._blocks)

    def sha256(self) -> str:
        """Hex digest of the whole device (imaging integrity check)."""
        return hashlib.sha256(self.raw_bytes()).hexdigest()


def image_device(source: BlockDevice) -> BlockDevice:
    """Produce a bit-for-bit forensic image of a device.

    The copy has identical geometry and contents; callers should verify
    ``image.sha256() == source.sha256()`` and record both in the chain of
    custody.
    """
    copy = BlockDevice(n_blocks=source.n_blocks, block_size=source.block_size)
    for index in range(source.n_blocks):
        copy._blocks[index] = source._blocks[index]
    return copy
