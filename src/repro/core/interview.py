"""A guided interview that turns plain facts into an engine-ready action.

The paper closes by telling researchers to "follow this table to conduct
their research in computer forensics."  The interview is that table as a
wizard: it asks only the questions relevant to the situation described so
far, assembles an :class:`~repro.core.action.InvestigativeAction`, and
hands back the engine's ruling plus the advisor-style recommendation.

Programmatic use::

    interview = ActionInterview()
    while not interview.finished:
        question = interview.current_question()
        interview.answer(my_answers[question.field])
    ruling = ComplianceEngine().evaluate(interview.build("my technique"))
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.core.action import ConsentFacts, DoctrineFacts, InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, ConsentScope, DataKind, Place, Timing

Answers = dict[str, object]


@dataclasses.dataclass(frozen=True)
class Question:
    """One interview question.

    Attributes:
        field: Stable identifier for the answer slot.
        prompt: Human-readable question text.
        choices: Allowed answers — enum members or the booleans.
        applies: Whether the question is relevant given prior answers.
    """

    field: str
    prompt: str
    choices: tuple[object, ...]
    applies: Callable[[Answers], bool] = lambda answers: True

    def validate(self, value: object) -> None:
        """Reject answers outside the allowed choices."""
        if value not in self.choices:
            raise ValueError(
                f"{self.field}: {value!r} is not one of {self.choices}"
            )


def _is_network_collection(answers: Answers) -> bool:
    return answers.get("timing") is Timing.REAL_TIME


def _at_provider(answers: Answers) -> bool:
    return answers.get("place") is Place.THIRD_PARTY_PROVIDER


def _has_consent(answers: Answers) -> bool:
    scope = answers.get("consent_scope")
    return scope is not None and scope is not ConsentScope.NONE


_BOOL = (True, False)

QUESTIONS: tuple[Question, ...] = (
    Question(
        field="actor",
        prompt="Who performs the acquisition?",
        choices=tuple(Actor),
    ),
    Question(
        field="data_kind",
        prompt="What category of data is acquired?",
        choices=tuple(DataKind),
    ),
    Question(
        field="timing",
        prompt="Is the data acquired in real time or from storage?",
        choices=tuple(Timing),
    ),
    Question(
        field="place",
        prompt="Where does the data live when acquired?",
        choices=tuple(Place),
    ),
    Question(
        field="encrypted",
        prompt="Is the observed channel or data encrypted?",
        choices=_BOOL,
        applies=_is_network_collection,
    ),
    Question(
        field="knowingly_exposed",
        prompt="Was the data knowingly exposed to others or the public?",
        choices=_BOOL,
    ),
    Question(
        field="policy_eliminates_rep",
        prompt="Does a policy/banner eliminate privacy on this network?",
        choices=_BOOL,
        applies=_is_network_collection,
    ),
    Question(
        field="provider_serves_public",
        prompt="Does the provider offer its service to the public?",
        choices=_BOOL,
        applies=_at_provider,
    ),
    Question(
        field="delivered_to_recipient",
        prompt="Has the communication already been delivered/opened?",
        choices=_BOOL,
        applies=_at_provider,
    ),
    Question(
        field="consent_scope",
        prompt="Who, if anyone, consented to the acquisition?",
        choices=tuple(ConsentScope),
    ),
    Question(
        field="consent_covers_target",
        prompt="Does the consent cover the specific data acquired?",
        choices=_BOOL,
        applies=_has_consent,
    ),
    Question(
        field="monitoring_own_network",
        prompt="Is the actor observing a network it owns or operates?",
        choices=_BOOL,
        applies=_is_network_collection,
    ),
    Question(
        field="victim_invited_monitoring",
        prompt="Did an attack victim invite monitoring of the intruder?",
        choices=_BOOL,
        applies=_is_network_collection,
    ),
    Question(
        field="exigent_circumstances",
        prompt="Are there exigent circumstances (destruction, danger)?",
        choices=_BOOL,
    ),
)


class ActionInterview:
    """Sequential wizard assembling an investigative action."""

    def __init__(self) -> None:
        self._answers: Answers = {}
        self._index = 0
        self._advance()

    @property
    def finished(self) -> bool:
        """Whether every applicable question has been answered."""
        return self._index >= len(QUESTIONS)

    @property
    def answers(self) -> Answers:
        """A copy of the answers so far."""
        return dict(self._answers)

    def current_question(self) -> Question:
        """The question awaiting an answer.

        Raises:
            RuntimeError: If the interview is already finished.
        """
        if self.finished:
            raise RuntimeError("interview is finished")
        return QUESTIONS[self._index]

    def answer(self, value: object) -> None:
        """Answer the current question and advance."""
        question = self.current_question()
        question.validate(value)
        self._answers[question.field] = value
        self._index += 1
        self._advance()

    def _advance(self) -> None:
        while (
            self._index < len(QUESTIONS)
            and not QUESTIONS[self._index].applies(self._answers)
        ):
            self._index += 1

    def build(self, description: str) -> InvestigativeAction:
        """Assemble the action from the collected answers.

        Raises:
            RuntimeError: If the interview is not finished.
        """
        if not self.finished:
            raise RuntimeError(
                f"interview incomplete: next question is "
                f"{self.current_question().field!r}"
            )
        answers = self._answers
        context = EnvironmentContext(
            place=answers["place"],
            encrypted=bool(answers.get("encrypted", False)),
            knowingly_exposed=bool(answers.get("knowingly_exposed", False)),
            policy_eliminates_rep=bool(
                answers.get("policy_eliminates_rep", False)
            ),
            provider_serves_public=answers.get("provider_serves_public"),
            delivered_to_recipient=bool(
                answers.get("delivered_to_recipient", False)
            ),
        )
        consent = ConsentFacts(
            scope=answers.get("consent_scope", ConsentScope.NONE),
            covers_target_data=bool(
                answers.get("consent_covers_target", True)
            ),
        )
        doctrine = DoctrineFacts(
            monitoring_own_network=bool(
                answers.get("monitoring_own_network", False)
            ),
            victim_invited_monitoring=bool(
                answers.get("victim_invited_monitoring", False)
            ),
            exigent_circumstances=bool(
                answers.get("exigent_circumstances", False)
            ),
        )
        return InvestigativeAction(
            description=description,
            actor=answers["actor"],
            data_kind=answers["data_kind"],
            timing=answers["timing"],
            context=context,
            consent=consent,
            doctrine=doctrine,
        )


def run_interview(answers: Answers, description: str) -> InvestigativeAction:
    """One-shot convenience: feed a full answer dict through the wizard.

    Only applicable questions are consumed; extra keys are ignored.

    Raises:
        KeyError: If an applicable question has no answer in the dict.
    """
    interview = ActionInterview()
    while not interview.finished:
        question = interview.current_question()
        if question.field not in answers:
            raise KeyError(
                f"missing answer for applicable question "
                f"{question.field!r}"
            )
        interview.answer(answers[question.field])
    return interview.build(description)
