"""Warrant scope: particularity, made operational.

Section III.A.2(a) of the paper: "a good technique can identify records
that only relate to a particular crime and to include specific categories
of the types of records likely to be found", and "If the investigation
involves multiple locations, agents should obtain multiple warrants".

A :class:`WarrantScope` captures what one warrant authorizes — the place,
the crime under investigation, and the record categories named — and the
checking helpers classify each examined record as in scope, plain-view
seizable, or out of scope.
"""

from __future__ import annotations

import dataclasses
import enum


class ScopeDecision(enum.Enum):
    """How one examined record relates to the warrant's scope."""

    #: Named category, authorized location: seize under the warrant.
    IN_SCOPE = "in scope"
    #: Outside the named categories but incriminating on its face and
    #: encountered from a lawful vantage: seizable under plain view; a
    #: fresh warrant for the new crime is the prudent next step.
    PLAIN_VIEW = "plain view"
    #: Outside the scope and not facially incriminating: may not be seized.
    OUT_OF_SCOPE = "out of scope"
    #: Stored at a location the warrant does not cover: a separate
    #: warrant is required no matter the category.
    WRONG_LOCATION = "wrong location"


@dataclasses.dataclass(frozen=True)
class WarrantScope:
    """What one warrant authorizes.

    Attributes:
        place: The place to be searched (one warrant, one place).
        crime: The crime under investigation.
        categories: Record categories named in the warrant (e.g.
            ``{"financial-records", "email"}``).
        locations: Data locations the warrant reaches.  Network searches
            that would pull data from other locations need further
            warrants (Walser; paper section III.A.2(a)).
    """

    place: str
    crime: str
    categories: frozenset[str]
    locations: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.place:
            raise ValueError("a warrant must particularly describe a place")
        if not self.categories:
            raise ValueError(
                "a warrant must name the categories of records sought"
            )
        if not self.locations:
            object.__setattr__(
                self, "locations", frozenset({self.place})
            )

    def covers_category(self, category: str) -> bool:
        """Whether a record category is named in the warrant."""
        return category in self.categories

    def covers_location(self, location: str) -> bool:
        """Whether a data location is within the warrant's reach."""
        return location in self.locations


@dataclasses.dataclass(frozen=True)
class ExaminedRecord:
    """One record encountered during a warrant-scoped search.

    Attributes:
        name: Record identifier.
        category: Record category (matched against the scope).
        location: Where the record physically lives.
        incriminating_apparent: Whether the record's incriminating
            character is immediately apparent (the plain-view predicate).
    """

    name: str
    category: str
    location: str
    incriminating_apparent: bool = False


def classify_record(
    scope: WarrantScope, record: ExaminedRecord
) -> ScopeDecision:
    """Classify one examined record against a warrant's scope."""
    if not scope.covers_location(record.location):
        return ScopeDecision.WRONG_LOCATION
    if scope.covers_category(record.category):
        return ScopeDecision.IN_SCOPE
    if record.incriminating_apparent:
        return ScopeDecision.PLAIN_VIEW
    return ScopeDecision.OUT_OF_SCOPE


def locations_requiring_new_warrants(
    scope: WarrantScope, records: list[ExaminedRecord]
) -> frozenset[str]:
    """Locations touched by a search that this warrant does not cover.

    Each returned location needs its own warrant before its data may be
    examined (the multi-location rule).
    """
    return frozenset(
        record.location
        for record in records
        if not scope.covers_location(record.location)
    )
