"""The Katz reasonable-expectation-of-privacy (REP) analyzer.

Implements the two-prong test of Katz v. United States as the paper frames
it (section II.C): a person deserves reasonable privacy if (1) they actually
expect privacy and (2) society is prepared to recognize that expectation as
reasonable.  The analyzer consumes an :class:`InvestigativeAction` and
produces a :class:`PrivacyFinding` with a full reasoning trace.
"""

from __future__ import annotations

from repro.core.action import InvestigativeAction
from repro.core.enums import DataKind, LegalSource, Place
from repro.core.ruling import PrivacyFinding, ReasoningStep


def analyze_privacy(action: InvestigativeAction) -> PrivacyFinding:
    """Run the Katz test for the target of an investigative action.

    Args:
        action: The acquisition whose target's privacy is being assessed.

    Returns:
        A :class:`PrivacyFinding` with both prongs and the reasoning steps
        that determined them.
    """
    subjective, subjective_steps = _subjective_prong(action)
    objective, objective_steps = _objective_prong(action)
    return PrivacyFinding(
        subjective_expectation=subjective,
        objectively_reasonable=objective,
        steps=tuple(subjective_steps + objective_steps),
    )


def _subjective_prong(
    action: InvestigativeAction,
) -> tuple[bool, list[ReasoningStep]]:
    """Katz prong one: did the person actually expect privacy?"""
    ctx = action.context
    steps: list[ReasoningStep] = []

    if ctx.is_public_exposure():
        steps.append(
            ReasoningStep(
                source=LegalSource.DOCTRINE,
                text=(
                    "Information knowingly exposed, shared, abandoned, or "
                    "placed in public evidences no actual expectation of "
                    "privacy."
                ),
                authorities=("gorshkov", "king_shared_folder", "stults_p2p"),
            )
        )
        return False, steps

    if ctx.encrypted:
        steps.append(
            ReasoningStep(
                source=LegalSource.DOCTRINE,
                text=(
                    "Encrypting the channel manifests an actual, subjective "
                    "expectation of privacy (the shut phone-booth door)."
                ),
                authorities=("katz",),
            )
        )
        return True, steps

    steps.append(
        ReasoningStep(
            source=LegalSource.DOCTRINE,
            text=(
                "Data kept in a non-public place is treated like a closed "
                "container; an actual expectation of privacy is presumed."
            ),
            authorities=("katz", "doj_manual"),
        )
    )
    return True, steps


def _objective_prong(
    action: InvestigativeAction,
) -> tuple[bool, list[ReasoningStep]]:
    """Katz prong two: is the expectation one society accepts as reasonable?"""
    ctx = action.context
    steps: list[ReasoningStep] = []

    if ctx.is_public_exposure():
        steps.append(
            ReasoningStep(
                source=LegalSource.DOCTRINE,
                text=(
                    "Society recognizes no reasonable privacy in information "
                    "exposed to the public or voluntarily shared with others."
                ),
                authorities=("gorshkov", "stults_p2p"),
            )
        )
        return False, steps

    if ctx.policy_eliminates_rep:
        steps.append(
            ReasoningStep(
                source=LegalSource.DOCTRINE,
                text=(
                    "An applicable network policy (banner / terms of "
                    "service) eliminates users' expectation of privacy on "
                    "this network."
                ),
                authorities=("doj_manual",),
            )
        )
        return False, steps

    if ctx.delivered_to_recipient:
        steps.append(
            ReasoningStep(
                source=LegalSource.DOCTRINE,
                text=(
                    "The sender's expectation of privacy in a communication "
                    "terminates upon delivery to the recipient."
                ),
                authorities=("king_delivery",),
            )
        )
        return False, steps

    if (
        action.data_kind
        in (
            DataKind.NON_CONTENT,
            DataKind.SUBSCRIBER_INFO,
            DataKind.TRANSACTIONAL_RECORD,
        )
        and ctx.place
        in (Place.THIRD_PARTY_PROVIDER, Place.TRANSMISSION_PATH)
    ):
        steps.append(
            ReasoningStep(
                source=LegalSource.DOCTRINE,
                text=(
                    "Addressing and subscriber information voluntarily "
                    "conveyed to a provider carries no constitutional "
                    "privacy expectation (third-party doctrine); statutory "
                    "protection may still apply."
                ),
                authorities=("smith_v_maryland", "forrester"),
            )
        )
        return False, steps

    if ctx.place is Place.WIRELESS_BROADCAST:
        return _wireless_objective(action, steps)

    if ctx.home_interior and not ctx.technology_in_general_public_use:
        steps.append(
            ReasoningStep(
                source=LegalSource.DOCTRINE,
                text=(
                    "Sense-enhancing technology not in general public use "
                    "that reveals details of the home interior invades a "
                    "reasonable expectation of privacy."
                ),
                authorities=("kyllo",),
            )
        )
        return True, steps

    steps.append(
        ReasoningStep(
            source=LegalSource.DOCTRINE,
            text=(
                "Electronic storage and private communications are "
                "analogous to closed containers; society recognizes the "
                "expectation of privacy in them as reasonable."
            ),
            authorities=("katz", "doj_manual"),
        )
    )
    return True, steps


def _wireless_objective(
    action: InvestigativeAction, steps: list[ReasoningStep]
) -> tuple[bool, list[ReasoningStep]]:
    """Objective prong for traffic broadcast over the air (Table 1 rows 3-6).

    The paper's authors judge (rows marked ``(*)``) that addressing headers
    radiated beyond the home are analogous to the address on an envelope —
    no reasonable expectation — while payload contents retain a reasonable
    expectation whether or not the link is encrypted (the Google Street
    View controversy).
    """
    if action.data_kind is DataKind.CONTENT:
        steps.append(
            ReasoningStep(
                source=LegalSource.DOCTRINE,
                text=(
                    "Payload contents retain a reasonable expectation of "
                    "privacy even when radiated over an open wireless link "
                    "(authors' judgment; cf. the Street View episode)."
                ),
                authorities=("paper_judgment",),
            )
        )
        return True, steps

    steps.append(
        ReasoningStep(
            source=LegalSource.DOCTRINE,
            text=(
                "Link/IP/transport headers broadcast over the air are "
                "analogous to the address on an envelope and carry no "
                "reasonable expectation of privacy (authors' judgment; "
                "cf. WarDriving)."
            ),
            authorities=("paper_judgment", "smith_v_maryland"),
        )
    )
    return False, steps
