"""Environment context: where and how the targeted data lives.

The compliance engine's constitutional analysis (reasonable expectation of
privacy) depends almost entirely on environmental facts — was the data
knowingly exposed, shared, delivered, broadcast, held by a provider, inside
a home — rather than on the investigator's intent.  This module captures
those facts in one explicit, immutable record.
"""

from __future__ import annotations

import dataclasses

from repro.core.enums import Place, ProviderRole


@dataclasses.dataclass(frozen=True)
class EnvironmentContext:
    """Facts about the environment in which the targeted data lives.

    Attributes:
        place: Where the data is when acquired.
        encrypted: Whether the data is encrypted in the observed channel.
            Encryption evidences a subjective expectation of privacy (the
            Katz first prong) but does not by itself create an objective
            one for addressing data broadcast in the clear.
        knowingly_exposed: The data was knowingly exposed to another person
            or to the public (Gorshkov; paper section II.C.2).  Exposed
            information carries no reasonable expectation of privacy.
        shared_with_others: The data sits in a folder/share deliberately
            made available to other users (King (11th Cir.); Stults).
        delivered_to_recipient: The communication has already been
            delivered; the *sender's* expectation terminates upon delivery
            (King (6th Cir.)).
        provider_serves_public: For data held at a provider, whether the
            provider offers its service to the public.  Non-public
            providers (a university mail server) are neither ECS nor RCS
            for opened mail, which then "drops out of the SCA"
            (Andersen Consulting).
        provider_role: SCA classification of the provider with respect to
            this specific message, if known.  ``None`` means "derive it".
        policy_eliminates_rep: A binner/terms-of-service/workplace policy
            eliminates users' expectation of privacy on this network
            (Table 1 scene 2).
        home_interior: The acquisition reveals information about the
            interior of a home (the Kyllo factor).
        technology_in_general_public_use: Whether the sense-enhancing
            technology used is in general public use (the other Kyllo
            factor); irrelevant unless ``home_interior`` is set.
        abandoned: The data or device was abandoned by its owner.
    """

    place: Place
    encrypted: bool = False
    knowingly_exposed: bool = False
    shared_with_others: bool = False
    delivered_to_recipient: bool = False
    provider_serves_public: bool | None = None
    provider_role: ProviderRole | None = None
    policy_eliminates_rep: bool = False
    home_interior: bool = False
    technology_in_general_public_use: bool = False
    abandoned: bool = False

    def is_public_exposure(self) -> bool:
        """Whether the data is exposed in a way that defeats privacy.

        Any of: physically public place, knowing exposure, sharing, or
        abandonment (paper section II.C.2).
        """
        return (
            self.place is Place.PUBLIC
            or self.knowingly_exposed
            or self.shared_with_others
            or self.abandoned
        )

    def at_provider(self) -> bool:
        """Whether the data is held by a third-party service provider."""
        return self.place is Place.THIRD_PARTY_PROVIDER
