"""Rulings: the compliance engine's structured output.

A :class:`Ruling` records the process an action requires, the bodies of law
that impose requirements, every exception that applied, and a full reasoning
trace with citations — the executable analogue of the paper's per-scene
analysis.
"""

from __future__ import annotations

import dataclasses

from repro.core.enums import ExceptionKind, LegalSource, ProcessKind


@dataclasses.dataclass(frozen=True)
class ReasoningStep:
    """One step in a ruling's reasoning trace.

    Attributes:
        source: Which body of law the step applies.
        text: The conclusion the step draws, in plain English.
        authorities: Citation keys into the
            :class:`~repro.core.caselaw.AuthorityRegistry`.
    """

    source: LegalSource
    text: str
    authorities: tuple[str, ...] = ()

    def __str__(self) -> str:
        cites = f" [{', '.join(self.authorities)}]" if self.authorities else ""
        return f"({self.source.value}) {self.text}{cites}"


@dataclasses.dataclass(frozen=True)
class Requirement:
    """A process requirement imposed by one body of law.

    Attributes:
        source: The imposing body of law.
        process: The minimum process that body demands.
        steps: The reasoning that produced the requirement.
    """

    source: LegalSource
    process: ProcessKind
    steps: tuple[ReasoningStep, ...] = ()


@dataclasses.dataclass(frozen=True)
class PrivacyFinding:
    """Outcome of the Katz reasonable-expectation-of-privacy analysis.

    Attributes:
        subjective_expectation: Katz prong one — did the person actually
            expect privacy?
        objectively_reasonable: Katz prong two — is that expectation one
            society recognizes as reasonable?
        steps: Reasoning trace for the finding.
    """

    subjective_expectation: bool
    objectively_reasonable: bool
    steps: tuple[ReasoningStep, ...] = ()

    @property
    def has_rep(self) -> bool:
        """Reasonable expectation of privacy exists only if both prongs hold."""
        return self.subjective_expectation and self.objectively_reasonable


@dataclasses.dataclass(frozen=True)
class AppliedException:
    """An exception that eliminated or reduced a requirement.

    Attributes:
        kind: Which exception applied.
        eliminates: The legal sources whose requirements it removes.
        step: The reasoning step explaining the exception.
    """

    kind: ExceptionKind
    eliminates: frozenset[LegalSource]
    step: ReasoningStep


@dataclasses.dataclass(frozen=True)
class Ruling:
    """The engine's complete answer for one investigative action.

    Attributes:
        required_process: The minimum process the action requires after
            exceptions; :attr:`~repro.core.enums.ProcessKind.NONE` means
            the action is lawful without any process (a "No need" row in
            Table 1).
        requirements: The pre-exception requirements per legal source.
        exceptions: The exceptions that applied.
        privacy: The REP finding underlying the constitutional analysis.
        steps: Flattened reasoning trace, in the order rules fired.
    """

    required_process: ProcessKind
    requirements: tuple[Requirement, ...]
    exceptions: tuple[AppliedException, ...]
    privacy: PrivacyFinding
    steps: tuple[ReasoningStep, ...]

    @property
    def needs_process(self) -> bool:
        """Table-1 style binary answer: does the scene need legal process?"""
        return self.required_process is not ProcessKind.NONE

    @property
    def governing_sources(self) -> tuple[LegalSource, ...]:
        """The sources that imposed (pre-exception) requirements."""
        return tuple(r.source for r in self.requirements)

    def permits(self, held: ProcessKind) -> bool:
        """Whether an investigator holding ``held`` may lawfully proceed."""
        return held.satisfies(self.required_process)

    def explain(self) -> str:
        """Multi-line human-readable explanation of the ruling."""
        lines = [f"Required process: {self.required_process.display_name}"]
        if self.requirements:
            lines.append("Requirements imposed:")
            lines.extend(
                f"  - {r.source.value}: {r.process.display_name}"
                for r in self.requirements
            )
        if self.exceptions:
            lines.append("Exceptions applied:")
            lines.extend(f"  - {e.kind.value}" for e in self.exceptions)
        lines.append("Reasoning:")
        lines.extend(f"  {i + 1}. {step}" for i, step in enumerate(self.steps))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-serializable view of the ruling.

        Useful for piping rulings into external tooling; round-trips
        through ``json.dumps`` without custom encoders.
        """
        return {
            "required_process": self.required_process.name,
            "needs_process": self.needs_process,
            "requirements": [
                {
                    "source": requirement.source.value,
                    "process": requirement.process.name,
                }
                for requirement in self.requirements
            ],
            "exceptions": [
                {
                    "kind": exception.kind.value,
                    "eliminates": sorted(
                        source.value for source in exception.eliminates
                    ),
                }
                for exception in self.exceptions
            ],
            "privacy": {
                "subjective_expectation": (
                    self.privacy.subjective_expectation
                ),
                "objectively_reasonable": (
                    self.privacy.objectively_reasonable
                ),
                "has_rep": self.privacy.has_rep,
            },
            "reasoning": [
                {
                    "source": step.source.value,
                    "text": step.text,
                    "authorities": list(step.authorities),
                }
                for step in self.steps
            ],
        }
