"""Exceptions raised when an action would violate the legal framework.

Substrates (the ISP disclosure API, the investigator pipeline) raise these
when asked to do something the compliance engine says requires process the
caller does not hold.  Catching :class:`LegalViolation` and proceeding
anyway is exactly what gets evidence suppressed in
:mod:`repro.court.suppression`.
"""

from __future__ import annotations

from repro.core.enums import ProcessKind


class LegalViolation(Exception):
    """An action that the legal framework forbids as attempted."""


class InsufficientProcess(LegalViolation):
    """The actor holds weaker process than the action requires.

    Attributes:
        required: The process the action requires.
        held: The process the actor actually holds.
    """

    def __init__(
        self, required: ProcessKind, held: ProcessKind, what: str
    ) -> None:
        self.required = required
        self.held = held
        self.what = what
        super().__init__(
            f"{what}: requires {required.display_name}, "
            f"but actor holds {held.display_name}"
        )


class ConsentViolation(LegalViolation):
    """A search exceeded or continued past the scope of a consent."""


class StalenessError(LegalViolation):
    """Process relied on after it expired or was revoked."""
