"""A machine-readable database of the authorities the paper relies on.

Each :class:`Authority` is either a court case, a statute section, or the
paper itself (for the rows of Table 1 the authors marked ``(*)`` as their own
judgment).  Rulings produced by the compliance engine carry citation keys
into this registry so every conclusion is traceable to its source, exactly
the way the paper footnotes each doctrinal statement.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Iterator


class AuthorityKind(enum.Enum):
    """What kind of legal authority a citation refers to."""

    CONSTITUTION = "constitution"
    STATUTE = "statute"
    CASE = "case"
    SECONDARY = "secondary"  # treatises, DOJ manual, the paper itself


@dataclasses.dataclass(frozen=True)
class Authority:
    """One citable authority.

    Attributes:
        key: Short stable identifier used by reasoning steps.
        kind: The authority's kind.
        citation: Bluebook-ish citation string.
        holding: One-sentence statement of what the authority stands for,
            phrased the way the paper uses it.
    """

    key: str
    kind: AuthorityKind
    citation: str
    holding: str


class AuthorityRegistry:
    """Registry of authorities, keyed by their short identifier."""

    def __init__(self) -> None:
        self._authorities: dict[str, Authority] = {}

    def add(self, authority: Authority) -> None:
        """Register an authority; duplicate keys are a programming error."""
        if authority.key in self._authorities:
            raise ValueError(f"duplicate authority key: {authority.key!r}")
        self._authorities[authority.key] = authority

    def get(self, key: str) -> Authority:
        """Look up an authority by key; raises ``KeyError`` if unknown."""
        return self._authorities[key]

    def __contains__(self, key: str) -> bool:
        return key in self._authorities

    def __len__(self) -> int:
        return len(self._authorities)

    def __iter__(self) -> Iterator[Authority]:
        return iter(self._authorities.values())

    def cases(self) -> list[Authority]:
        """All registered court cases."""
        return [a for a in self if a.kind is AuthorityKind.CASE]


def build_default_registry() -> AuthorityRegistry:
    """Build the registry of every authority the paper cites and uses."""
    registry = AuthorityRegistry()
    for authority in _DEFAULT_AUTHORITIES:
        registry.add(authority)
    return registry


_DEFAULT_AUTHORITIES: tuple[Authority, ...] = (
    # --- Constitutional / statutory anchors -------------------------------
    Authority(
        key="fourth_amendment",
        kind=AuthorityKind.CONSTITUTION,
        citation="U.S. Const. amend. IV",
        holding=(
            "No unreasonable searches and seizures; warrants issue only on "
            "probable cause, particularly describing the place and things."
        ),
    ),
    Authority(
        key="wiretap_act",
        kind=AuthorityKind.STATUTE,
        citation="18 U.S.C. §§ 2510-2522 (Title III)",
        holding=(
            "Prohibits unauthorized real-time interception of the contents "
            "of wire, oral, and electronic communications."
        ),
    ),
    Authority(
        key="sca",
        kind=AuthorityKind.STATUTE,
        citation="18 U.S.C. §§ 2701-2712 (Stored Communications Act)",
        holding=(
            "Regulates government access to stored content and non-content "
            "records held by ECS and RCS providers."
        ),
    ),
    Authority(
        key="pen_trap",
        kind=AuthorityKind.STATUTE,
        citation="18 U.S.C. §§ 3121-3127 (Pen/Trap statute)",
        holding=(
            "Requires a court order to install pen registers and trap-and-"
            "trace devices collecting addressing and other non-content "
            "information in real time."
        ),
    ),
    Authority(
        key="sca_2702",
        kind=AuthorityKind.STATUTE,
        citation="18 U.S.C. § 2702",
        holding=(
            "Public providers may not voluntarily disclose customer content "
            "to the government outside enumerated exceptions; non-public "
            "providers may disclose freely."
        ),
    ),
    Authority(
        key="sca_2703",
        kind=AuthorityKind.STATUTE,
        citation="18 U.S.C. § 2703",
        holding=(
            "Tiers of compelled disclosure: subpoena for basic subscriber "
            "information, 2703(d) court order for transactional records, "
            "warrant for stored content."
        ),
    ),
    Authority(
        key="pen_trap_provider_exception",
        kind=AuthorityKind.STATUTE,
        citation="18 U.S.C. § 3121(b)",
        holding=(
            "Providers may use pen/trap devices relating to the operation, "
            "maintenance, and testing of their own service without an order."
        ),
    ),
    Authority(
        key="wiretap_provider_exception",
        kind=AuthorityKind.STATUTE,
        citation="18 U.S.C. § 2511(2)(a)(i)",
        holding=(
            "Service providers may intercept in the normal course of "
            "business to protect their rights and property."
        ),
    ),
    Authority(
        key="trespasser_exception",
        kind=AuthorityKind.STATUTE,
        citation="18 U.S.C. § 2511(2)(i)",
        holding=(
            "Victims of computer attacks may authorize persons acting under "
            "color of law to monitor trespassers on their systems."
        ),
    ),
    Authority(
        key="public_access_exception",
        kind=AuthorityKind.STATUTE,
        citation="18 U.S.C. § 2511(2)(g)(i)",
        holding=(
            "Any person may intercept an electronic communication made "
            "through a system configured so the communication is readily "
            "accessible to the general public."
        ),
    ),
    Authority(
        key="one_party_consent",
        kind=AuthorityKind.STATUTE,
        citation="18 U.S.C. § 2511(2)(c)",
        holding=(
            "Interception is lawful where one party to the communication "
            "consents (federal rule)."
        ),
    ),
    Authority(
        key="emergency_pen_trap",
        kind=AuthorityKind.STATUTE,
        citation="18 U.S.C. § 3125",
        holding=(
            "Emergency pen/trap installation without an order for immediate "
            "danger, organized crime, national security, or ongoing attacks "
            "on protected computers."
        ),
    ),
    # --- Cases -------------------------------------------------------------
    Authority(
        key="katz",
        kind=AuthorityKind.CASE,
        citation="Katz v. United States, 389 U.S. 347 (1967)",
        holding=(
            "The Fourth Amendment protects people, not places; a person in "
            "a closed phone booth has a reasonable expectation of privacy "
            "in the call's contents."
        ),
    ),
    Authority(
        key="kyllo",
        kind=AuthorityKind.CASE,
        citation="Kyllo v. United States, 533 U.S. 27 (2001)",
        holding=(
            "Using sense-enhancing technology not in general public use to "
            "obtain information about the interior of a home is a search."
        ),
    ),
    Authority(
        key="smith_v_maryland",
        kind=AuthorityKind.CASE,
        citation="Smith v. Maryland, 442 U.S. 735 (1979)",
        holding=(
            "No reasonable expectation of privacy in dialed numbers "
            "voluntarily conveyed to the phone company (third-party "
            "doctrine)."
        ),
    ),
    Authority(
        key="gates",
        kind=AuthorityKind.CASE,
        citation="Illinois v. Gates, 462 U.S. 213 (1983)",
        holding=(
            "Probable cause is a fair probability, judged on the totality "
            "of the circumstances."
        ),
    ),
    Authority(
        key="matlock",
        kind=AuthorityKind.CASE,
        citation="United States v. Matlock, 415 U.S. 164 (1974)",
        holding=(
            "A co-occupant with common authority may consent to a search "
            "of jointly controlled areas."
        ),
    ),
    Authority(
        key="mincey",
        kind=AuthorityKind.CASE,
        citation="Mincey v. Arizona, 437 U.S. 385 (1978)",
        holding=(
            "Exigent circumstances permit warrantless action immediately "
            "necessary to protect safety or preserve evidence."
        ),
    ),
    Authority(
        key="knights",
        kind=AuthorityKind.CASE,
        citation="United States v. Knights, 534 U.S. 112 (2001)",
        holding=(
            "Probationers have a diminished expectation of privacy and may "
            "be searched on reasonable suspicion."
        ),
    ),
    Authority(
        key="forrester",
        kind=AuthorityKind.CASE,
        citation="United States v. Forrester, 512 F.3d 500 (9th Cir. 2008)",
        holding=(
            "E-mail TO/FROM addresses, IP addresses, and volume are "
            "non-content addressing information under the Pen/Trap statute."
        ),
    ),
    Authority(
        key="crist",
        kind=AuthorityKind.CASE,
        citation="United States v. Crist, 627 F. Supp. 2d 575 (M.D. Pa. 2008)",
        holding=(
            "Running hash checks across a drive is a Fourth Amendment "
            "search requiring a warrant even when the drive is lawfully "
            "held."
        ),
    ),
    Authority(
        key="sloane",
        kind=AuthorityKind.CASE,
        citation="State v. Sloane, 939 A.2d 796 (N.J. 2008)",
        holding=(
            "Mining a database the government already lawfully possesses "
            "for patterns is not a fresh search."
        ),
    ),
    Authority(
        key="gorshkov",
        kind=AuthorityKind.CASE,
        citation="United States v. Gorshkov, 2001 WL 1024026 (W.D. Wash. 2001)",
        holding=(
            "Information knowingly exposed to another or to the public "
            "carries no reasonable expectation of privacy."
        ),
    ),
    Authority(
        key="king_shared_folder",
        kind=AuthorityKind.CASE,
        citation="United States v. King, 509 F.3d 1338 (11th Cir. 2007)",
        holding=(
            "Sharing a folder over a network forfeits the expectation of "
            "privacy in its contents, even on one's own computer."
        ),
    ),
    Authority(
        key="stults_p2p",
        kind=AuthorityKind.CASE,
        citation="United States v. Stults, 2007 WL 4284721 (D. Neb. 2007)",
        holding=(
            "Files shared through peer-to-peer software carry no reasonable "
            "expectation of privacy."
        ),
    ),
    Authority(
        key="king_delivery",
        kind=AuthorityKind.CASE,
        citation="United States v. King, 55 F.3d 1193 (6th Cir. 1995)",
        holding=(
            "A sender's expectation of privacy in a communication "
            "terminates upon delivery to the recipient."
        ),
    ),
    Authority(
        key="ziegler",
        kind=AuthorityKind.CASE,
        citation="United States v. Ziegler, 474 F.3d 1184 (9th Cir. 2007)",
        holding=(
            "A private employer may consent to a search of workplace "
            "computers it owns."
        ),
    ),
    Authority(
        key="oconnor",
        kind=AuthorityKind.CASE,
        citation="O'Connor v. Ortega, 480 U.S. 709 (1987)",
        holding=(
            "Government employers may conduct warrantless work-related "
            "searches that are justified at inception and permissible in "
            "scope."
        ),
    ),
    Authority(
        key="villanueva",
        kind=AuthorityKind.CASE,
        citation="United States v. Villanueva, 32 F. Supp. 2d 635 (S.D.N.Y. 1998)",
        holding=(
            "Monitoring of an intruder at the victim's invitation falls "
            "within the computer-trespasser rationale."
        ),
    ),
    Authority(
        key="megahed",
        kind=AuthorityKind.CASE,
        citation="United States v. Megahed, 2009 WL 722481 (M.D. Fla. 2009)",
        holding=(
            "Revoking consent does not restore privacy in a mirror image "
            "already lawfully made."
        ),
    ),
    Authority(
        key="long_no_technique_limit",
        kind=AuthorityKind.CASE,
        citation="United States v. Long, 425 F.3d 482 (7th Cir. 2005)",
        holding=(
            "The Fourth Amendment does not limit the techniques an examiner "
            "may use on data responsive to a warrant."
        ),
    ),
    Authority(
        key="perez_ip",
        kind=AuthorityKind.CASE,
        citation="United States v. Perez, 484 F.3d 735 (5th Cir. 2007)",
        holding=(
            "An IP address linked to criminal traffic supports probable "
            "cause for a warrant on the subscriber's premises, unsecured "
            "Wi-Fi notwithstanding."
        ),
    ),
    Authority(
        key="gourde_membership",
        kind=AuthorityKind.CASE,
        citation="United States v. Gourde, 440 F.3d 1065 (9th Cir. 2006)",
        holding=(
            "Paid membership in a child-pornography site can establish "
            "probable cause."
        ),
    ),
    Authority(
        key="coreas_membership",
        kind=AuthorityKind.CASE,
        citation="United States v. Coreas, 419 F.3d 151 (2d Cir. 2005)",
        holding=(
            "Mere membership alone does not necessarily establish probable "
            "cause; evidence of intent strengthens the showing."
        ),
    ),
    Authority(
        key="steve_jackson",
        kind=AuthorityKind.CASE,
        citation=(
            "Steve Jackson Games, Inc. v. United States Secret Service, "
            "36 F.3d 457 (5th Cir. 1994)"
        ),
        holding=(
            "Acquisition of stored e-mail is not an 'interception' under "
            "Title III; interception must be contemporaneous with "
            "transmission."
        ),
    ),
    Authority(
        key="andersen_consulting",
        kind=AuthorityKind.CASE,
        citation="Andersen Consulting LLP v. UOP, 991 F. Supp. 1041 (N.D. Ill. 1998)",
        holding=(
            "A provider that does not serve the public is not an RCS; "
            "opened mail on a non-public server falls outside the SCA."
        ),
    ),
    Authority(
        key="leon",
        kind=AuthorityKind.CASE,
        citation="United States v. Leon, 468 U.S. 897 (1984)",
        holding=(
            "Evidence obtained in objectively reasonable reliance on a "
            "facially valid warrant is not suppressed even if the warrant "
            "is later invalidated (the good-faith exception)."
        ),
    ),
    Authority(
        key="nix_v_williams",
        kind=AuthorityKind.CASE,
        citation="Nix v. Williams, 467 U.S. 431 (1984)",
        holding=(
            "Unlawfully obtained evidence is admissible if routine lawful "
            "procedure would inevitably have discovered it."
        ),
    ),
    Authority(
        key="wong_sun",
        kind=AuthorityKind.CASE,
        citation="Wong Sun v. United States, 371 U.S. 471 (1963)",
        holding=(
            "Evidence derived from an illegal search is fruit of the "
            "poisonous tree unless the taint has attenuated."
        ),
    ),
    # --- Secondary sources ---------------------------------------------------
    Authority(
        key="doj_manual",
        kind=AuthorityKind.SECONDARY,
        citation=(
            "Jarrett & Bailie, Searching and Seizing Computers and Obtaining "
            "Electronic Evidence in Criminal Investigations (DOJ)"
        ),
        holding="DOJ manual synthesizing the search-and-seizure doctrine.",
    ),
    Authority(
        key="kerr_treatise",
        kind=AuthorityKind.SECONDARY,
        citation="Kerr, Computer Crime Law (2d ed. 2009)",
        holding="Treatise framing of the Wiretap/SCA/Pen-Trap triad.",
    ),
    Authority(
        key="paper_judgment",
        kind=AuthorityKind.SECONDARY,
        citation=(
            "Huang et al., When Digital Forensic Research Meets Laws "
            "(ICDCS 2012) — authors' judgment, Table 1 rows marked (*)"
        ),
        holding=(
            "Authors' own classification of scenes lacking controlling "
            "precedent (open/encrypted Wi-Fi logging, credentialed remote "
            "access after arrest)."
        ),
    ),
    Authority(
        key="prusty_oneswarm",
        kind=AuthorityKind.SECONDARY,
        citation=(
            "Prusty, Levine & Liberatore, Forensic Investigation of the "
            "OneSwarm Anonymous Filesharing System (CCS 2011)"
        ),
        holding=(
            "Timing analysis of query responses identifies sources in "
            "anonymous P2P overlays using only protocol-visible traffic."
        ),
    ),
    Authority(
        key="huang_watermark",
        kind=AuthorityKind.SECONDARY,
        citation=(
            "Huang, Pan, Fu & Wang, Long PN Code Based DSSS Watermarking "
            "(INFOCOM 2011)"
        ),
        holding=(
            "Spread-spectrum modulation of traffic rates traces flows "
            "through anonymity networks from rate observations alone."
        ),
    ),
)
