"""The compliance engine: the paper's legal analysis as a rule pipeline.

Given one :class:`~repro.core.action.InvestigativeAction`, the engine runs:

1. the Katz reasonable-expectation-of-privacy analysis;
2. the four bodies of law in parallel — Fourth Amendment, Wiretap Act,
   SCA, Pen/Trap statute — each of which may impose a process requirement;
3. statute-internal exceptions (recorded for the trace);
4. cross-cutting exceptions (consent, exigency, plain view, ...), which
   eliminate requirements per legal source;
5. combination: the required process is the *maximum* surviving
   requirement, mirroring the paper's observation that stronger process
   subsumes weaker (section II.A).

The output :class:`~repro.core.ruling.Ruling` answers the Table 1 question
("does this scene need a warrant/court order/subpoena?") and carries a full
citation-bearing reasoning trace.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from typing import Protocol, runtime_checkable

from repro.core.action import InvestigativeAction
from repro.core.cache import CacheStats, RulingCache
from repro.core.caselaw import AuthorityRegistry, build_default_registry
from repro.core.enums import LegalSource, ProcessKind
from repro.core.exceptions import gather_exceptions
from repro.core.fingerprint import action_fingerprint
from repro.core.privacy import analyze_privacy
from repro.core.ruling import (
    AppliedException,
    ReasoningStep,
    Requirement,
    Ruling,
)
from repro.core.statutes import fourth_amendment, pentrap, sca, wiretap
from repro.obs import OBS, span


@runtime_checkable
class RulingLedger(Protocol):
    """What the engine needs from a persistence backend.

    Duck-typed (satisfied by :class:`repro.ledger.Ledger`) so
    :mod:`repro.core` never imports :mod:`repro.ledger` — the dependency
    points the other way, exactly as with :mod:`repro.obs`.
    """

    def record_ruling(
        self, fingerprint: tuple, ruling: Ruling
    ) -> bool:
        """Persist one freshly evaluated ruling; returns True if new."""
        ...  # pragma: no cover - protocol

    def iter_rulings(
        self, limit: int | None = None
    ) -> Iterator[tuple[tuple, Ruling]]:
        """Stream persisted ``(fingerprint, ruling)`` pairs."""
        ...  # pragma: no cover - protocol


class ComplianceEngine:
    """Rules on investigative actions under the paper's legal framework.

    The engine is deterministic and side-effect free: the same action
    always produces the same ruling.  An optional
    :class:`~repro.core.caselaw.AuthorityRegistry` validates that every
    citation emitted by the rule modules actually exists.

    Args:
        registry: Authority registry citations are validated against.
        cache: Memoization for rulings, keyed by action fingerprint
            (:func:`~repro.core.fingerprint.action_fingerprint`).  Pass a
            :class:`~repro.core.cache.RulingCache` to share one across
            engines, an ``int`` for a private LRU cache of that size, or
            ``None`` (the default) for no caching — every call evaluates
            from scratch, exactly as before caching existed.
        ledger: Optional persistence backend (anything satisfying
            :class:`RulingLedger`, e.g. :class:`repro.ledger.Ledger`).
            Every *fresh* evaluation — never a cache hit, which by the
            differential gate is byte-identical anyway — is recorded, and
            :meth:`prime_from_ledger` warm-loads the cache at startup.
    """

    def __init__(
        self,
        registry: AuthorityRegistry | None = None,
        cache: RulingCache | int | None = None,
        ledger: RulingLedger | None = None,
    ) -> None:
        self._registry = registry or build_default_registry()
        if isinstance(cache, int):
            cache = RulingCache(maxsize=cache)
        self._cache = cache
        self._ledger = ledger

    @property
    def registry(self) -> AuthorityRegistry:
        """The authority registry rulings cite into."""
        return self._registry

    @property
    def cache(self) -> RulingCache | None:
        """The ruling cache, or ``None`` for an uncached engine."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats | None:
        """Hit/miss/eviction counters, or ``None`` for an uncached engine."""
        return self._cache.stats if self._cache is not None else None

    @property
    def ledger(self) -> RulingLedger | None:
        """The persistence backend, or ``None`` for an ephemeral engine."""
        return self._ledger

    def prime_from_ledger(self, limit: int | None = None) -> int:
        """Warm the ruling cache from the attached ledger.

        Streams persisted rulings into the cache (most callers do this
        once at startup, before the first evaluation) so previously
        ruled actions become pure lookups in this process too.

        Args:
            limit: Optional cap on rulings loaded.

        Returns:
            The number of rulings loaded into the cache.

        Raises:
            ValueError: If the engine has no ledger or no cache — there
                is nowhere to read from or nothing to warm.
        """
        if self._ledger is None:
            raise ValueError("prime_from_ledger requires a ledger")
        if self._cache is None:
            raise ValueError("prime_from_ledger requires a cache to warm")
        loaded = 0
        for fingerprint, ruling in self._ledger.iter_rulings(limit=limit):
            self._cache.put(fingerprint, ruling)
            loaded += 1
        if OBS.enabled:
            OBS.registry.counter(
                "repro_ledger_prime_rulings_total",
                "Rulings warm-loaded into a cache from a ledger.",
            ).inc(loaded)
        return loaded

    def _recording_evaluator(
        self,
    ) -> Callable[[InvestigativeAction], Ruling]:
        """The fresh-evaluation callable, ledger recording included."""
        if self._ledger is None:
            return self._evaluate_uncached
        evaluate_uncached = self._evaluate_uncached
        record = self._record_to_ledger

        def evaluate_and_record(action: InvestigativeAction) -> Ruling:
            ruling = evaluate_uncached(action)
            record(action_fingerprint(action), ruling)
            return ruling

        return evaluate_and_record

    def _record_to_ledger(self, fingerprint: tuple, ruling: Ruling) -> None:
        """Persist one fresh ruling, counting the write when traced."""
        assert self._ledger is not None
        self._ledger.record_ruling(fingerprint, ruling)
        if OBS.enabled:
            OBS.registry.counter(
                "repro_ledger_ruling_writes_total",
                "Fresh rulings recorded to a ledger by the engine.",
            ).inc()

    def evaluate(self, action: InvestigativeAction) -> Ruling:
        """Produce a :class:`Ruling` for one investigative action.

        On a cached engine the ruling is served from the LRU cache when an
        equal-fingerprint action was ruled on before; cached and fresh
        rulings are indistinguishable (same trace, same ``explain()``).
        """
        # One attribute load + branch when telemetry is off: the span
        # kwargs dict is never built on the disabled hot path.
        if not OBS.enabled:
            return self._evaluate_impl(action)
        with span(
            "engine.evaluate", action_fp=action_fingerprint(action)
        ) as sp:
            ruling = self._evaluate_impl(action)
            sp.set(process=ruling.required_process.name)
        OBS.registry.counter(
            "repro_engine_evaluations_total",
            "Single-action ComplianceEngine.evaluate calls.",
        ).inc()
        OBS.registry.histogram(
            "repro_engine_evaluate_seconds",
            "Latency of ComplianceEngine.evaluate.",
        ).observe(sp.duration)
        return ruling

    def _evaluate_impl(self, action: InvestigativeAction) -> Ruling:
        """The cache-consulting single-action path, telemetry-free."""
        if self._cache is None:
            return self._recording_evaluator()(action)
        fingerprint = action_fingerprint(action)
        ruling = self._cache.get(fingerprint)
        if ruling is None:
            ruling = self._evaluate_uncached(action)
            self._cache.put(fingerprint, ruling)
            if self._ledger is not None:
                self._record_to_ledger(fingerprint, ruling)
        return ruling

    def evaluate_many(
        self, actions: Iterable[InvestigativeAction]
    ) -> list[Ruling]:
        """Rule on a batch of actions, deduplicating by fingerprint.

        Equal-fingerprint actions are evaluated once per batch even on an
        uncached engine (a transient per-call memo); a cached engine also
        consults and feeds its persistent LRU cache through the trimmed
        :meth:`~repro.core.cache.RulingCache.get_or_compute` batch path,
        so repeated batches approach pure lookup speed and even a cold
        batch stays at least as fast as the uncached loop.  Output order
        matches input order, ruling-for-ruling identical to calling
        :meth:`evaluate` in a loop.
        """
        if not OBS.enabled:
            return self._evaluate_many_impl(actions)
        batch = list(actions)
        with span("engine.evaluate_many", actions=len(batch)) as sp:
            rulings = self._evaluate_many_impl(batch)
        OBS.registry.counter(
            "repro_engine_batch_actions_total",
            "Actions ruled on through evaluate_many.",
        ).inc(len(batch))
        OBS.registry.histogram(
            "repro_engine_batch_seconds",
            "Latency of ComplianceEngine.evaluate_many batches.",
        ).observe(sp.duration)
        return rulings

    def _evaluate_many_impl(
        self, actions: Iterable[InvestigativeAction]
    ) -> list[Ruling]:
        """The batch path shared by both telemetry states."""
        if self._cache is None:
            rulings: list[Ruling] = []
            memo: dict = {}
            for action in actions:
                fingerprint = action_fingerprint(action)
                ruling = memo.get(fingerprint)
                if ruling is None:
                    ruling = self._evaluate_uncached(action)
                    memo[fingerprint] = ruling
                    if self._ledger is not None:
                        self._record_to_ledger(fingerprint, ruling)
                rulings.append(ruling)
            return rulings
        return self._cache.get_or_compute(
            actions, action_fingerprint, self._recording_evaluator()
        )

    def _evaluate_uncached(self, action: InvestigativeAction) -> Ruling:
        """The full rule pipeline, bypassing any cache."""
        privacy = analyze_privacy(action)

        requirements: list[Requirement] = []
        for requirement in (
            fourth_amendment.evaluate(action, privacy),
            wiretap.evaluate(action),
            sca.evaluate(action),
            pentrap.evaluate(action),
        ):
            if requirement is not None:
                requirements.append(requirement)

        exceptions = list(gather_exceptions(action))
        exceptions.extend(self._statutory_exceptions(action))

        eliminated: frozenset[LegalSource] = frozenset()
        for exception in exceptions:
            eliminated = eliminated | exception.eliminates
        surviving = [r for r in requirements if r.source not in eliminated]

        required_process = max(
            (r.process for r in surviving), default=ProcessKind.NONE
        )

        steps = self._flatten_steps(privacy.steps, requirements, exceptions)
        self._check_citations(steps)

        return Ruling(
            required_process=required_process,
            requirements=tuple(requirements),
            exceptions=tuple(exceptions),
            privacy=privacy,
            steps=steps,
        )

    def _statutory_exceptions(
        self, action: InvestigativeAction
    ) -> list[AppliedException]:
        """Statute-internal exceptions, recorded for the ruling's trace.

        These never eliminate anything at this layer — the statute modules
        already withheld their requirements — but surfacing them keeps the
        trace complete, so a reader can see *why* Title III or the
        Pen/Trap statute stayed silent.
        """
        recorded: list[AppliedException] = []
        if wiretap.applies(action):
            found = wiretap.statutory_exception(action)
            if found is not None:
                kind, step = found
                recorded.append(
                    AppliedException(
                        kind=kind, eliminates=frozenset(), step=step
                    )
                )
        if pentrap.applies(action):
            found = pentrap.statutory_exception(action)
            if found is not None:
                kind, step = found
                recorded.append(
                    AppliedException(
                        kind=kind, eliminates=frozenset(), step=step
                    )
                )
        return recorded

    @staticmethod
    def _flatten_steps(
        privacy_steps: tuple[ReasoningStep, ...],
        requirements: list[Requirement],
        exceptions: list[AppliedException],
    ) -> tuple[ReasoningStep, ...]:
        """Flatten all reasoning into one ordered, de-duplicated trace."""
        steps: list[ReasoningStep] = list(privacy_steps)
        for requirement in requirements:
            steps.extend(requirement.steps)
        steps.extend(exception.step for exception in exceptions)
        seen: set[tuple[str, str]] = set()
        unique: list[ReasoningStep] = []
        for step in steps:
            key = (step.source.value, step.text)
            if key not in seen:
                seen.add(key)
                unique.append(step)
        return tuple(unique)

    def _check_citations(self, steps: tuple[ReasoningStep, ...]) -> None:
        """Every citation a rule emits must exist in the registry."""
        for step in steps:
            for key in step.authorities:
                if key not in self._registry:
                    raise KeyError(
                        f"reasoning step cites unknown authority {key!r}: "
                        f"{step.text}"
                    )


def evaluate(action: InvestigativeAction) -> Ruling:
    """Module-level convenience wrapper around a default engine."""
    return _default_engine().evaluate(action)


_ENGINE: ComplianceEngine | None = None


def _default_engine() -> ComplianceEngine:
    """Lazily constructed singleton engine for the convenience API.

    The singleton carries a default-size ruling cache: repeated module-level
    :func:`evaluate` calls on equal-fingerprint actions are pure lookups.
    """
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = ComplianceEngine(cache=RulingCache())
    return _ENGINE
