"""LRU memoization for compliance rulings.

The engine is deterministic and side-effect free, and every input an
action's ruling depends on is captured by its fingerprint
(:mod:`repro.core.fingerprint`), so rulings are safe to share between
equal-fingerprint actions.  This module provides the bounded LRU map the
engine uses to do that, instrumented with the hit/miss/eviction counters
that ``repro bench`` reports.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

from repro.core.fingerprint import ActionFingerprint
from repro.core.ruling import Ruling

#: Cache size used when a caller asks for caching without choosing a
#: bound.  Rulings are small frozen dataclasses; 4096 of them is a few
#: megabytes and covers the full fingerprint space of most workloads.
DEFAULT_CACHE_SIZE = 4096


@dataclasses.dataclass
class CacheStats:
    """Counters describing a :class:`RulingCache`'s behaviour.

    Attributes:
        hits: Lookups answered from the cache.
        misses: Lookups that fell through to a fresh evaluation.
        evictions: Entries discarded because the cache was full.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable view, as emitted in ``BENCH_engine.json``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class RulingCache:
    """A bounded LRU map from action fingerprints to rulings.

    Lookups move entries to the most-recently-used end; inserts beyond
    ``maxsize`` evict the least-recently-used entry.  The cache never
    mutates rulings — they are frozen — so a hit returns the identical
    object a previous evaluation produced.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1: {maxsize}")
        self._maxsize = maxsize
        self._entries: OrderedDict[ActionFingerprint, Ruling] = OrderedDict()
        self._stats = CacheStats()

    @property
    def maxsize(self) -> int:
        """The bound on resident entries."""
        return self._maxsize

    @property
    def stats(self) -> CacheStats:
        """Live hit/miss/eviction counters."""
        return self._stats

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: ActionFingerprint) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: ActionFingerprint) -> Ruling | None:
        """The cached ruling for a fingerprint, or ``None`` on a miss.

        A hit refreshes the entry's recency; both outcomes are counted.
        """
        ruling = self._entries.get(fingerprint)
        if ruling is None:
            self._stats.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self._stats.hits += 1
        return ruling

    def put(self, fingerprint: ActionFingerprint, ruling: Ruling) -> None:
        """Insert a ruling, evicting the LRU entry if at capacity."""
        if fingerprint in self._entries:
            self._entries.move_to_end(fingerprint)
            self._entries[fingerprint] = ruling
            return
        if len(self._entries) >= self._maxsize:
            self._entries.popitem(last=False)
            self._stats.evictions += 1
        self._entries[fingerprint] = ruling

    def get_or_compute(self, items, fingerprint_of, compute) -> list:
        """Batched lookup: one ruling per item, computing on each miss.

        Functionally identical to a ``get``/``compute``/``put`` loop, but
        trimmed for the cold path: the fingerprint is hashed once per hit
        and twice per miss (``put`` alone re-hashes it twice more for the
        membership check and insert — redundant here, since the key was
        just observed absent and ``compute`` never touches this cache),
        dict/stat attribute lookups are hoisted out of the loop, and the
        counters are updated once per batch instead of once per item.

        Args:
            items: The things to resolve (the engine passes actions).
            fingerprint_of: Maps an item to its cache key.
            compute: Maps an item to its value on a miss; must be pure.

        Returns:
            The values, in item order — identical objects to what the
            ``get``/``put`` loop would produce, with identical final
            hit/miss/eviction counts.
        """
        entries = self._entries
        entry_getter = entries.get
        refresh = entries.move_to_end
        evict = entries.popitem
        maxsize = self._maxsize
        hits = misses = evictions = 0
        results = []
        append = results.append
        for item in items:
            fingerprint = fingerprint_of(item)
            value = entry_getter(fingerprint)
            if value is None:
                misses += 1
                value = compute(item)
                if len(entries) >= maxsize:
                    evict(last=False)
                    evictions += 1
                entries[fingerprint] = value
            else:
                hits += 1
                refresh(fingerprint)
            append(value)
        stats = self._stats
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        return results

    def clear(self) -> None:
        """Drop every entry; counters are left intact (use ``stats.reset``)."""
        self._entries.clear()
