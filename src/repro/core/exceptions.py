"""Cross-cutting exceptions to the warrant requirement.

These are the paper's section III.B exceptions that operate above the level
of any single statute: consent, exigent circumstances, plain view,
probation/parole, the computer-trespasser doctrine's constitutional side,
and the authors'-judgment doctrines for individual Table 1 rows.  Each
applicable exception names the legal sources whose requirements it
eliminates; the engine then subtracts.
"""

from __future__ import annotations

from repro.core.action import InvestigativeAction
from repro.core.enums import ConsentScope, ExceptionKind, LegalSource
from repro.core.ruling import AppliedException, ReasoningStep

#: Sources a fully effective consent defeats — consent is "a powerful
#: exception to both constitutional and statutory laws" (section III.B.c).
_ALL_SOURCES = frozenset(
    {
        LegalSource.FOURTH_AMENDMENT,
        LegalSource.WIRETAP_ACT,
        LegalSource.SCA,
        LegalSource.PEN_TRAP,
    }
)


def gather_exceptions(action: InvestigativeAction) -> list[AppliedException]:
    """Collect every cross-cutting exception the action qualifies for.

    Statute-internal exceptions (provider self-protection, 3125
    emergencies, 2511(2)(g)(i) public access) live inside the statute
    modules; this function handles the doctrines that cut across sources.
    """
    exceptions: list[AppliedException] = []
    doctrine = action.doctrine
    consent = action.consent

    if consent.effective():
        exceptions.append(
            AppliedException(
                kind=ExceptionKind.CONSENT,
                eliminates=_ALL_SOURCES,
                step=ReasoningStep(
                    source=LegalSource.DOCTRINE,
                    text=(
                        f"Voluntary consent by a person with authority "
                        f"({consent.scope.value}) authorizes the search "
                        f"within the consented scope."
                    ),
                    authorities=("matlock", "ziegler"),
                ),
            )
        )

    if doctrine.victim_invited_monitoring and consent.covers_target_data:
        exceptions.append(
            AppliedException(
                kind=ExceptionKind.COMPUTER_TRESPASSER,
                eliminates=frozenset(
                    {
                        LegalSource.FOURTH_AMENDMENT,
                        LegalSource.WIRETAP_ACT,
                        LegalSource.PEN_TRAP,
                    }
                ),
                step=ReasoningStep(
                    source=LegalSource.DOCTRINE,
                    text=(
                        "The attack victim invited monitoring of the "
                        "trespasser on the victim's own system; no process "
                        "is needed for collection there."
                    ),
                    authorities=("trespasser_exception", "villanueva"),
                ),
            )
        )

    if doctrine.exigent_circumstances:
        exceptions.append(
            AppliedException(
                kind=ExceptionKind.EXIGENT_CIRCUMSTANCES,
                eliminates=frozenset({LegalSource.FOURTH_AMENDMENT}),
                step=ReasoningStep(
                    source=LegalSource.DOCTRINE,
                    text=(
                        "Imminent evidence destruction, danger, hot "
                        "pursuit, or escape risk permits immediate "
                        "warrantless action."
                    ),
                    authorities=("mincey",),
                ),
            )
        )

    if doctrine.plain_view:
        exceptions.append(
            AppliedException(
                kind=ExceptionKind.PLAIN_VIEW,
                eliminates=frozenset({LegalSource.FOURTH_AMENDMENT}),
                step=ReasoningStep(
                    source=LegalSource.DOCTRINE,
                    text=(
                        "Incriminating material observed from a lawful "
                        "vantage point, with immediately apparent "
                        "character, may be seized without a warrant."
                    ),
                    authorities=("doj_manual",),
                ),
            )
        )

    if doctrine.target_on_probation:
        exceptions.append(
            AppliedException(
                kind=ExceptionKind.PROBATION_PAROLE,
                eliminates=frozenset({LegalSource.FOURTH_AMENDMENT}),
                step=ReasoningStep(
                    source=LegalSource.DOCTRINE,
                    text=(
                        "Probationers and parolees have a diminished "
                        "expectation of privacy and may be searched on "
                        "reasonable suspicion."
                    ),
                    authorities=("knights",),
                ),
            )
        )

    if doctrine.credentials_lawfully_obtained:
        exceptions.append(
            AppliedException(
                kind=ExceptionKind.PRIVATE_SEARCH,
                eliminates=_ALL_SOURCES,
                step=ReasoningStep(
                    source=LegalSource.DOCTRINE,
                    text=(
                        "Credentials lawfully obtained from the arrested "
                        "defendant authorize retrieval of the defendant's "
                        "remote data without further process (authors' "
                        "judgment, Table 1 scene 20)."
                    ),
                    authorities=("paper_judgment",),
                ),
            )
        )

    return exceptions


def consent_reaches(consent_scope: ConsentScope, private_space: bool) -> bool:
    """Whether a consenter's authority reaches a particular space.

    Args:
        consent_scope: Who consented.
        private_space: Whether the space searched is another user's
            exclusive/private space (e.g. password-protected files).

    Returns:
        Co-users may consent only to shared space; spouses, employers, and
        network owners have broad authority; a parent of a minor may
        consent to the child's machine (section III.B.c (i)-(v)).
    """
    if consent_scope is ConsentScope.NONE:
        return False
    if consent_scope is ConsentScope.CO_USER_SHARED_SPACE:
        return not private_space
    return True
