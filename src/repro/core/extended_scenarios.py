"""Extended scene catalogue: the paper's prose examples, encoded.

Table 1 is the paper's published test set, but sections II and III walk
through many more situations — Katz's phone booth, Kyllo's thermal
imager, the repairman's private search, the consent taxonomy, the
emergency pen/trap.  This module encodes each prose example with the
outcome the paper (or its cited case) dictates, giving the engine a
second, independent validation set.
"""

from __future__ import annotations

import dataclasses

from repro.core.action import ConsentFacts, DoctrineFacts, InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import (
    Actor,
    ConsentScope,
    DataKind,
    Place,
    ProcessKind,
    Timing,
)


@dataclasses.dataclass(frozen=True)
class ExtendedScene:
    """One prose example with its expected outcome.

    Attributes:
        scene_id: Short identifier (``E1``..).
        action: The encoded acquisition.
        expected_process: The process the paper/case law requires.
        basis: Which passage or case the expectation comes from.
    """

    scene_id: str
    action: InvestigativeAction
    expected_process: ProcessKind
    basis: str

    @property
    def needs_process(self) -> bool:
        """Whether the scene requires any legal process."""
        return self.expected_process is not ProcessKind.NONE


def build_extended_catalogue() -> tuple[ExtendedScene, ...]:
    """All encoded prose scenes, in paper order."""
    return (
        ExtendedScene(
            scene_id="E1",
            action=InvestigativeAction(
                description=(
                    "record the content of a call placed from a closed "
                    "phone booth, via a device outside the booth"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.REAL_TIME,
                context=EnvironmentContext(
                    place=Place.TRANSMISSION_PATH, encrypted=False
                ),
            ),
            expected_process=ProcessKind.WIRETAP_ORDER,
            basis="Katz v. United States (paper section II.C.1)",
        ),
        ExtendedScene(
            scene_id="E2",
            action=InvestigativeAction(
                description=(
                    "record a conversation inside a house that is so loud "
                    "everyone on the street can hear it"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.REAL_TIME,
                context=EnvironmentContext(
                    place=Place.SUSPECT_PREMISES, knowingly_exposed=True
                ),
            ),
            expected_process=ProcessKind.NONE,
            basis="paper section II.C.2 (knowing exposure)",
        ),
        ExtendedScene(
            scene_id="E3",
            action=InvestigativeAction(
                description=(
                    "aim a thermal imager at a home to map heat from the "
                    "rooms inside"
                ),
                actor=Actor.GOVERNMENT,
                # Heat emanations are a physical phenomenon, not a
                # communication — Title III has no purchase; the Fourth
                # Amendment (Kyllo) supplies the warrant requirement.
                data_kind=DataKind.PHYSICAL,
                timing=Timing.REAL_TIME,
                context=EnvironmentContext(
                    place=Place.SUSPECT_PREMISES,
                    home_interior=True,
                    technology_in_general_public_use=False,
                ),
            ),
            expected_process=ProcessKind.SEARCH_WARRANT,
            basis="Kyllo v. United States (paper section III.B.a)",
        ),
        ExtendedScene(
            scene_id="E4",
            action=InvestigativeAction(
                description=(
                    "read a file the suspect left on a public library "
                    "computer"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(
                    place=Place.PUBLIC, knowingly_exposed=True
                ),
            ),
            expected_process=ProcessKind.NONE,
            basis="Wilson v. Moreau; Butler (paper section II.C.2)",
        ),
        ExtendedScene(
            scene_id="E5",
            action=InvestigativeAction(
                description=(
                    "browse a folder the suspect shared with other users, "
                    "although it sits on his private computer"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(
                    place=Place.SUSPECT_PREMISES, shared_with_others=True
                ),
            ),
            expected_process=ProcessKind.NONE,
            basis="United States v. King (11th Cir.) (section II.C.2)",
        ),
        ExtendedScene(
            scene_id="E6",
            action=InvestigativeAction(
                description=(
                    "download files the suspect shares through ordinary "
                    "P2P software"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.REAL_TIME,
                context=EnvironmentContext(
                    place=Place.PUBLIC,
                    knowingly_exposed=True,
                    shared_with_others=True,
                ),
            ),
            expected_process=ProcessKind.NONE,
            basis="United States v. Stults (section II.C.2)",
        ),
        ExtendedScene(
            scene_id="E7",
            action=InvestigativeAction(
                description=(
                    "a repair technician, on his own initiative, finds "
                    "contraband in a customer's computer and reports it"
                ),
                actor=Actor.PRIVATE,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
            ),
            expected_process=ProcessKind.NONE,
            basis="private search doctrine (paper section III.B.i)",
        ),
        ExtendedScene(
            scene_id="E8",
            action=InvestigativeAction(
                description=(
                    "search the couple's shared computer with one "
                    "spouse's consent"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
                consent=ConsentFacts(scope=ConsentScope.SPOUSE),
            ),
            expected_process=ProcessKind.NONE,
            basis="Trulock/Matlock line (paper section III.B.c(ii))",
        ),
        ExtendedScene(
            scene_id="E9",
            action=InvestigativeAction(
                description=(
                    "search another user's password-protected files with "
                    "only a co-user's consent"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
                consent=ConsentFacts(
                    scope=ConsentScope.CO_USER_SHARED_SPACE,
                    exceeds_authority=True,
                ),
            ),
            expected_process=ProcessKind.SEARCH_WARRANT,
            basis="Trulock v. Freeh (paper section III.B.c(i))",
        ),
        ExtendedScene(
            scene_id="E10",
            action=InvestigativeAction(
                description=(
                    "search a minor child's computer with a parent's "
                    "consent"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
                consent=ConsentFacts(scope=ConsentScope.PARENT_OF_MINOR),
            ),
            expected_process=ProcessKind.NONE,
            basis="Lavin (paper section III.B.c(iii))",
        ),
        ExtendedScene(
            scene_id="E11",
            action=InvestigativeAction(
                description=(
                    "search an employee's workplace computer with the "
                    "private employer's consent"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
                consent=ConsentFacts(scope=ConsentScope.EMPLOYER),
            ),
            expected_process=ProcessKind.NONE,
            basis="United States v. Ziegler (paper section III.B.c(iv))",
        ),
        ExtendedScene(
            scene_id="E12",
            action=InvestigativeAction(
                description=(
                    "search a probationer's computer on reasonable "
                    "suspicion"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
                doctrine=DoctrineFacts(target_on_probation=True),
            ),
            expected_process=ProcessKind.NONE,
            basis="United States v. Knights (paper section III.B.f)",
        ),
        ExtendedScene(
            scene_id="E13",
            action=InvestigativeAction(
                description=(
                    "an undercover agent records his own conversation "
                    "with the suspect"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.REAL_TIME,
                context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
                consent=ConsentFacts(
                    scope=ConsentScope.ONE_PARTY_TO_COMMUNICATION
                ),
            ),
            expected_process=ProcessKind.NONE,
            basis="2511(2)(c); Cassiere (paper section III.B.c(vi))",
        ),
        ExtendedScene(
            scene_id="E14",
            action=InvestigativeAction(
                description=(
                    "install an emergency pen register during an ongoing "
                    "attack on a protected computer"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.NON_CONTENT,
                timing=Timing.REAL_TIME,
                context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
                doctrine=DoctrineFacts(emergency_pen_trap=True),
            ),
            expected_process=ProcessKind.NONE,
            basis="18 U.S.C. 3125 (paper section III.B.d)",
        ),
        ExtendedScene(
            scene_id="E15",
            action=InvestigativeAction(
                description=(
                    "seize a self-wiping device immediately, before its "
                    "destroy command erases the evidence"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
                doctrine=DoctrineFacts(exigent_circumstances=True),
            ),
            expected_process=ProcessKind.NONE,
            basis="exigent circumstances (paper section III.B.b)",
        ),
        ExtendedScene(
            scene_id="E16",
            action=InvestigativeAction(
                description=(
                    "seize contraband visible on a computer screen the "
                    "officer lawfully walked past"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
                doctrine=DoctrineFacts(plain_view=True),
            ),
            expected_process=ProcessKind.NONE,
            basis="plain view (paper section III.B.e)",
        ),
    )
