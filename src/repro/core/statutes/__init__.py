"""Statutory and constitutional rule modules.

Each module exposes ``evaluate(action, ...) -> Requirement | None`` plus
any statute-internal exception probes the engine records for its trace.
"""

from repro.core.statutes import fourth_amendment, pentrap, sca, wiretap

__all__ = ["fourth_amendment", "pentrap", "sca", "wiretap"]
