"""Stored Communications Act analysis: data at rest with providers.

Implements the paper's section III.A.3 treatment of the SCA:

* classification of a provider as ECS, RCS, or neither *with respect to a
  specific message* (the Alice/Bob e-mail example);
* the 2703 compelled-disclosure tiers (subpoena for basic subscriber
  information, 2703(d) court order for transactional records, warrant for
  stored content);
* the 2702 voluntary-disclosure rules for public vs non-public providers.
"""

from __future__ import annotations

from repro.core.action import InvestigativeAction
from repro.core.enums import (
    DataKind,
    LegalSource,
    Place,
    ProcessKind,
    ProviderRole,
    Timing,
)
from repro.core.ruling import ReasoningStep, Requirement


def classify_provider(
    serves_public: bool, message_retrieved: bool
) -> ProviderRole:
    """Classify a provider with respect to one message.

    Args:
        serves_public: Whether the provider offers its service to the
            public (Gmail: yes; a university mail server: no).
        message_retrieved: Whether the recipient has already retrieved /
            opened the message.

    Returns:
        ``ECS`` while the message awaits retrieval; after retrieval, a
        public provider storing the message becomes ``RCS`` while a
        non-public provider is ``NEITHER`` — the message drops out of the
        SCA and only the Fourth Amendment governs (Andersen Consulting).
    """
    if not message_retrieved:
        return ProviderRole.ECS
    if serves_public:
        return ProviderRole.RCS
    return ProviderRole.NEITHER


def applies(action: InvestigativeAction) -> bool:
    """Whether the SCA's compelled-disclosure scheme governs this action.

    The 2703 tiers regulate *government* access to records held by
    providers; the provider's own access to its stored communications is
    exempt (2701(c)(1)), and purely private access is a 2701 matter
    between private parties rather than a process requirement.
    """
    return (
        action.is_government_action()
        and action.timing is Timing.STORED
        and action.context.place is Place.THIRD_PARTY_PROVIDER
    )


def provider_role_for(action: InvestigativeAction) -> ProviderRole:
    """Resolve the provider's SCA role for the action's target message."""
    ctx = action.context
    if ctx.provider_role is not None:
        return ctx.provider_role
    serves_public = True if ctx.provider_serves_public is None else ctx.provider_serves_public
    return classify_provider(
        serves_public=serves_public,
        message_retrieved=ctx.delivered_to_recipient,
    )


#: Compelled-disclosure tiers of 18 U.S.C. 2703, least to most protected.
COMPELLED_DISCLOSURE_TIERS: dict[DataKind, ProcessKind] = {
    DataKind.SUBSCRIBER_INFO: ProcessKind.SUBPOENA,
    DataKind.TRANSACTIONAL_RECORD: ProcessKind.COURT_ORDER,
    DataKind.NON_CONTENT: ProcessKind.COURT_ORDER,
    DataKind.CONTENT: ProcessKind.SEARCH_WARRANT,
}


def evaluate(action: InvestigativeAction) -> Requirement | None:
    """Apply the SCA's compelled-disclosure tiers to one action.

    Returns:
        The tiered :class:`Requirement`, or ``None`` when the SCA does not
        apply (not stored-at-provider, or the provider is neither ECS nor
        RCS with respect to this message).
    """
    if not applies(action):
        return None

    role = provider_role_for(action)
    if role is ProviderRole.NEITHER:
        # The message has dropped out of the SCA (opened mail on a
        # non-public server); the Fourth Amendment governs alone.
        return None

    process = COMPELLED_DISCLOSURE_TIERS.get(action.data_kind)
    if process is None:
        return None

    return Requirement(
        source=LegalSource.SCA,
        process=process,
        steps=(
            ReasoningStep(
                source=LegalSource.SCA,
                text=(
                    f"The provider is {role.value.replace('_', ' ')} with "
                    f"respect to this data; compelling "
                    f"{action.data_kind.value.replace('_', ' ')} from it "
                    f"requires at least a {process.display_name} "
                    f"(2703 tiers)."
                ),
                authorities=("sca_2703",),
            ),
        ),
    )


def may_voluntarily_disclose(
    serves_public: bool,
    data_kind: DataKind,
    to_government: bool,
    emergency: bool = False,
    user_consented: bool = False,
    protects_provider: bool = False,
) -> bool:
    """The 2702 voluntary-disclosure rule.

    Args:
        serves_public: Whether the provider serves the public.
        data_kind: What the provider would hand over.
        to_government: Whether the recipient is a government entity.
        emergency: A 2702(b)(8)-style emergency involving danger of death
            or serious injury.
        user_consented: The originator/subscriber consented.
        protects_provider: Disclosure is necessary to protect the
            provider's own rights and property.

    Returns:
        Whether the disclosure is lawful without compulsion.  Non-public
        providers may disclose freely; public providers may hand
        non-content to non-government entities, and anything at all only
        under the enumerated exceptions.
    """
    if not serves_public:
        return True
    if emergency or user_consented or protects_provider:
        return True
    if not to_government:
        return data_kind is not DataKind.CONTENT
    return False
