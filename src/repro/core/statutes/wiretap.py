"""Wiretap Act (Title III) analysis: real-time interception of content.

Title III prohibits *any person* — not only the government — from
intercepting the contents of wire, oral, or electronic communications in
real time without a Title III order, subject to the statutory exceptions the
paper walks through (provider self-protection, one-party consent, computer
trespasser, readily-accessible-to-the-public).
"""

from __future__ import annotations

from repro.core.action import InvestigativeAction
from repro.core.enums import (
    Actor,
    ConsentScope,
    ExceptionKind,
    LegalSource,
    Place,
    ProcessKind,
)
from repro.core.ruling import ReasoningStep, Requirement


def applies(action: InvestigativeAction) -> bool:
    """Whether the Wiretap Act governs this action at all.

    The statute reaches only contemporaneous acquisition of *contents*
    (Steve Jackson Games); stored data and addressing information are
    governed by the SCA and Pen/Trap statute respectively.
    """
    return action.real_time() and action.acquires_content()


def evaluate(action: InvestigativeAction) -> Requirement | None:
    """Apply Title III to one action.

    Returns:
        A wiretap-order :class:`Requirement`, or ``None`` when the statute
        does not apply or a statutory exception authorizes the
        interception outright.
    """
    if not applies(action):
        return None

    exception = _statutory_exception(action)
    if exception is not None:
        # The statutory exceptions authorize the interception completely;
        # no Title III process is required.  The step is surfaced through
        # the engine's exception machinery instead of a requirement.
        return None

    return Requirement(
        source=LegalSource.WIRETAP_ACT,
        process=ProcessKind.WIRETAP_ORDER,
        steps=(
            ReasoningStep(
                source=LegalSource.WIRETAP_ACT,
                text=(
                    "Real-time acquisition of communication contents is an "
                    "interception; absent a statutory exception it requires "
                    "a Title III order."
                ),
                authorities=("wiretap_act", "steve_jackson"),
            ),
        ),
    )


def _statutory_exception(
    action: InvestigativeAction,
) -> tuple[ExceptionKind, ReasoningStep] | None:
    """Find the first Title III exception authorizing the interception."""
    return statutory_exception(action)


def statutory_exception(
    action: InvestigativeAction,
) -> tuple[ExceptionKind, ReasoningStep] | None:
    """The Title III exception covering this action, if any.

    Exposed separately so the engine can record the exception in the
    ruling's trace even though it never becomes a requirement.
    """
    doctrine = action.doctrine

    if action.actor is Actor.PROVIDER or doctrine.monitoring_own_network:
        return (
            ExceptionKind.PROVIDER_SELF_PROTECTION,
            ReasoningStep(
                source=LegalSource.WIRETAP_ACT,
                text=(
                    "A provider may intercept on its own network in the "
                    "normal course of protecting its rights and property "
                    "(2511(2)(a)(i))."
                ),
                authorities=("wiretap_provider_exception",),
            ),
        )

    if doctrine.victim_invited_monitoring and action.consent.covers_target_data:
        return (
            ExceptionKind.COMPUTER_TRESPASSER,
            ReasoningStep(
                source=LegalSource.WIRETAP_ACT,
                text=(
                    "The attacked system's owner authorized monitoring of "
                    "the trespasser's communications on that system "
                    "(2511(2)(i))."
                ),
                authorities=("trespasser_exception", "villanueva"),
            ),
        )

    if action.consent.effective() and action.consent.scope in (
        ConsentScope.ONE_PARTY_TO_COMMUNICATION,
        ConsentScope.NETWORK_OWNER,
        ConsentScope.TARGET,
    ):
        return (
            ExceptionKind.PARTY_CONSENT,
            ReasoningStep(
                source=LegalSource.WIRETAP_ACT,
                text=(
                    "A party to the communication (or the system owner "
                    "with authority over it) consented to the interception "
                    "(2511(2)(c))."
                ),
                authorities=("one_party_consent",),
            ),
        )

    if _readily_accessible_to_public(action):
        return (
            ExceptionKind.ACCESSIBLE_TO_PUBLIC,
            ReasoningStep(
                source=LegalSource.WIRETAP_ACT,
                text=(
                    "The communication is made through a system configured "
                    "so it is readily accessible to the general public — "
                    "public boards, open chat rooms, broadcast P2P queries "
                    "(2511(2)(g)(i))."
                ),
                authorities=("public_access_exception",),
            ),
        )

    return None


def _readily_accessible_to_public(action: InvestigativeAction) -> bool:
    """The 2511(2)(g)(i) readily-accessible-to-the-public test.

    Public postings, open chat rooms, and deliberately shared material
    qualify.  Following the paper's Table 1 rows 4 and 6, payloads radiated
    over a residential wireless link do *not* qualify even when the link is
    unencrypted — the Street View lesson.
    """
    ctx = action.context
    if ctx.place is Place.WIRELESS_BROADCAST:
        return False
    return ctx.place is Place.PUBLIC or ctx.knowingly_exposed or ctx.shared_with_others
