"""Fourth Amendment analysis: search, seizure, and the warrant requirement.

The constitutional layer of the engine.  A government acquisition of data in
which the target retains a reasonable expectation of privacy is a "search"
and presumptively requires a search warrant supported by probable cause
(paper sections II.B.1 and III.A).
"""

from __future__ import annotations

from repro.core.action import InvestigativeAction
from repro.core.enums import LegalSource, ProcessKind
from repro.core.ruling import PrivacyFinding, ReasoningStep, Requirement


def evaluate(
    action: InvestigativeAction, privacy: PrivacyFinding
) -> Requirement | None:
    """Apply the Fourth Amendment to one action.

    Args:
        action: The acquisition under review.
        privacy: The Katz REP finding for the acquisition's target.

    Returns:
        A warrant :class:`Requirement` when the action is a search of a
        constitutionally protected interest, or ``None`` when the Fourth
        Amendment imposes no requirement (private actor, no REP, or a
        doctrine that takes the action outside "search").
    """
    if not action.is_government_action():
        # The state-action requirement: purely private searches are outside
        # the Fourth Amendment entirely (paper section III.B.i).
        return None

    doctrine = action.doctrine

    if doctrine.mining_of_lawful_data:
        # Sloane (Table 1 scene 19): analyzing data the government already
        # lawfully holds is not a fresh search.
        return None

    if doctrine.credentials_lawfully_obtained:
        # Table 1 scene 20 (authors' judgment): using credentials lawfully
        # obtained from an arrested defendant to retrieve the defendant's
        # remote data requires no further process.
        return None

    if doctrine.hash_search_of_lawful_media:
        # Crist (Table 1 scene 18): hashing an entire lawfully held drive
        # to hunt for particular files is itself a search, so lawful
        # custody of the media does not defeat the warrant requirement.
        return Requirement(
            source=LegalSource.FOURTH_AMENDMENT,
            process=ProcessKind.SEARCH_WARRANT,
            steps=(
                ReasoningStep(
                    source=LegalSource.FOURTH_AMENDMENT,
                    text=(
                        "Running hash comparisons across the entire drive "
                        "examines files beyond the lawful basis of custody "
                        "and is a search requiring a warrant."
                    ),
                    authorities=("crist",),
                ),
            ),
        )

    if not privacy.has_rep:
        # No reasonable expectation of privacy means no "search" occurred;
        # the Fourth Amendment imposes nothing (statutes may still apply).
        return None

    return Requirement(
        source=LegalSource.FOURTH_AMENDMENT,
        process=ProcessKind.SEARCH_WARRANT,
        steps=(
            ReasoningStep(
                source=LegalSource.FOURTH_AMENDMENT,
                text=(
                    "Government acquisition of data protected by a "
                    "reasonable expectation of privacy is a search and "
                    "presumptively requires a warrant on probable cause."
                ),
                authorities=("fourth_amendment", "katz"),
            ),
        ),
    )
