"""Pen/Trap statute analysis: real-time collection of non-content data.

A pen register records outgoing addressing information and a trap-and-trace
device records incoming addressing information (18 U.S.C. 3127(3)-(4)).
Installing either requires a court order unless a statutory exception
applies (provider operations, user consent, the 3125 emergencies), per
paper sections II.B.2(c) and III.A.3.
"""

from __future__ import annotations

from repro.core.action import InvestigativeAction
from repro.core.enums import (
    Actor,
    ConsentScope,
    DataKind,
    ExceptionKind,
    LegalSource,
    Place,
    ProcessKind,
)
from repro.core.ruling import ReasoningStep, Requirement


def applies(action: InvestigativeAction) -> bool:
    """Whether the Pen/Trap statute governs this action.

    Only real-time acquisition of addressing / other non-content
    information counts; content is Title III's domain and stored records
    are the SCA's.
    """
    return action.real_time() and action.data_kind is DataKind.NON_CONTENT


def evaluate(action: InvestigativeAction) -> Requirement | None:
    """Apply the Pen/Trap statute to one action.

    Returns:
        A court-order :class:`Requirement`, or ``None`` when the statute
        does not apply or a statutory exception authorizes the collection.
    """
    if not applies(action):
        return None

    if statutory_exception(action) is not None:
        return None

    return Requirement(
        source=LegalSource.PEN_TRAP,
        process=ProcessKind.COURT_ORDER,
        steps=(
            ReasoningStep(
                source=LegalSource.PEN_TRAP,
                text=(
                    "Real-time collection of dialing/routing/addressing "
                    "information (including packet sizes and IP headers) "
                    "requires a pen/trap court order."
                ),
                authorities=("pen_trap", "forrester"),
            ),
        ),
    )


def statutory_exception(
    action: InvestigativeAction,
) -> tuple[ExceptionKind, ReasoningStep] | None:
    """The Pen/Trap exception covering this action, if any."""
    ctx = action.context
    doctrine = action.doctrine

    if action.actor is Actor.PROVIDER or doctrine.monitoring_own_network:
        return (
            ExceptionKind.PROVIDER_SELF_PROTECTION,
            ReasoningStep(
                source=LegalSource.PEN_TRAP,
                text=(
                    "Providers may record addressing information relating "
                    "to the operation and protection of their own service "
                    "without an order (3121(b))."
                ),
                authorities=("pen_trap_provider_exception",),
            ),
        )

    if doctrine.emergency_pen_trap:
        return (
            ExceptionKind.EMERGENCY_PEN_TRAP,
            ReasoningStep(
                source=LegalSource.PEN_TRAP,
                text=(
                    "A statutory emergency (danger to life, organized "
                    "crime, national security, or an ongoing attack on a "
                    "protected computer) authorizes installation before an "
                    "order (3125)."
                ),
                authorities=("emergency_pen_trap",),
            ),
        )

    if doctrine.victim_invited_monitoring and action.consent.covers_target_data:
        return (
            ExceptionKind.COMPUTER_TRESPASSER,
            ReasoningStep(
                source=LegalSource.PEN_TRAP,
                text=(
                    "The service user under attack consented to the "
                    "recording on their own system (3121(b)(3))."
                ),
                authorities=("pen_trap_provider_exception", "villanueva"),
            ),
        )

    if action.consent.effective() and action.consent.scope in (
        ConsentScope.NETWORK_OWNER,
        ConsentScope.TARGET,
        ConsentScope.ONE_PARTY_TO_COMMUNICATION,
    ):
        return (
            ExceptionKind.PARTY_CONSENT,
            ReasoningStep(
                source=LegalSource.PEN_TRAP,
                text=(
                    "The user of the service whose addressing information "
                    "is recorded consented (3121(b)(3))."
                ),
                authorities=("pen_trap_provider_exception",),
            ),
        )

    if ctx.place is Place.WIRELESS_BROADCAST:
        return (
            ExceptionKind.NO_REP,
            ReasoningStep(
                source=LegalSource.PEN_TRAP,
                text=(
                    "Headers radiated in the clear over the air are "
                    "treated like the address on an envelope, collectable "
                    "without an order (authors' judgment; cf. WarDriving, "
                    "Table 1 rows 3 and 5)."
                ),
                authorities=("paper_judgment",),
            ),
        )

    if ctx.place is Place.PUBLIC or ctx.knowingly_exposed or ctx.shared_with_others:
        return (
            ExceptionKind.ACCESSIBLE_TO_PUBLIC,
            ReasoningStep(
                source=LegalSource.PEN_TRAP,
                text=(
                    "Addressing information the user broadcasts publicly "
                    "(open boards, P2P query floods) is readily accessible "
                    "to the public and outside the statute's purpose."
                ),
                authorities=("public_access_exception",),
            ),
        )

    return None
