"""The investigative action model.

An :class:`InvestigativeAction` is the engine's unit of analysis: one actor
acquiring one kind of data, at one time relative to transmission, in one
environment, under zero or more claimed exceptions.  Table 1 of the paper is
twenty such actions; every technique in :mod:`repro.techniques` describes the
actions it must perform so the engine can rule on them before they run.
"""

from __future__ import annotations

import dataclasses

from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, ConsentScope, DataKind, Timing


@dataclasses.dataclass(frozen=True)
class ConsentFacts:
    """Facts about any consent offered to justify the action.

    Attributes:
        scope: Who consented (see :class:`~repro.core.enums.ConsentScope`).
        voluntary: Whether the consent was voluntarily given.
        exceeds_authority: The search would reach spaces the consenter has
            no common authority over (e.g. a co-user consenting to another
            user's password-protected files — Matlock/Trulock line).
        revoked: The consent has been revoked.  Revocation stops future
            searching but does not restore privacy in copies already made
            (Megahed).
        covers_target_data: Whether the consented scope actually covers the
            specific data the action acquires (Table 1 scene 16: the victim
            can consent to monitoring *their* machine but not to collection
            on the attacker's machine).
    """

    scope: ConsentScope = ConsentScope.NONE
    voluntary: bool = True
    exceeds_authority: bool = False
    revoked: bool = False
    covers_target_data: bool = True

    def effective(self) -> bool:
        """Whether the consent actually authorizes the acquisition."""
        return (
            self.scope is not ConsentScope.NONE
            and self.voluntary
            and not self.exceeds_authority
            and not self.revoked
            and self.covers_target_data
        )


@dataclasses.dataclass(frozen=True)
class DoctrineFacts:
    """Doctrine-specific flags the general model cannot derive.

    These correspond to the narrow holdings the paper leans on for
    individual Table 1 rows.

    Attributes:
        exigent_circumstances: Evidence destruction / danger / hot pursuit
            / escape risk (Mincey; paper section III.B.b).
        plain_view: Incriminating material observed from a lawful vantage
            point with immediately apparent character.
        target_on_probation: Target is on probation/parole/supervised
            release (Knights).
        emergency_pen_trap: A statutory pen/trap emergency under 18 U.S.C.
            3125 with the required high-level approval.
        hash_search_of_lawful_media: Running hash comparisons across media
            already lawfully in custody — still a search (Crist, scene 18).
        mining_of_lawful_data: Mining a database already lawfully held for
            hidden patterns — not a fresh search (Sloane, scene 19).
        credentials_lawfully_obtained: Remote data accessed with
            credentials lawfully obtained from an arrested defendant
            (scene 20, authors' judgment).
        monitoring_own_network: The actor observes traffic on a network it
            owns/operates (provider exceptions; Table 1 scenes 1-2).
        victim_invited_monitoring: The system owner under attack invited
            the monitoring of the intruder (computer-trespasser exception,
            scene 15).
    """

    exigent_circumstances: bool = False
    plain_view: bool = False
    target_on_probation: bool = False
    emergency_pen_trap: bool = False
    hash_search_of_lawful_media: bool = False
    mining_of_lawful_data: bool = False
    credentials_lawfully_obtained: bool = False
    monitoring_own_network: bool = False
    victim_invited_monitoring: bool = False


@dataclasses.dataclass(frozen=True)
class InvestigativeAction:
    """One investigative acquisition to be ruled on by the engine.

    Attributes:
        description: Human-readable statement of what is being done.
        actor: Who performs the acquisition.
        data_kind: What category of data is acquired.
        timing: Real-time interception vs access to stored data.
        context: The environment the data lives in.
        consent: Facts about any consent relied upon.
        doctrine: Narrow doctrine flags (see :class:`DoctrineFacts`).
    """

    description: str
    actor: Actor
    data_kind: DataKind
    timing: Timing
    context: EnvironmentContext
    consent: ConsentFacts = dataclasses.field(default_factory=ConsentFacts)
    doctrine: DoctrineFacts = dataclasses.field(default_factory=DoctrineFacts)

    def is_government_action(self) -> bool:
        """Whether the Fourth Amendment's state-action requirement is met."""
        return self.actor in (Actor.GOVERNMENT, Actor.GOVERNMENT_AGENT)

    def acquires_content(self) -> bool:
        """Whether the action reaches communication *contents*."""
        return self.data_kind is DataKind.CONTENT

    def real_time(self) -> bool:
        """Whether acquisition is contemporaneous with transmission."""
        return self.timing is Timing.REAL_TIME

    def fingerprint(self) -> tuple:
        """Canonical hashable projection of this action's ruling inputs.

        Two actions with equal fingerprints always receive identical
        rulings; see :mod:`repro.core.fingerprint` for the normalization
        rules (``description`` is excluded — the engine never reads it).
        """
        from repro.core.fingerprint import action_fingerprint

        return action_fingerprint(self)
