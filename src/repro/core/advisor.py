"""Researcher-facing feasibility assessment (the paper's Section IV).

The paper's recommendation engine: given the set of investigative actions a
proposed technique must perform, classify the technique as *workable
without* legal process (section IV.A — the anonymous-P2P timing attack),
*workable with* process (section IV.B — the DSSS watermark), or workable as
a *private search*, and say what a researcher should do about it.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.core.action import InvestigativeAction
from repro.core.engine import ComplianceEngine
from repro.core.enums import Actor, ProcessKind
from repro.core.ruling import Ruling


class Feasibility(enum.Enum):
    """The paper's Section IV classification of a technique."""

    #: Every action the technique needs is lawful with no process — it can
    #: be used ahead of any warrant/court order/subpoena (section IV.A).
    WORKABLE_WITHOUT_PROCESS = "workable without process"
    #: At least one action needs process, but the showing required is
    #: below a full wiretap order (section IV.B, situation one).
    WORKABLE_WITH_PROCESS = "workable with process"
    #: The technique needs a Title III order — the heaviest process; the
    #: paper warns law enforcement "may not be willing to adopt" such
    #: tools given overhead and budget.
    WORKABLE_WITH_WIRETAP_ORDER = "workable only with a wiretap order"


@dataclasses.dataclass(frozen=True)
class RedesignSuggestion:
    """A concrete redesign that lowers a technique's process burden.

    The paper's watermark lesson generalized: "they do not need to
    collect the entire packet, so they do not need a wiretap warrant."
    When a technique's content collection can be downgraded to
    non-content (timing, sizes, addressing), the required process drops
    from a Title III order toward a pen/trap court order.

    Attributes:
        original: Assessment of the technique as proposed.
        redesigned: Assessment of the non-content variant.
        redesigned_actions: The downgraded action list.
        note: What the redesign changed.
    """

    original: "TechniqueAssessment"
    redesigned: "TechniqueAssessment"
    redesigned_actions: tuple[InvestigativeAction, ...]
    note: str

    @property
    def process_saved(self) -> int:
        """How many rungs of the process ladder the redesign saves."""
        return int(self.original.required_process) - int(
            self.redesigned.required_process
        )


@dataclasses.dataclass(frozen=True)
class TechniqueAssessment:
    """The advisor's verdict on one proposed technique.

    Attributes:
        name: The technique's name.
        feasibility: The Section IV classification.
        required_process: The strongest process any constituent action
            needs.
        rulings: Per-action rulings, in the order actions were given.
        private_search_viable: Whether the same actions performed by a
            private party (e.g. campus IT administrators, section IV.B
            situation two) would be lawful without process.
        recommendation: The advisor's plain-English advice.
    """

    name: str
    feasibility: Feasibility
    required_process: ProcessKind
    rulings: tuple[Ruling, ...]
    private_search_viable: bool
    recommendation: str


class ResearchAdvisor:
    """Assesses proposed forensic techniques against the legal framework."""

    def __init__(self, engine: ComplianceEngine | None = None) -> None:
        self._engine = engine or ComplianceEngine()

    def assess(
        self, name: str, actions: list[InvestigativeAction]
    ) -> TechniqueAssessment:
        """Assess a technique described by its constituent actions.

        Args:
            name: Human-readable technique name.
            actions: Every acquisition the technique must perform, as the
                government would perform it.

        Returns:
            A :class:`TechniqueAssessment` with per-action rulings, the
            overall feasibility class, and a recommendation.
        """
        if not actions:
            raise ValueError("a technique must perform at least one action")

        rulings = tuple(self._engine.evaluate(a) for a in actions)
        required = max(r.required_process for r in rulings)
        feasibility = self._classify(required)
        private_viable = self._private_search_viable(actions)
        recommendation = self._recommend(feasibility, required, private_viable)

        return TechniqueAssessment(
            name=name,
            feasibility=feasibility,
            required_process=required,
            rulings=rulings,
            private_search_viable=private_viable,
            recommendation=recommendation,
        )

    def suggest_redesign(
        self, name: str, actions: list[InvestigativeAction]
    ) -> RedesignSuggestion | None:
        """Propose a non-content redesign if it lowers the process burden.

        Every real-time *content* acquisition is downgraded to its
        non-content shadow (collect timing/sizes/addressing instead of
        payloads); if the downgraded technique needs strictly less
        process, the suggestion is returned.

        Returns:
            The suggestion, or ``None`` when no downgrade is possible or
            the downgrade saves nothing.
        """
        from repro.core.enums import DataKind, Timing

        downgraded: list[InvestigativeAction] = []
        changed = False
        for action in actions:
            if (
                action.data_kind is DataKind.CONTENT
                and action.timing is Timing.REAL_TIME
            ):
                downgraded.append(
                    dataclasses.replace(
                        action,
                        data_kind=DataKind.NON_CONTENT,
                        description=(
                            f"{action.description} (rates/addressing "
                            f"only, no contents)"
                        ),
                    )
                )
                changed = True
            else:
                downgraded.append(action)
        if not changed:
            return None

        original = self.assess(name, actions)
        redesigned = self.assess(f"{name} (non-content redesign)", downgraded)
        if redesigned.required_process >= original.required_process:
            return None
        return RedesignSuggestion(
            original=original,
            redesigned=redesigned,
            redesigned_actions=tuple(downgraded),
            note=(
                "collect timing, sizes, and addressing instead of "
                "contents; the acquisition moves from Title III to the "
                "Pen/Trap statute"
            ),
        )

    @staticmethod
    def _classify(required: ProcessKind) -> Feasibility:
        if required is ProcessKind.NONE:
            return Feasibility.WORKABLE_WITHOUT_PROCESS
        if required is ProcessKind.WIRETAP_ORDER:
            return Feasibility.WORKABLE_WITH_WIRETAP_ORDER
        return Feasibility.WORKABLE_WITH_PROCESS

    def _private_search_viable(
        self, actions: list[InvestigativeAction]
    ) -> bool:
        """Re-run the actions as a private network operator would perform them.

        Section IV.B situation two: two campus administrators run the
        watermark on their own gateways and report suspicions to law
        enforcement — a private search with, at most, provider-exception
        cover.  We model this by re-evaluating each action with a private
        actor monitoring its own network.
        """
        for action in actions:
            as_private = dataclasses.replace(
                action,
                actor=Actor.PRIVATE,
                doctrine=dataclasses.replace(
                    action.doctrine, monitoring_own_network=True
                ),
            )
            if self._engine.evaluate(as_private).needs_process:
                return False
        return True

    @staticmethod
    def _recommend(
        feasibility: Feasibility,
        required: ProcessKind,
        private_viable: bool,
    ) -> str:
        if feasibility is Feasibility.WORKABLE_WITHOUT_PROCESS:
            return (
                "Directly usable in criminal investigations ahead of any "
                "warrant/court order/subpoena; ideal for traceback-related "
                "network forensics (paper section IV.A)."
            )
        parts = [
            f"Law enforcement must first obtain a "
            f"{required.display_name}; design the technique so the "
            f"evidence it gathers can support that application."
        ]
        if private_viable:
            parts.append(
                "Alternatively workable as a private search: network "
                "operators may run it on their own systems and report "
                "findings to law enforcement (paper section IV.B, "
                "situation two)."
            )
        if feasibility is Feasibility.WORKABLE_WITH_WIRETAP_ORDER:
            parts.append(
                "A Title III order is the hardest process to obtain; "
                "consider redesigning to collect only non-content data so "
                "a court order suffices."
            )
        return " ".join(parts)
