"""Foundational enumerations for the legal-compliance core.

These enums encode the vocabulary of the paper: who acts, what kind of data
is touched, when it is touched (in flight vs at rest), where it lives, what
legal process exists, and which evidentiary standard a showing satisfies.

Every other module in :mod:`repro.core` builds on these types, so they are
deliberately small, explicit, and heavily documented.
"""

from __future__ import annotations

import enum


class Actor(enum.Enum):
    """Who performs the investigative action.

    The Fourth Amendment restrains only the government and those acting as
    its agents; a genuinely private search is outside its scope (paper
    section III.B.i, "Private Search").
    """

    GOVERNMENT = "government"
    #: A private party acting at the government's instigation is treated as
    #: a government agent (the "agent of the government" doctrine).
    GOVERNMENT_AGENT = "government_agent"
    #: A private party acting on its own behaviour — repair shops, network
    #: administrators monitoring their own networks, nosy neighbours.
    PRIVATE = "private"
    #: The provider of the communication service being observed.  Providers
    #: enjoy statutory self-protection exceptions (Wiretap Act
    #: 2511(2)(a)(i); Pen/Trap 3121(b)).
    PROVIDER = "provider"


class DataKind(enum.Enum):
    """The category of data an action acquires.

    The statutory scheme turns almost entirely on this split: Title III
    regulates *content*, the Pen/Trap statute regulates *addressing and
    other non-content* information, and the SCA has separate tiers for
    subscriber info, transactional records, and stored content.
    """

    #: The substance of a communication — message bodies, payloads, page
    #: contents (18 U.S.C. 2510(8)).
    CONTENT = "content"
    #: Dialing/routing/addressing/signalling information — IP headers,
    #: TCP/UDP ports, e-mail TO/FROM, packet sizes (18 U.S.C. 3127(3)-(4)).
    NON_CONTENT = "non_content"
    #: Basic subscriber information held by a provider: name, address,
    #: connection logs, payment data (18 U.S.C. 2703(c)(2)).
    SUBSCRIBER_INFO = "subscriber_info"
    #: Other transactional records held by a provider (2703(c)(1)).
    TRANSACTIONAL_RECORD = "transactional_record"
    #: Physical items (computers, drives) rather than data per se.
    PHYSICAL = "physical"


class Timing(enum.Enum):
    """When relative to transmission the data is acquired.

    Real-time acquisition of content triggers the Wiretap Act; acquisition
    of the same bytes at rest triggers the SCA or the Fourth Amendment.
    The contemporaneity requirement keeps the two regimes apart (paper
    section III.A.3).
    """

    REAL_TIME = "real_time"
    STORED = "stored"


class Place(enum.Enum):
    """Where the data lives when acquired."""

    #: The suspect's own computer, home, or personal effects.
    SUSPECT_PREMISES = "suspect_premises"
    #: A third-party service provider (ISP, webmail, hosting).
    THIRD_PARTY_PROVIDER = "third_party_provider"
    #: In transit on a network path (backbone, ISP router, gateway).
    TRANSMISSION_PATH = "transmission_path"
    #: Broadcast over the air (wireless LAN radio range).
    WIRELESS_BROADCAST = "wireless_broadcast"
    #: Knowingly exposed in a public place or publicly accessible service
    #: (public web site, open chat room, P2P shares).
    PUBLIC = "public"
    #: Lawfully in the government's possession already (seized drive,
    #: surrendered database).
    GOVERNMENT_CUSTODY = "government_custody"
    #: The network of the party consenting to the monitoring (victim's
    #: machine, employer's network).
    CONSENTING_NETWORK = "consenting_network"


class ProcessKind(enum.IntEnum):
    """Legal process kinds, ordered by the difficulty of obtaining them.

    The integer ordering encodes the paper's observation that "the degree of
    difficulty for the above processes is in the ascending order" (section
    II.A): a warrant always suffices where a court order would, and a court
    order where a subpoena would.  ``WIRETAP_ORDER`` (a Title III
    "super-warrant") sits above an ordinary search warrant.
    """

    NONE = 0
    SUBPOENA = 1
    COURT_ORDER = 2
    SEARCH_WARRANT = 3
    WIRETAP_ORDER = 4

    @property
    def display_name(self) -> str:
        """Human-readable name used in reports."""
        return _PROCESS_NAMES[self]

    def satisfies(self, required: "ProcessKind") -> bool:
        """Whether holding this process satisfies a requirement.

        A stronger process satisfies any weaker requirement; this mirrors
        the doctrine that a warrant can compel anything a subpoena could.
        """
        return self >= required


_PROCESS_NAMES = {
    ProcessKind.NONE: "no process",
    ProcessKind.SUBPOENA: "subpoena",
    ProcessKind.COURT_ORDER: "court order",
    ProcessKind.SEARCH_WARRANT: "search warrant",
    ProcessKind.WIRETAP_ORDER: "wiretap order (Title III)",
}


class Standard(enum.IntEnum):
    """Evidentiary standards, ordered by strength of the required showing.

    Section II.A: "Merely a suspicion is enough to apply for a subpoena.
    Some 'specific and articulable facts' are needed to apply for a court
    order.  Probable cause is necessary to apply for a search warrant."
    """

    NOTHING = 0
    MERE_SUSPICION = 1
    SPECIFIC_AND_ARTICULABLE_FACTS = 2
    PROBABLE_CAUSE = 3
    #: Title III adds necessity/exhaustion findings on top of probable cause.
    SUPER_WARRANT_SHOWING = 4

    def satisfies(self, required: "Standard") -> bool:
        """Whether a showing at this level meets a required standard."""
        return self >= required


#: The showing each kind of process demands from the applicant.
REQUIRED_SHOWING: dict[ProcessKind, Standard] = {
    ProcessKind.NONE: Standard.NOTHING,
    ProcessKind.SUBPOENA: Standard.MERE_SUSPICION,
    ProcessKind.COURT_ORDER: Standard.SPECIFIC_AND_ARTICULABLE_FACTS,
    ProcessKind.SEARCH_WARRANT: Standard.PROBABLE_CAUSE,
    ProcessKind.WIRETAP_ORDER: Standard.SUPER_WARRANT_SHOWING,
}


class LegalSource(enum.Enum):
    """The body of law a reasoning step or requirement derives from."""

    FOURTH_AMENDMENT = "Fourth Amendment"
    WIRETAP_ACT = "Wiretap Act (Title III), 18 U.S.C. 2510-2522"
    SCA = "Stored Communications Act, 18 U.S.C. 2701-2712"
    PEN_TRAP = "Pen/Trap statute, 18 U.S.C. 3121-3127"
    DOCTRINE = "judicial doctrine"


class ProviderRole(enum.Enum):
    """SCA classification of a provider with respect to one message.

    Section III.A.3's Alice/Bob example: a provider is ECS while the
    message awaits retrieval, may become RCS once the recipient leaves the
    opened message in storage (public providers only), and a non-public
    provider holding an opened message is *neither* — the message "drops
    out of the SCA" and only the Fourth Amendment governs.
    """

    ECS = "electronic_communication_service"
    RCS = "remote_computing_service"
    NEITHER = "neither"


class ExceptionKind(enum.Enum):
    """Warrant-requirement and statutory exceptions (paper section III.B)."""

    NO_REP = "no reasonable expectation of privacy"
    EXIGENT_CIRCUMSTANCES = "exigent circumstances"
    CONSENT = "consent"
    EMERGENCY_PEN_TRAP = "emergency pen/trap (18 U.S.C. 3125)"
    PLAIN_VIEW = "plain view"
    PROBATION_PAROLE = "probation/parole"
    COMPUTER_TRESPASSER = "computer trespasser (2511(2)(i))"
    ACCESSIBLE_TO_PUBLIC = "accessible to the public (2511(2)(g)(i))"
    PRIVATE_SEARCH = "private search"
    PROVIDER_SELF_PROTECTION = "provider exception (2511(2)(a)(i) / 3121(b))"
    PARTY_CONSENT = "party to the communication consents (2511(2)(c))"


class ConsentScope(enum.Enum):
    """Who consented, which controls how far a consent search may reach."""

    NONE = "none"
    #: The target of the investigation consented.
    TARGET = "target"
    #: A co-user with common authority over shared space only.
    CO_USER_SHARED_SPACE = "co_user_shared_space"
    #: A spouse (may consent to all of the couple's property).
    SPOUSE = "spouse"
    #: A parent of a minor child.
    PARENT_OF_MINOR = "parent_of_minor"
    #: Private-sector employer over workplace systems.
    EMPLOYER = "employer"
    #: Owner/operator of the network where data resides (e.g. victim).
    NETWORK_OWNER = "network_owner"
    #: One party to a monitored communication (federal one-party rule).
    ONE_PARTY_TO_COMMUNICATION = "one_party"


class Admissibility(enum.Enum):
    """Outcome for a piece of evidence at a suppression hearing."""

    ADMISSIBLE = "admissible"
    SUPPRESSED = "suppressed"
    #: Derived from suppressed evidence (fruit of the poisonous tree).
    SUPPRESSED_DERIVATIVE = "suppressed_derivative"
