"""Core of the reproduction: the paper's legal framework, executable.

Public API::

    from repro.core import (
        ComplianceEngine, InvestigativeAction, EnvironmentContext,
        Ruling, analyze_privacy, build_table1, ResearchAdvisor,
    )

    engine = ComplianceEngine()
    ruling = engine.evaluate(action)
    ruling.needs_process       # the Table 1 answer
    ruling.required_process    # subpoena / court order / warrant / Title III
    print(ruling.explain())    # full citation-bearing reasoning trace
"""

from repro.core.action import (
    ConsentFacts,
    DoctrineFacts,
    InvestigativeAction,
)
from repro.core.cache import DEFAULT_CACHE_SIZE, CacheStats, RulingCache
from repro.core.advisor import (
    Feasibility,
    RedesignSuggestion,
    ResearchAdvisor,
    TechniqueAssessment,
)
from repro.core.caselaw import (
    Authority,
    AuthorityKind,
    AuthorityRegistry,
    build_default_registry,
)
from repro.core.context import EnvironmentContext
from repro.core.engine import ComplianceEngine, RulingLedger, evaluate
from repro.core.fingerprint import (
    ActionFingerprint,
    action_fingerprint,
    fingerprint_digest,
)
from repro.core.extended_scenarios import (
    ExtendedScene,
    build_extended_catalogue,
)
from repro.core.interview import ActionInterview, Question, run_interview
from repro.core.enums import (
    REQUIRED_SHOWING,
    Actor,
    Admissibility,
    ConsentScope,
    DataKind,
    ExceptionKind,
    LegalSource,
    Place,
    ProcessKind,
    ProviderRole,
    Standard,
    Timing,
)
from repro.core.privacy import analyze_privacy
from repro.core.ruling import (
    AppliedException,
    PrivacyFinding,
    ReasoningStep,
    Requirement,
    Ruling,
)
from repro.core.scenarios import Scenario, build_table1
from repro.core.scope import (
    ExaminedRecord,
    ScopeDecision,
    WarrantScope,
    classify_record,
    locations_requiring_new_warrants,
)

__all__ = [
    "ActionFingerprint",
    "ActionInterview",
    "Actor",
    "Admissibility",
    "AppliedException",
    "Authority",
    "AuthorityKind",
    "AuthorityRegistry",
    "CacheStats",
    "ComplianceEngine",
    "ConsentFacts",
    "ConsentScope",
    "DEFAULT_CACHE_SIZE",
    "DataKind",
    "DoctrineFacts",
    "EnvironmentContext",
    "ExaminedRecord",
    "ExceptionKind",
    "ExtendedScene",
    "Feasibility",
    "InvestigativeAction",
    "LegalSource",
    "Place",
    "PrivacyFinding",
    "ProcessKind",
    "ProviderRole",
    "Question",
    "REQUIRED_SHOWING",
    "ReasoningStep",
    "RedesignSuggestion",
    "Requirement",
    "ResearchAdvisor",
    "Ruling",
    "RulingCache",
    "RulingLedger",
    "Scenario",
    "ScopeDecision",
    "Standard",
    "TechniqueAssessment",
    "Timing",
    "WarrantScope",
    "action_fingerprint",
    "analyze_privacy",
    "build_default_registry",
    "build_extended_catalogue",
    "build_table1",
    "classify_record",
    "evaluate",
    "fingerprint_digest",
    "locations_requiring_new_warrants",
    "run_interview",
]
