"""Canonical fingerprints for investigative actions.

The engine is a pure function of a subset of an
:class:`~repro.core.action.InvestigativeAction`'s fields: the ruling never
reads ``description`` (free text for humans), and several other fields are
read only behind guards in the rule modules.  The fingerprint is the
canonical, hashable projection of exactly the facts the ruling depends on,
with the guarded fields normalized to their effective values:

* ``description`` is dropped — no rule module reads it.
* ``context.provider_serves_public`` is normalized ``None -> True``
  (:func:`repro.core.statutes.sca.provider_role_for` treats an unknown
  provider as public), and to ``True`` whenever ``provider_role`` is set
  explicitly (the SCA returns the explicit role before ever consulting it).
* ``context.technology_in_general_public_use`` is normalized to ``False``
  unless ``home_interior`` is set — the Kyllo factor is only consulted for
  acquisitions that reveal the home interior
  (:func:`repro.core.privacy._objective_prong`).
* Consent collapses to ``(effective, scope-if-effective,
  covers_target_data)``: every consult in the rule modules goes through
  :meth:`~repro.core.action.ConsentFacts.effective`, reads ``scope`` only
  after ``effective()`` held, or reads ``covers_target_data`` directly
  (the computer-trespasser paths).

Two actions with equal fingerprints therefore receive byte-identical
rulings — including the full reasoning trace and ``explain()`` output —
which is what makes the fingerprint safe as a memoization key.  The
differential test suite re-proves this over a 10,000-action corpus on
every run.
"""

from __future__ import annotations

import hashlib

from repro.core.action import InvestigativeAction
from repro.core.enums import (
    Actor,
    ConsentScope,
    DataKind,
    Place,
    ProviderRole,
    Timing,
)

#: A fingerprint is a flat tuple of primitives (str/bool/None) — enum
#: members are stored as their ``.value`` so tuple hashing stays entirely
#: in C.  ``Enum.__hash__`` is a Python-level call, and the cache hashes
#: each fingerprint up to three times per miss (get, membership check,
#: insert); with ~5 enum members per 26-field tuple that overhead alone
#: made a cold cached batch slower than the uncached loop.  Fields are
#: positional, so same-valued members of *different* enums cannot collide.
ActionFingerprint = tuple

_FIELD_NAMES = (
    "actor",
    "data_kind",
    "timing",
    "place",
    "encrypted",
    "knowingly_exposed",
    "shared_with_others",
    "delivered_to_recipient",
    "provider_serves_public",
    "provider_role",
    "policy_eliminates_rep",
    "home_interior",
    "technology_in_general_public_use",
    "abandoned",
    "consent_effective",
    "consent_scope",
    "consent_covers_target_data",
    "exigent_circumstances",
    "plain_view",
    "target_on_probation",
    "emergency_pen_trap",
    "hash_search_of_lawful_media",
    "mining_of_lawful_data",
    "credentials_lawfully_obtained",
    "monitoring_own_network",
    "victim_invited_monitoring",
)


def action_fingerprint(action: InvestigativeAction) -> ActionFingerprint:
    """The canonical hashable projection of one action's ruling inputs.

    Args:
        action: The action to fingerprint.

    Returns:
        A flat tuple of the normalized fields the engine's ruling depends
        on.  Equal fingerprints guarantee identical rulings.
    """
    ctx = action.context
    consent = action.consent
    doctrine = action.doctrine
    consent_effective = consent.effective()
    provider_role = ctx.provider_role
    return (
        action.actor._value_,
        action.data_kind._value_,
        action.timing._value_,
        ctx.place._value_,
        ctx.encrypted,
        ctx.knowingly_exposed,
        ctx.shared_with_others,
        ctx.delivered_to_recipient,
        (
            True
            if provider_role is not None
            or ctx.provider_serves_public is None
            else ctx.provider_serves_public
        ),
        provider_role._value_ if provider_role is not None else None,
        ctx.policy_eliminates_rep,
        ctx.home_interior,
        (
            ctx.technology_in_general_public_use
            if ctx.home_interior
            else False
        ),
        ctx.abandoned,
        consent_effective,
        consent.scope._value_ if consent_effective else None,
        consent.covers_target_data,
        doctrine.exigent_circumstances,
        doctrine.plain_view,
        doctrine.target_on_probation,
        doctrine.emergency_pen_trap,
        doctrine.hash_search_of_lawful_media,
        doctrine.mining_of_lawful_data,
        doctrine.credentials_lawfully_obtained,
        doctrine.monitoring_own_network,
        doctrine.victim_invited_monitoring,
    )


#: Enum type per enum-bearing fingerprint field, for rehydrating the
#: stored primitive values in the human-facing views below.
_FIELD_ENUMS = {
    "actor": Actor,
    "data_kind": DataKind,
    "timing": Timing,
    "place": Place,
    "provider_role": ProviderRole,
    "consent_scope": ConsentScope,
}


def fingerprint_digest(fingerprint: ActionFingerprint) -> str:
    """Stable SHA-256 hex digest of a fingerprint.

    Enum-bearing fields render as ``ClassName.MEMBER`` so the digest
    survives process restarts and is safe to persist (tuple ``hash()`` is
    salted per interpreter; this is not) — and is unchanged from when the
    fingerprint tuple carried the enum members themselves.
    """
    rendered = "|".join(
        f"{name}={value!s}"
        for name, value in describe_fingerprint(fingerprint).items()
    )
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def describe_fingerprint(fingerprint: ActionFingerprint) -> dict:
    """Field-name -> value view of a fingerprint, for debugging output.

    Stored enum values are rehydrated to their members, so the view reads
    the same as it did when the tuple carried members directly.
    """
    described = {}
    for name, value in zip(_FIELD_NAMES, fingerprint):
        enum_type = _FIELD_ENUMS.get(name)
        if enum_type is not None and value is not None:
            value = enum_type(value)
        described[name] = value
    return described
