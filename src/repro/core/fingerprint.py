"""Canonical fingerprints for investigative actions.

The engine is a pure function of a subset of an
:class:`~repro.core.action.InvestigativeAction`'s fields: the ruling never
reads ``description`` (free text for humans), and several other fields are
read only behind guards in the rule modules.  The fingerprint is the
canonical, hashable projection of exactly the facts the ruling depends on,
with the guarded fields normalized to their effective values:

* ``description`` is dropped — no rule module reads it.
* ``context.provider_serves_public`` is normalized ``None -> True``
  (:func:`repro.core.statutes.sca.provider_role_for` treats an unknown
  provider as public), and to ``True`` whenever ``provider_role`` is set
  explicitly (the SCA returns the explicit role before ever consulting it).
* ``context.technology_in_general_public_use`` is normalized to ``False``
  unless ``home_interior`` is set — the Kyllo factor is only consulted for
  acquisitions that reveal the home interior
  (:func:`repro.core.privacy._objective_prong`).
* Consent collapses to ``(effective, scope-if-effective,
  covers_target_data)``: every consult in the rule modules goes through
  :meth:`~repro.core.action.ConsentFacts.effective`, reads ``scope`` only
  after ``effective()`` held, or reads ``covers_target_data`` directly
  (the computer-trespasser paths).

Two actions with equal fingerprints therefore receive byte-identical
rulings — including the full reasoning trace and ``explain()`` output —
which is what makes the fingerprint safe as a memoization key.  The
differential test suite re-proves this over a 10,000-action corpus on
every run.
"""

from __future__ import annotations

import hashlib

from repro.core.action import InvestigativeAction

#: A fingerprint is a flat tuple of enums/bools/None — hashable, orderable
#: by Python's tuple hash, and cheap to build (a single attribute sweep,
#: no dataclass recursion).
ActionFingerprint = tuple

_FIELD_NAMES = (
    "actor",
    "data_kind",
    "timing",
    "place",
    "encrypted",
    "knowingly_exposed",
    "shared_with_others",
    "delivered_to_recipient",
    "provider_serves_public",
    "provider_role",
    "policy_eliminates_rep",
    "home_interior",
    "technology_in_general_public_use",
    "abandoned",
    "consent_effective",
    "consent_scope",
    "consent_covers_target_data",
    "exigent_circumstances",
    "plain_view",
    "target_on_probation",
    "emergency_pen_trap",
    "hash_search_of_lawful_media",
    "mining_of_lawful_data",
    "credentials_lawfully_obtained",
    "monitoring_own_network",
    "victim_invited_monitoring",
)


def action_fingerprint(action: InvestigativeAction) -> ActionFingerprint:
    """The canonical hashable projection of one action's ruling inputs.

    Args:
        action: The action to fingerprint.

    Returns:
        A flat tuple of the normalized fields the engine's ruling depends
        on.  Equal fingerprints guarantee identical rulings.
    """
    ctx = action.context
    consent = action.consent
    doctrine = action.doctrine
    consent_effective = consent.effective()
    return (
        action.actor,
        action.data_kind,
        action.timing,
        ctx.place,
        ctx.encrypted,
        ctx.knowingly_exposed,
        ctx.shared_with_others,
        ctx.delivered_to_recipient,
        (
            True
            if ctx.provider_role is not None
            or ctx.provider_serves_public is None
            else ctx.provider_serves_public
        ),
        ctx.provider_role,
        ctx.policy_eliminates_rep,
        ctx.home_interior,
        (
            ctx.technology_in_general_public_use
            if ctx.home_interior
            else False
        ),
        ctx.abandoned,
        consent_effective,
        consent.scope if consent_effective else None,
        consent.covers_target_data,
        doctrine.exigent_circumstances,
        doctrine.plain_view,
        doctrine.target_on_probation,
        doctrine.emergency_pen_trap,
        doctrine.hash_search_of_lawful_media,
        doctrine.mining_of_lawful_data,
        doctrine.credentials_lawfully_obtained,
        doctrine.monitoring_own_network,
        doctrine.victim_invited_monitoring,
    )


def fingerprint_digest(fingerprint: ActionFingerprint) -> str:
    """Stable SHA-256 hex digest of a fingerprint.

    Enum members render as ``ClassName.MEMBER`` so the digest survives
    process restarts and is safe to persist (tuple ``hash()`` is salted
    per interpreter; this is not).
    """
    rendered = "|".join(
        f"{name}={value!s}"
        for name, value in zip(_FIELD_NAMES, fingerprint)
    )
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def describe_fingerprint(fingerprint: ActionFingerprint) -> dict:
    """Field-name -> value view of a fingerprint, for debugging output."""
    return dict(zip(_FIELD_NAMES, fingerprint))
