"""The twenty digital crime scenes of the paper's Table 1.

Each scene is encoded as an :class:`InvestigativeAction` together with the
paper's published answer ("Need" / "No need" for warrant/court
order/subpoena) and whether the paper marked the row ``(*)`` as the
authors' own judgment.  The Table 1 benchmark replays all twenty scenes
through the compliance engine and checks the answers match.
"""

from __future__ import annotations

import dataclasses

from repro.core.action import ConsentFacts, DoctrineFacts, InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, ConsentScope, DataKind, Place, Timing


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One Table 1 row: a scene plus the paper's published answer.

    Attributes:
        number: The row number (1-20) in the paper's Table 1.
        action: The encoded investigative action.
        paper_needs_process: The paper's answer — ``True`` for "Need".
        starred: Whether the paper marked the answer ``(*)`` (authors'
            judgment in the absence of controlling precedent).
    """

    number: int
    action: InvestigativeAction
    paper_needs_process: bool
    starred: bool = False

    @property
    def paper_answer(self) -> str:
        """The paper's answer string, as printed in Table 1."""
        answer = "Need" if self.paper_needs_process else "No need"
        return f"{answer} (*)" if self.starred else answer


def build_table1() -> tuple[Scenario, ...]:
    """Construct all twenty Table 1 scenes in paper order."""
    return (
        _scene_1_campus_headers(),
        _scene_2_campus_full_content(),
        _scene_3_open_wifi_headers(),
        _scene_4_open_wifi_content(),
        _scene_5_encrypted_wifi_headers(),
        _scene_6_encrypted_wifi_content(),
        _scene_7_isp_headers(),
        _scene_8_isp_full_packets(),
        _scene_9_normal_p2p(),
        _scene_10_anonymous_p2p(),
        _scene_11_public_website(),
        _scene_12_tor_hidden_server(),
        _scene_13_run_tor_node(),
        _scene_14_monitor_anonymizer(),
        _scene_15_victim_consent_own_machine(),
        _scene_16_reach_into_attacker_machine(),
        _scene_17_public_chat_room(),
        _scene_18_hash_search_seized_drive(),
        _scene_19_mine_lawful_database(),
        _scene_20_credentialed_remote_access(),
    )


def _scene_1_campus_headers() -> Scenario:
    return Scenario(
        number=1,
        action=InvestigativeAction(
            description=(
                "Campus IT logs all wired traffic headers (link/IP/TCP/UDP) "
                "transmitted within the campus' own cables and devices."
            ),
            actor=Actor.PROVIDER,
            data_kind=DataKind.NON_CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
            doctrine=DoctrineFacts(monitoring_own_network=True),
        ),
        paper_needs_process=False,
    )


def _scene_2_campus_full_content() -> Scenario:
    return Scenario(
        number=2,
        action=InvestigativeAction(
            description=(
                "Campus IT logs all wired traffic including payload on its "
                "own network; campus policy eliminates users' expectation "
                "of privacy."
            ),
            actor=Actor.PROVIDER,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(
                place=Place.TRANSMISSION_PATH, policy_eliminates_rep=True
            ),
            doctrine=DoctrineFacts(monitoring_own_network=True),
        ),
        paper_needs_process=False,
    )


def _scene_3_open_wifi_headers() -> Scenario:
    return Scenario(
        number=3,
        action=InvestigativeAction(
            description=(
                "Officer outside a residence logs unencrypted wireless "
                "traffic headers (WarDriving / Street View header "
                "collection)."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.NON_CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.WIRELESS_BROADCAST),
        ),
        paper_needs_process=False,
        starred=True,
    )


def _scene_4_open_wifi_content() -> Scenario:
    return Scenario(
        number=4,
        action=InvestigativeAction(
            description=(
                "Officer outside a residence logs unencrypted wireless "
                "traffic including payload (the Street View payload "
                "capture)."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.WIRELESS_BROADCAST),
        ),
        paper_needs_process=True,
        starred=True,
    )


def _scene_5_encrypted_wifi_headers() -> Scenario:
    return Scenario(
        number=5,
        action=InvestigativeAction(
            description=(
                "Officer outside a residence logs encrypted wireless "
                "traffic headers."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.NON_CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(
                place=Place.WIRELESS_BROADCAST, encrypted=True
            ),
        ),
        paper_needs_process=False,
        starred=True,
    )


def _scene_6_encrypted_wifi_content() -> Scenario:
    return Scenario(
        number=6,
        action=InvestigativeAction(
            description=(
                "Officer outside a residence logs encrypted wireless "
                "traffic including routing headers and payload."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(
                place=Place.WIRELESS_BROADCAST, encrypted=True
            ),
        ),
        paper_needs_process=True,
        starred=True,
    )


def _scene_7_isp_headers() -> Scenario:
    return Scenario(
        number=7,
        action=InvestigativeAction(
            description=(
                "Officer on the public wired Internet logs packet headers "
                "and sizes at an ISP."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.NON_CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
        ),
        paper_needs_process=True,
    )


def _scene_8_isp_full_packets() -> Scenario:
    return Scenario(
        number=8,
        action=InvestigativeAction(
            description=(
                "Officer on the public wired Internet logs entire packets "
                "(headers and payload) at an ISP."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
        ),
        paper_needs_process=True,
    )


def _scene_9_normal_p2p() -> Scenario:
    return Scenario(
        number=9,
        action=InvestigativeAction(
            description=(
                "Officer uses normal P2P software to collect information "
                "publicly shown by the software (user names, shared file "
                "names)."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(
                place=Place.PUBLIC, knowingly_exposed=True
            ),
        ),
        paper_needs_process=False,
    )


def _scene_10_anonymous_p2p() -> Scenario:
    return Scenario(
        number=10,
        action=InvestigativeAction(
            description=(
                "Officer uses anonymous P2P software to collect information "
                "publicly shown by the software."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(
                place=Place.PUBLIC, knowingly_exposed=True
            ),
        ),
        paper_needs_process=False,
    )


def _scene_11_public_website() -> Scenario:
    return Scenario(
        number=11,
        action=InvestigativeAction(
            description=(
                "Officer collects the content of a public website anyone "
                "can access."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.STORED,
            context=EnvironmentContext(
                place=Place.PUBLIC, knowingly_exposed=True
            ),
        ),
        paper_needs_process=False,
    )


def _scene_12_tor_hidden_server() -> Scenario:
    return Scenario(
        number=12,
        action=InvestigativeAction(
            description=(
                "Officer investigates a Tor hidden web server; the hidden "
                "server acts as an ISP."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.STORED,
            context=EnvironmentContext(
                place=Place.THIRD_PARTY_PROVIDER,
                provider_serves_public=True,
            ),
        ),
        paper_needs_process=True,
    )


def _scene_13_run_tor_node() -> Scenario:
    return Scenario(
        number=13,
        action=InvestigativeAction(
            description=(
                "Officer builds a Tor node and investigates traffic "
                "relayed through it; not a private search."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
        ),
        paper_needs_process=True,
    )


def _scene_14_monitor_anonymizer() -> Scenario:
    return Scenario(
        number=14,
        action=InvestigativeAction(
            description=(
                "Officer monitors an Anonymizer server; the server acts as "
                "an ISP."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
        ),
        paper_needs_process=True,
    )


def _scene_15_victim_consent_own_machine() -> Scenario:
    return Scenario(
        number=15,
        action=InvestigativeAction(
            description=(
                "An attack victim consents to the officer monitoring "
                "activity — including the attacker's — on the victim's own "
                "computer."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.CONSENTING_NETWORK),
            consent=ConsentFacts(
                scope=ConsentScope.NETWORK_OWNER, covers_target_data=True
            ),
            doctrine=DoctrineFacts(victim_invited_monitoring=True),
        ),
        paper_needs_process=False,
    )


def _scene_16_reach_into_attacker_machine() -> Scenario:
    return Scenario(
        number=16,
        action=InvestigativeAction(
            description=(
                "Same attack, but the officer reaches out to monitor and "
                "collect data *inside the attacker's computer*."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.STORED,
            context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
            consent=ConsentFacts(
                scope=ConsentScope.NETWORK_OWNER, covers_target_data=False
            ),
            doctrine=DoctrineFacts(victim_invited_monitoring=True),
        ),
        paper_needs_process=True,
    )


def _scene_17_public_chat_room() -> Scenario:
    return Scenario(
        number=17,
        action=InvestigativeAction(
            description=(
                "Officer collects content in a public chat room anyone can "
                "access, with or without registration."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(
                place=Place.PUBLIC, knowingly_exposed=True
            ),
        ),
        paper_needs_process=False,
    )


def _scene_18_hash_search_seized_drive() -> Scenario:
    return Scenario(
        number=18,
        action=InvestigativeAction(
            description=(
                "Officer runs hash comparisons across an entire lawfully "
                "obtained hard drive hunting for a particular file (Crist)."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.STORED,
            context=EnvironmentContext(place=Place.GOVERNMENT_CUSTODY),
            doctrine=DoctrineFacts(hash_search_of_lawful_media=True),
        ),
        paper_needs_process=True,
    )


def _scene_19_mine_lawful_database() -> Scenario:
    return Scenario(
        number=19,
        action=InvestigativeAction(
            description=(
                "Officer mines a lawfully obtained database for hidden "
                "patterns (Sloane)."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.STORED,
            context=EnvironmentContext(place=Place.GOVERNMENT_CUSTODY),
            doctrine=DoctrineFacts(mining_of_lawful_data=True),
        ),
        paper_needs_process=False,
    )


def _scene_20_credentialed_remote_access() -> Scenario:
    return Scenario(
        number=20,
        action=InvestigativeAction(
            description=(
                "After arrest, officer uses the defendant's username and "
                "password to retrieve the defendant's data from a remote "
                "computer."
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.STORED,
            context=EnvironmentContext(
                place=Place.THIRD_PARTY_PROVIDER,
                provider_serves_public=True,
            ),
            doctrine=DoctrineFacts(credentials_lawfully_obtained=True),
        ),
        paper_needs_process=False,
    )
